"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed on machines without the `wheel` package (pip's
PEP-517 editable path requires bdist_wheel).
"""

from setuptools import setup

setup()
