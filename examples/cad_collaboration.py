#!/usr/bin/env python3
"""A collaborative CAD session under the Section-5 protocol.

Recreates the paper's motivating scenario (Sections 1–2, Figure 1):
a chief designer's long transaction nests subtransactions handed to
collaborators; subtransactions see intermediate (non-serializable)
states, yet every input constraint holds at read time and the design's
consistency constraint holds at the end.

The design: a bracket with a bolt circle.  Consistency constraint:

* the bolt hole diameter is smaller than the bolt circle diameter;
* the bracket width accommodates the bolt circle;
* stress relief: thickness at least 3.

Run:  python examples/cad_collaboration.py
"""

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import Outcome, TransactionManager
from repro.storage import Database


def build_database() -> Database:
    schema = Schema.of(
        "hole_d",  # bolt hole diameter
        "circle_d",  # bolt circle diameter
        "width",  # bracket width
        "thick",  # bracket thickness
        domain=Domain.interval(1, 500),
    )
    constraint = Predicate.parse(
        "hole_d < circle_d & circle_d < width & thick >= 3"
    )
    return Database(
        schema,
        constraint,
        {"hole_d": 8, "circle_d": 40, "width": 60, "thick": 5},
    )


def main() -> None:
    db = build_database()
    tm = TransactionManager(db)
    print("Initial design:", dict(db.initial_state))
    print("Constraint:   ", db.constraint)
    print()

    # The chief designer's transaction: rework the bolt circle.  Its
    # postcondition is the full consistency constraint; its
    # subtransactions are allowed to pass through inconsistent
    # intermediate states (Section 2.3).
    chief = tm.define(
        tm.root,
        Spec(Predicate.true(), db.constraint),
        update_set={"hole_d", "circle_d", "width"},
    )
    tm.validate(chief)

    # Subtask 1 (a drafter): enlarge the bolt circle.  Postcondition
    # deliberately weaker than consistency — the circle may temporarily
    # collide with the bracket edge.
    drafter = tm.define(
        chief,
        Spec(
            Predicate.parse("circle_d >= 1"),
            Predicate.parse("circle_d >= 70"),
        ),
        update_set={"circle_d"},
    )

    # Subtask 2 (an engineer): widen the bracket to fit, then enlarge
    # the holes.  Works *after* the drafter (partial order), and its
    # input constraint needs the enlarged circle.
    engineer = tm.define(
        chief,
        Spec(
            Predicate.parse("circle_d >= 70 & width >= 1 & hole_d >= 1"),
            Predicate.parse("width > 70 & hole_d >= 10"),
        ),
        update_set={"width", "hole_d"},
        predecessors=[drafter],
    )

    tm.validate(drafter)
    # The engineer validates optimistically: the drafter has not yet
    # produced circle_d >= 70, so validation fails against current
    # versions...
    result = tm.validate(engineer)
    print("Engineer validates before drafter writes:", result.outcome)
    assert result.outcome is Outcome.FAILED  # aborted — too eager

    # Drafter works: the database is now *inconsistent* in the latest
    # view (circle 80 > width 60), but old versions are retained.
    tm.read(drafter, "circle_d")
    tm.write(drafter, "circle_d", 80)
    tm.commit(drafter)
    print(
        "After drafter: latest view consistent?",
        db.is_consistent(),
        "| some consistent version state survives?",
        db.has_consistent_version_state(),
    )

    # Re-issue the engineer's subtransaction; now validation finds the
    # drafter's version.
    engineer = tm.define(
        chief,
        Spec(
            Predicate.parse("circle_d >= 70 & width >= 1 & hole_d >= 1"),
            Predicate.parse("width > 70 & hole_d >= 10"),
        ),
        update_set={"width", "hole_d"},
        predecessors=[drafter],
    )
    assert tm.validate(engineer).outcome is Outcome.OK
    circle = tm.read(engineer, "circle_d").value
    tm.read(engineer, "width")
    tm.read(engineer, "hole_d")
    tm.write(engineer, "width", circle + 10)
    tm.write(engineer, "hole_d", 12)
    tm.commit(engineer)

    # The chief's transaction closes; its postcondition is the full
    # consistency constraint, evaluated over its world view.
    commit = tm.commit(chief)
    print("Chief commits:", commit.outcome)
    tm.commit(tm.root)

    print()
    print("Final design view:", {
        name: value
        for name, value in tm.view(tm.root).items()
    })
    print("Parent-based violations:", tm.verify_parent_based(chief))
    print("Correctness violations: ", tm.verify_correctness(chief))
    print(
        "Phases:",
        {
            txn: tm.phase(txn).value
            for txn in (chief, drafter, engineer)
        },
    )
    print()
    print("Event log:")
    print(tm.log.dump())


if __name__ == "__main__":
    main()
