#!/usr/bin/env python3
"""Multilevel serializability and recovery — the paper's side claims.

Demonstrates two of the paper's supporting arguments:

1. §2.2/§4.2 — nested transactions permit schedules that are
   *non-serializable among the leaves* yet serial at the top level
   (and the converse: lifting can also destroy serializability).
2. §1 — serializability alone does not imply recoverability: a view
   serializable schedule can still read uncommitted data and commit
   first.

Also prints the DOT rendering of the transaction tree and the
conflict graphs, ready for `dot -Tpng`.

Run:  python examples/nested_levels.py
"""

from repro.classes import (
    ancestry_at_level,
    concurrency_gap,
    conflict_graph_dot,
    is_view_serializable,
    lift_schedule,
    transaction_tree_dot,
)
from repro.core import (
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Schema,
    Spec,
    TxnName,
)
from repro.schedules import Schedule, recovery_profile


def build_tree() -> NestedTransaction:
    schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
    root_name = TxnName.root()

    def leaf(parent: TxnName, index: int, entity: str):
        return LeafTransaction(
            parent.child(index),
            schema,
            Spec.trivial(),
            Effect({entity: 1}),
            extra_reads=(entity,),
        )

    parents = []
    for parent_index in range(2):
        parent_name = root_name.child(parent_index)
        parents.append(
            NestedTransaction(
                parent_name,
                schema,
                Spec.trivial(),
                [leaf(parent_name, 0, "x"), leaf(parent_name, 1, "y")],
            )
        )
    return NestedTransaction(
        root_name, schema, Spec.trivial(), parents
    )


def multilevel_demo() -> None:
    print("=== Multilevel serializability (§2.2 / §4.2) ===")
    tree = build_tree()
    mapping = ancestry_at_level(tree, 1)

    # A leaf-level conflict cycle entirely inside t.0, with t.1 after.
    absorbed = Schedule.parse(
        "rt.0.0(x) rt.0.1(y) wt.0.1(x) wt.0.0(y) rt.1.0(x) wt.1.0(x)"
    )
    leaf_csr, lifted_csr = concurrency_gap(absorbed, mapping)
    print(f"schedule: {absorbed}")
    print(f"  leaf-level CSR:  {leaf_csr}")
    print(f"  top-level CSR:   {lifted_csr}  (cycle absorbed by t.0)")
    print()

    # The converse: cross-parent edges fold into a top-level cycle.
    folded = Schedule.parse(
        "rt.0.0(x) wt.1.0(x) rt.1.1(y) wt.0.1(y)"
    )
    leaf_csr, lifted_csr = concurrency_gap(folded, mapping)
    print(f"schedule: {folded}")
    print(f"  leaf-level CSR:  {leaf_csr}")
    print(f"  top-level CSR:   {lifted_csr}  (edges fold into a cycle)")
    print()
    print("lifted schedule:", lift_schedule(folded, mapping))
    print()
    print("transaction tree (DOT):")
    print(transaction_tree_dot(tree))
    print()


def recovery_demo() -> None:
    print("=== Serializable but unrecoverable (§1) ===")
    schedule = Schedule.parse("w1(x) r2(x) w2(y)")
    print(f"schedule: {schedule}")
    print(f"  view serializable: {is_view_serializable(schedule)}")
    for order in (["1", "2"], ["2", "1"]):
        profile = recovery_profile(schedule, order)
        print(f"  commit order {order}: {profile}")
    print()
    print("conflict graph (DOT):")
    print(conflict_graph_dot(schedule))


if __name__ == "__main__":
    multilevel_demo()
    recovery_demo()
