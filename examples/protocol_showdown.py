#!/usr/bin/env python3
"""Experiment P1 interactively: the paper's protocol vs the classics.

Runs a long-duration collaborative-design workload and a short OLTP
workload under six schedulers — serial, strict 2PL, timestamp
ordering, multiversion TO, predicate-wise 2PL, and the paper's
Section-5 protocol — and prints the wait/abort/makespan table.

Expected shape (Section 2.4's goals):

* on the CAD workload the paper's protocol shows (near-)zero lock wait
  time, the fewest restarts, and the best makespan of the concurrent
  schedulers;
* on the OLTP workload all protocols roughly agree — the classical
  world was never the problem.

Run:  python examples/protocol_showdown.py
"""

from repro.sim import (
    cad_workload,
    compare_schedulers,
    metrics_table,
    oltp_workload,
)


def main() -> None:
    print("=== Long-duration CAD workload (think time 100) ===")
    cad = cad_workload(
        num_designers=8,
        num_modules=3,
        accesses_per_txn=6,
        think_time=100.0,
        cooperation_probability=0.3,
        seed=3,
    )
    print(metrics_table(compare_schedulers(cad, seed=1)))
    print()

    print("=== Same designers, think time swept ===")
    for think in (0.0, 25.0, 100.0, 400.0):
        workload = cad_workload(
            num_designers=6, think_time=think, seed=3
        )
        results = compare_schedulers(
            workload,
            schedulers={
                name: factory
                for name, factory in __import__(
                    "repro.sim.runner", fromlist=["DEFAULT_SCHEDULERS"]
                ).DEFAULT_SCHEDULERS.items()
                if name in ("s2pl", "korth-speegle")
            },
            seed=1,
        )
        s2pl = results["s2pl"]
        ks = results["korth-speegle"]
        print(
            f"think={think:6.0f}  s2pl wait={s2pl.total_wait_time:9.1f} "
            f"restarts={s2pl.total_restarts}  |  "
            f"korth-speegle wait={ks.total_wait_time:7.1f} "
            f"restarts={ks.total_restarts}"
        )
    print()

    print("=== Short OLTP workload (no think time) ===")
    oltp = oltp_workload(num_transactions=16, seed=5)
    print(metrics_table(compare_schedulers(oltp, seed=1)))


if __name__ == "__main__":
    main()
