#!/usr/bin/env python3
"""Classify schedules into the Section-4 lattice; regenerate Figure 2.

Three parts:

1. every worked example from the paper, classified and checked against
   its claimed region;
2. an exhaustive census of all 35 interleavings of Example 1's
   programs, with the population of each Figure-2 region;
3. a random-schedule census quantifying how much each extended class
   gains over its base (the point of Section 4).

Run:  python examples/schedule_classifier.py
"""

from repro.analysis import (
    census_of_programs,
    census_of_random_schedules,
    example1_programs,
    region_report,
    text_table,
)
from repro.classes import ALL_EXAMPLES, REGION_LABELS


def paper_examples() -> None:
    print("=== The paper's worked examples ===")
    rows = []
    for example in ALL_EXAMPLES:
        failures = example.check()
        rows.append(
            {
                "example": example.name[:46],
                "schedule": str(example.schedule)[:44],
                "region": example.region(),
                "classes": ",".join(
                    example.membership().member_classes()
                )
                or "(none)",
                "claims": "OK" if not failures else "; ".join(failures),
            }
        )
    print(text_table(rows))
    print()


def figure2_census() -> None:
    print("=== Figure 2 census: all interleavings of Example 1 ===")
    result = census_of_programs(example1_programs(), [{"x"}, {"y"}])
    print(region_report(result.by_region))
    print(f"\ntotal interleavings: {result.total}")
    print(f"containment-law violations: {result.containment_failures}")
    print()


def random_census() -> None:
    print("=== Random census: class gains (500 schedules) ===")
    result = census_of_random_schedules(
        500,
        num_transactions=3,
        ops_per_transaction=3,
        entities=("x", "y"),
        objects=[{"x"}, {"y"}],
        seed=42,
    )
    rows = [
        {"class": name, "members": count,
         "fraction": f"{count / result.total:.0%}"}
        for name, count in sorted(result.by_class.items())
    ]
    print(text_table(rows))
    print()
    print("strict gains (schedules admitted beyond the base class):")
    for label, gain in result.strict_gains().items():
        print(f"  {label:14s} {gain}")
    print()
    print("region labels:")
    for region, label in REGION_LABELS.items():
        print(f"  {region}: {label}")


if __name__ == "__main__":
    paper_examples()
    figure2_census()
    random_census()
