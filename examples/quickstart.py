#!/usr/bin/env python3
"""Quickstart: the three faces of the library in ~60 lines.

1. Classify a schedule against the Section-4 correctness classes.
2. Decide execution correctness for a nested transaction (Theorem 1).
3. Run two cooperating transactions under the Section-5 protocol.

Run:  python examples/quickstart.py
"""

from repro.classes import classify, figure2_region
from repro.core import (
    Domain,
    Predicate,
    Schema,
    Spec,
    lemma1_instance,
)
from repro.protocol import Outcome, TransactionManager
from repro.sat import CNFFormula
from repro.schedules import Schedule
from repro.storage import Database


def classify_a_schedule() -> None:
    """The paper's Example 1: not serializable, yet acceptable."""
    schedule = Schedule.parse(
        "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
    )
    membership = classify(schedule, [{"x"}, {"y"}])
    print("Example 1 schedule:", schedule)
    print("  membership:", membership)
    print("  Figure-2 region:", figure2_region(membership))
    print()


def decide_version_correctness() -> None:
    """Lemma 1 in action: version selection is SAT in disguise."""
    formula = CNFFormula.parse("a | ~b & b | c & ~a | ~c")
    instance = lemma1_instance(formula)
    witness = instance.solve_direct()
    print("SAT formula:", formula)
    print("  reduced to a 2-state database over", instance.schema.names)
    print("  witnessing version state:", witness)
    print()


def run_the_protocol() -> None:
    """Two designers cooperating without serializability."""
    schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
    db = Database(
        schema, Predicate.parse("x >= 0 & y >= 0"), {"x": 10, "y": 20}
    )
    tm = TransactionManager(db)

    alice = tm.define(
        tm.root,
        Spec(Predicate.parse("x >= 0"), Predicate.parse("x > 10")),
        update_set={"x"},
    )
    # Bob declares he works *after* Alice (a cooperation edge).
    bob = tm.define(
        tm.root,
        Spec(Predicate.parse("x >= 0 & y >= 0"), Predicate.parse("y > 20")),
        update_set={"y"},
        predecessors=[alice],
    )
    assert tm.validate(alice).outcome is Outcome.OK
    assert tm.validate(bob).outcome is Outcome.OK

    value = tm.read(alice, "x").value
    result = tm.write(alice, "x", value + 5)
    # Bob had optimistically been assigned the old x; the protocol
    # silently re-assigned him to Alice's new version.
    print("After Alice's write, re-assigned:", result.reassigned)
    tm.commit(alice)

    print("Bob reads x =", tm.read(bob, "x").value, "(Alice's version)")
    tm.read(bob, "y")
    tm.write(bob, "y", 25)
    tm.commit(bob)
    tm.commit(tm.root)

    print("Parent-based violations:", tm.verify_parent_based(tm.root))
    print("Correctness violations: ", tm.verify_correctness(tm.root))
    print()
    print("Protocol transcript:")
    print(tm.log.dump())


if __name__ == "__main__":
    classify_a_schedule()
    decide_version_correctness()
    run_the_protocol()
