#!/usr/bin/env python3
"""Crash recovery by redo-log replay (the paper's §6 future work).

A session of cooperating transactions runs under the Section-5
protocol; its event log is serialized to JSON (the durable redo log).
Then we simulate a crash — throw the manager away — and rebuild the
exact same state by replaying the log against a fresh database.

Determinism is the point: version selection, re-evaluation, and
cascades are pure functions of the state the stimulus events build, so
replay regenerates every derived decision and the stores match bit for
bit.

Run:  python examples/crash_recovery.py
"""

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import TransactionManager
from repro.protocol.replay import (
    histories_match,
    log_from_json,
    log_to_json,
    replay,
)
from repro.storage import Database


def fresh_database() -> Database:
    schema = Schema.of("x", "y", "z", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0 & z >= 0"),
        {"x": 10, "y": 20, "z": 30},
    )


def run_session() -> TransactionManager:
    tm = TransactionManager(fresh_database())

    def spec(i="true", o="true"):
        return Spec(Predicate.parse(i), Predicate.parse(o))

    alice = tm.define(tm.root, spec("x >= 0"), {"x"})
    bob = tm.define(
        tm.root, spec("x >= 0 & y >= 0"), {"y"}, predecessors=[alice]
    )
    eve = tm.define(tm.root, spec("z >= 0"), {"z"})
    for txn in (alice, bob, eve):
        tm.validate(txn)
    tm.read(alice, "x")
    tm.write(alice, "x", 42)  # re-assigns Bob to the new version
    tm.commit(alice)
    tm.read(bob, "x")
    tm.read(bob, "y")
    tm.write(bob, "y", 77)
    tm.commit(bob)
    tm.read(eve, "z")
    tm.write(eve, "z", 99)
    tm.abort(eve)  # Eve changes her mind; versions expunged
    return tm


def main() -> None:
    print("=== Running the original session ===")
    original = run_session()
    print(f"events logged: {len(original.log)}")
    print("final world view:", original.view(original.root))
    print()

    print("=== Durable log (excerpt) ===")
    serialized = log_to_json(original.log)
    print(serialized[:240], "…")
    print(f"({len(serialized)} bytes)")
    print()

    print("=== 💥 crash — manager lost; replaying the log ===")
    rebuilt = replay(log_from_json(serialized), fresh_database())
    print("rebuilt world view:", rebuilt.view(rebuilt.root))
    match = histories_match(original, rebuilt)
    print("version histories identical:", match)
    assert match
    print()
    print("rebuilt store:")
    for entity in rebuilt.database.schema.names:
        versions = rebuilt.database.store.versions(entity)
        print(f"  {entity}: " + " -> ".join(str(v) for v in versions))


if __name__ == "__main__":
    main()
