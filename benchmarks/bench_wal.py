"""Experiment D1 — WAL group commit and recovery (writes BENCH_wal.json).

Two measurements of the durability subsystem:

1. Group-commit throughput at the raw WAL layer: 2000 durable
   (commit) appends at three flush-interval settings.  Sync mode
   (``0.0``) fsyncs once per commit; windowed modes amortise many
   commits into one fsync, and the ``wal.fsyncs`` counter shows it.
2. A 10k-record WAL built through the durable manager (read-heavy
   transactions keep the protocol's O(live-txns) validation cost out
   of the way) recovered end to end without verification failures.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.entities import Domain, Entity, Schema
from repro.core.predicates import Predicate
from repro.core.transactions import Spec
from repro.durability import DurableTransactionManager, recover
from repro.durability.records import OP_COMMIT
from repro.durability.wal import WriteAheadLog
from repro.obs.metrics import MetricsRegistry
from repro.protocol.scheduler import Outcome
from repro.storage.database import Database

from conftest import report

ROOT = Path(__file__).resolve().parent.parent

FLUSH_INTERVALS = (0.0, 0.005, 0.02)
APPENDS = 2000

#: ~100 transactions x (define + validate + reads + write + commit)
#: comfortably clears the 10k-record acceptance floor.
RECOVERY_TXNS = 100
READS_PER_TXN = 100


def make_database() -> Database:
    schema = Schema(
        [
            Entity("x", Domain(0, 100)),
            Entity("y", Domain(0, 100)),
            Entity("z", Domain(0, 100)),
        ]
    )
    constraint = Predicate.parse("x >= 0 & y >= 0 & z >= 0")
    return Database(schema, constraint, {"x": 5, "y": 5, "z": 5})


def _bench_group_commit(wal_dir: Path, flush_interval: float) -> dict:
    registry = MetricsRegistry()
    wal = WriteAheadLog(
        wal_dir, flush_interval=flush_interval, registry=registry
    )
    start = time.perf_counter()
    for index in range(APPENDS):
        wal.append(OP_COMMIT, f"t.{index}", {"released": {"x": 1}})
        wal.maybe_flush()
    wal.flush()
    seconds = time.perf_counter() - start
    wal.close()
    return {
        "flush_interval": flush_interval,
        "records": APPENDS,
        "seconds": round(seconds, 4),
        "records_per_second": round(APPENDS / seconds, 1),
        "fsyncs": registry.counter("wal.fsyncs").value,
    }


def _build_recovery_wal(wal_dir: Path) -> int:
    manager, recovery = DurableTransactionManager.open(
        wal_dir,
        make_database,
        flush_interval=0.005,
        checkpoint_every=0,  # force replay of the full WAL
    )
    assert recovery is None
    for index in range(RECOVERY_TXNS):
        entity = "xyz"[index % 3]
        name = manager.define(
            manager.root,
            Spec(
                Predicate.parse(f"{entity} >= 0"), Predicate.parse("true")
            ),
            [entity],
        )
        assert manager.validate(name).outcome is Outcome.OK
        for _ in range(READS_PER_TXN):
            assert manager.read(name, entity).outcome is Outcome.OK
        assert manager.begin_write(name, entity).outcome is Outcome.OK
        assert (
            manager.end_write(name, entity, index % 100).outcome
            is Outcome.OK
        )
        assert manager.commit(name).outcome is Outcome.OK
        manager.maybe_flush()
    manager.flush()
    # Abandon without close(): recovery replays every record, exactly
    # as after a crash.
    return manager.wal.last_lsn


def test_wal_group_commit_and_recovery_write_benchmark_json(tmp_path):
    group_commit = [
        _bench_group_commit(tmp_path / f"gc-{index}", flush_interval)
        for index, flush_interval in enumerate(FLUSH_INTERVALS)
    ]

    recovery_dir = tmp_path / "recovery"
    last_lsn = _build_recovery_wal(recovery_dir)
    start = time.perf_counter()
    result = recover(recovery_dir)
    recovery_seconds = time.perf_counter() - start

    payload = {
        "group_commit": group_commit,
        "recovery": {
            "records": last_lsn + 1,
            "replayed": result.records_replayed,
            "committed": len(result.committed),
            "seconds": round(recovery_seconds, 4),
            "records_per_second": round(
                result.records_replayed / recovery_seconds, 1
            ),
            "verified": result.verified,
        },
    }
    (ROOT / "BENCH_wal.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Sync mode is one fsync per durable append; every windowed
    # setting must amortise — far fewer fsyncs for the same records.
    assert len(group_commit) >= 3
    sync = group_commit[0]
    assert sync["flush_interval"] == 0.0
    assert sync["fsyncs"] == APPENDS
    for entry in group_commit[1:]:
        assert entry["fsyncs"] < sync["fsyncs"], entry

    # The 10k-record WAL recovers completely and verifies cleanly.
    assert payload["recovery"]["records"] >= 10_000
    assert result.records_replayed >= 10_000
    assert result.verified, result.violations
    assert len(result.committed) == RECOVERY_TXNS

    lines = [
        f"flush={entry['flush_interval']:<6}"
        f"{entry['records_per_second']:>10.0f} records/s"
        f"{entry['fsyncs']:>7} fsyncs"
        for entry in group_commit
    ]
    lines.append(
        f"recovery: {payload['recovery']['records']} records in "
        f"{recovery_seconds:.2f}s "
        f"({payload['recovery']['records_per_second']:.0f} records/s), "
        f"verified={result.verified}"
    )
    report("D1: WAL group commit + recovery", "\n".join(lines))
