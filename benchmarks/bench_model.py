"""Experiments F1, L2, L3 — the model itself.

F1: Figure 1's nested transaction tree, built and solo-executed.
L2: every view serializable schedule induces a correct execution
    (checked over random schedules; the bench times the pipeline).
L3: the chained execution of a serial witness satisfies Lemma 3.
"""

from __future__ import annotations

from repro.analysis import (
    execution_from_serial_order,
    leaf_transactions_from_programs,
    schedule_to_execution,
)
from repro.classes import (
    lemma3_view_serialization,
    view_serialization_order,
)
from repro.core import (
    BinOp,
    Const,
    DatabaseState,
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Predicate,
    Ref,
    Schema,
    Spec,
    TxnName,
    UniqueState,
    VersionState,
    check_execution,
)
from repro.schedules import random_schedule

CONSTRAINT = Predicate.parse("x >= 0 & y >= 0")


def _effects(txn: str, entity: str):
    return BinOp("+", Ref(entity), Const(int(txn)))


def _figure1_tree():
    """The shape of Figure 1: t with children t.0 (3 leaves),
    t.1 (two nested subtransactions), and t.2 (one leaf)."""
    schema = Schema.of("x", "y", domain=Domain.interval(0, 10_000))
    root = TxnName.root()

    def leaf(name, entity):
        return LeafTransaction(
            name, schema, Spec.trivial(),
            Effect({entity: BinOp("+", Ref(entity), Const(1))}),
        )

    t0 = NestedTransaction(
        root.child(0), schema, Spec.trivial(),
        [leaf(root.child(0).child(i), "x") for i in range(3)],
    )
    t10 = NestedTransaction(
        root.child(1).child(0), schema, Spec.trivial(),
        [leaf(root.child(1).child(0).child(i), "y") for i in range(2)],
    )
    t11 = NestedTransaction(
        root.child(1).child(1), schema, Spec.trivial(),
        [leaf(root.child(1).child(1).child(i), "y") for i in range(3)],
    )
    t1 = NestedTransaction(
        root.child(1), schema, Spec.trivial(), [t10, t11]
    )
    t2 = NestedTransaction(
        root.child(2), schema, Spec.trivial(),
        [leaf(root.child(2).child(0), "x")],
    )
    return NestedTransaction(
        root, schema, Spec.trivial(), [t0, t1, t2]
    ), schema


def test_f1_nested_tree(benchmark):
    tree, schema = _figure1_tree()

    def build_and_run():
        state = VersionState(schema, {"x": 0, "y": 0})
        return tree.apply(state)

    result = benchmark(build_and_run)
    # 4 leaf increments of x (3 in t.0, 1 in t.2), 5 of y.
    assert result["x"] == 4
    assert result["y"] == 5
    leaves = list(tree.leaves())
    assert len(leaves) == 9
    assert max(leaf.name.depth for leaf in leaves) == 3


def test_l2_vsr_schedules_are_correct_executions(benchmark):
    schema = Schema.of("x", "y", domain=Domain.interval(0, 10_000))
    initial = UniqueState(schema, {"x": 5, "y": 6})

    schedules = [
        random_schedule(3, 3, ["x", "y"], seed=seed)
        for seed in range(200)
    ]

    def verify_lemma2():
        checked = 0
        for schedule in schedules:
            order = view_serialization_order(schedule)
            if order is None:
                continue
            execution = schedule_to_execution(
                schema, schedule, CONSTRAINT, initial,
                _effects, list(order),
            )
            assert check_execution(
                execution, DatabaseState.single(initial)
            ).ok
            checked += 1
        return checked

    checked = benchmark(verify_lemma2)
    assert checked >= 25  # a healthy VSR population


def test_l3_chained_executions_satisfy_lemma3(benchmark):
    schema = Schema.of("x", "y", domain=Domain.interval(0, 10_000))
    initial = UniqueState(schema, {"x": 5, "y": 6})
    programs = random_schedule(3, 3, ["x", "y"], seed=7).programs()
    root = leaf_transactions_from_programs(
        schema, programs, CONSTRAINT, _effects
    )

    def chain_and_check():
        execution = execution_from_serial_order(
            root, initial, list(root.child_names)
        )
        return lemma3_view_serialization(execution)

    witness = benchmark(chain_and_check)
    assert witness is not None
