"""Experiment S1 — served-traffic throughput and latency.

The in-process protocol loop (``bench_protocol.py``) measures the
manager alone; these benchmarks measure the same lifecycle **through
the server stack** — framing, command queue, dispatcher — so the wire
overhead is an explicit number rather than folklore.

* ``test_server_request_roundtrip`` — single-client ping round-trip
  (pure stack overhead, no protocol work);
* ``test_server_lifecycle_throughput`` — define → validate → read →
  write → commit over one connection;
* ``test_server_loadgen_mixed`` — the headline number: the loadgen's
  mixed CAD workload over 8 concurrent connections, reported as
  committed transactions/second (the same figure ``repro loadgen``
  writes to ``BENCH_server.json``);
* ``test_server_loadgen_sharded`` — the same loadgen replay against a
  4-shard server (mostly single-shard mix), so the sharded stack's
  dispatch + routing cost is tracked alongside the single-shard path.

Run ``python benchmarks/bench_server.py`` directly to regenerate the
``BENCH_server.json`` scaling artifact: a shards=1,2,4,8 sweep over
the stock oltp shape and a low-cross 8-module CAD shape.
"""

from __future__ import annotations

import asyncio

from repro.server import Client, ServerConfig, ServerThread, build_workload
from repro.server.loadgen import run_loadgen
from repro.sim.workload import cad_workload

try:
    from conftest import report
except ImportError:  # direct script invocation, not under pytest
    def report(title, body):
        print(f"{title}: {body}")

#: Shard counts the scaling sweep measures.
SWEEP_SHARD_COUNTS = (1, 2, 4, 8)
#: The single-shard loadgen headline recorded by the live-path PR
#: (oltp, 600 transactions, 16 clients) — the sweep's shards=1 oltp
#: run must stay within 10% of it.
PR7_RECORDED_TXN_PER_S = 690.14


def _workload():
    return build_workload("cad", transactions=8, seed=3)


def _single_shard_mix(transactions: int):
    """The sweep's scaling shape: 8 modules, 5% cross-module txns.

    Modules colocate under the router's affinity rule, so with 8
    modules hashed over up to 8 shards almost every transaction is
    single-shard — the mix the scaling acceptance is stated for.
    """
    return cad_workload(
        num_designers=transactions,
        num_modules=8,
        cross_module_probability=0.05,
        cooperation_probability=0.0,
        think_time=0.0,
        seed=3,
    )


def _run_sharded(workload, shards: int, clients: int):
    with ServerThread(
        workload.fresh_database, ServerConfig(port=0, shards=shards)
    ) as handle:
        return asyncio.run(
            run_loadgen(
                workload,
                clients=clients,
                port=handle.port,
                connect_retries=2,
            )
        )


def _sweep_row(label: str, shards: int, result) -> dict:
    counters = (result.server_stats or {}).get("counters", {})
    latency = result.latency.summary()
    return {
        "workload": label,
        "shards": shards,
        "key_dist": result.key_dist,
        "clients": result.clients,
        "scripts": result.scripts,
        "committed": result.committed,
        "throughput_txn_per_s": round(result.throughput, 2),
        "wall_time_s": round(result.wall_time, 4),
        "latency_ms_p50": round(latency.get("p50", 0.0) * 1000.0, 3),
        "latency_ms_p95": round(latency.get("p95", 0.0) * 1000.0, 3),
        "busy_retries": result.busy_retries,
        "protocol_errors": result.protocol_errors,
        "cross_shard_committed": int(
            counters.get("server.cross.committed", 0)
        ),
        "cross_shard_aborted": int(
            counters.get("server.cross.aborted", 0)
        ),
        "shard_committed": {
            key.rsplit(".", 1)[-1]: int(value)
            for key, value in sorted(counters.items())
            if key.startswith("server.txns.committed.shard")
        },
    }


def run_shard_sweep(
    transactions: int = 600,
    clients: int = 16,
    shard_counts: tuple = SWEEP_SHARD_COUNTS,
    out_path: str = "BENCH_server.json",
) -> dict:
    """Measure loadgen throughput at each shard count, write the artifact.

    Two workload shapes per shard count: the stock ``oltp`` shape the
    690 txn/s baseline was recorded on (2 modules, 50% cross-module —
    a 2PC stress test at >1 shard), and the low-cross 8-module CAD
    shape whose transactions are almost all single-shard.
    """
    import json
    import os
    import platform

    shapes = (
        (
            "oltp",
            lambda: build_workload(
                "oltp", transactions=transactions, seed=3
            ),
        ),
        ("cad-low-cross", lambda: _single_shard_mix(transactions)),
    )
    rows = []
    for label, factory in shapes:
        for shards in shard_counts:
            result = _run_sharded(factory(), shards, clients)
            if result.protocol_errors:
                raise RuntimeError(
                    f"{label}@{shards}: {result.protocol_errors} "
                    f"wire-protocol errors"
                )
            rows.append(_sweep_row(label, shards, result))
    by = {(row["workload"], row["shards"]): row for row in rows}
    base = by[("cad-low-cross", shard_counts[0])]
    scaling = {
        str(shards): round(
            by[("cad-low-cross", shards)]["throughput_txn_per_s"]
            / base["throughput_txn_per_s"],
            3,
        )
        for shards in shard_counts
    }
    oltp1 = by[("oltp", shard_counts[0])]["throughput_txn_per_s"]
    payload = {
        "benchmark": "server-shard-sweep",
        "clients": clients,
        "key_dist": "uniform",
        "host": {
            "cpus": os.cpu_count() or 1,
            "python": platform.python_version(),
        },
        "sweep": rows,
        "speedup_vs_shards1": scaling,
        "single_shard_baseline": {
            "pr7_recorded_txn_per_s": PR7_RECORDED_TXN_PER_S,
            "shards1_oltp_txn_per_s": oltp1,
            "delta_pct": round(
                (oltp1 - PR7_RECORDED_TXN_PER_S)
                / PR7_RECORDED_TXN_PER_S
                * 100.0,
                1,
            ),
        },
        "method": (
            "All shard counts measured in-process on the same host "
            "(ServerThread + run_loadgen, 16 clients, seeded "
            "workloads, uniform key_dist; shapes: stock oltp 600 txns "
            "for the PR-7 baseline comparison, and cad 600 txns / 8 "
            "modules / cross_module_probability=0.05 for the "
            "single-shard mix). CAVEAT: this host exposes a single "
            "CPU (os.cpu_count() == 1) and runs CPython with the GIL "
            "held, so the per-shard stacks cannot execute in "
            "parallel — the sweep measures the routing + 2PC overhead "
            "of the sharded dispatch path, not multi-core scale-out. "
            "The shards-per-core scaling claim requires a multi-core "
            "host; re-run 'python benchmarks/bench_server.py' there "
            "to regenerate this file with real parallel numbers."
        ),
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def test_server_request_roundtrip(benchmark):
    benchmark.group = "server"
    with ServerThread(_workload().fresh_database) as handle:
        with Client.connect("127.0.0.1", handle.port) as client:
            benchmark(client.ping)


def test_server_lifecycle_throughput(benchmark):
    benchmark.group = "server"
    with ServerThread(_workload().fresh_database) as handle:
        with Client.connect("127.0.0.1", handle.port) as client:
            counter = [0]

            def one_transaction():
                counter[0] += 1
                txn = client.define(
                    updates=["m0_e1"], input_constraint="m0_e0 >= 0"
                )
                client.validate(txn)
                value = client.read(txn, "m0_e0")
                client.write(
                    txn, "m0_e1", (value + counter[0]) % 1000
                )
                client.commit(txn)

            benchmark(one_transaction)


def test_server_loadgen_mixed(benchmark):
    """S1 headline: mixed workload over 8 concurrent connections."""
    benchmark.group = "server"
    workload = _workload()

    def one_replay():
        with ServerThread(
            workload.fresh_database, ServerConfig(port=0)
        ) as handle:
            return asyncio.run(
                run_loadgen(
                    workload,
                    clients=8,
                    port=handle.port,
                    connect_retries=2,
                )
            )

    result = benchmark.pedantic(one_replay, rounds=3, iterations=1)
    assert result.protocol_errors == 0
    report(
        "S1 server loadgen (8 clients, mixed CAD)",
        f"committed {result.committed}/{result.scripts}, "
        f"throughput {result.throughput:.1f} txn/s, "
        f"p95 request latency "
        f"{result.latency.percentile(95) * 1000:.2f} ms, "
        f"busy retries {result.busy_retries}, "
        f"restarts {result.restarts}",
    )


def test_server_loadgen_sharded(benchmark):
    """S1 sharded: low-cross CAD replay against a 4-shard server."""
    benchmark.group = "server"
    workload = _single_shard_mix(96)

    def one_replay():
        return _run_sharded(workload, shards=4, clients=8)

    result = benchmark.pedantic(one_replay, rounds=3, iterations=1)
    assert result.protocol_errors == 0
    counters = (result.server_stats or {}).get("counters", {})
    report(
        "S1 server loadgen (8 clients, 4 shards, low-cross CAD)",
        f"committed {result.committed}/{result.scripts}, "
        f"throughput {result.throughput:.1f} txn/s, "
        f"cross-shard committed "
        f"{int(counters.get('server.cross.committed', 0))}, "
        f"p95 request latency "
        f"{result.latency.percentile(95) * 1000:.2f} ms, "
        f"busy retries {result.busy_retries}",
    )


if __name__ == "__main__":
    payload = run_shard_sweep()
    for row in payload["sweep"]:
        print(
            f"{row['workload']:>14} shards={row['shards']}: "
            f"{row['throughput_txn_per_s']:8.1f} txn/s "
            f"(cross committed {row['cross_shard_committed']}, "
            f"p95 {row['latency_ms_p95']:.2f} ms)"
        )
    print(f"speedup vs shards=1: {payload['speedup_vs_shards1']}")
    print(f"baseline: {payload['single_shard_baseline']}")
    print("bench -> BENCH_server.json")
