"""Experiment S1 — served-traffic throughput and latency.

The in-process protocol loop (``bench_protocol.py``) measures the
manager alone; these benchmarks measure the same lifecycle **through
the server stack** — framing, command queue, dispatcher — so the wire
overhead is an explicit number rather than folklore.

* ``test_server_request_roundtrip`` — single-client ping round-trip
  (pure stack overhead, no protocol work);
* ``test_server_lifecycle_throughput`` — define → validate → read →
  write → commit over one connection;
* ``test_server_loadgen_mixed`` — the headline number: the loadgen's
  mixed CAD workload over 8 concurrent connections, reported as
  committed transactions/second (the same figure ``repro loadgen``
  writes to ``BENCH_server.json``).
"""

from __future__ import annotations

import asyncio

from repro.server import Client, ServerConfig, ServerThread, build_workload
from repro.server.loadgen import run_loadgen

from conftest import report


def _workload():
    return build_workload("cad", transactions=8, seed=3)


def test_server_request_roundtrip(benchmark):
    benchmark.group = "server"
    with ServerThread(_workload().fresh_database) as handle:
        with Client.connect("127.0.0.1", handle.port) as client:
            benchmark(client.ping)


def test_server_lifecycle_throughput(benchmark):
    benchmark.group = "server"
    with ServerThread(_workload().fresh_database) as handle:
        with Client.connect("127.0.0.1", handle.port) as client:
            counter = [0]

            def one_transaction():
                counter[0] += 1
                txn = client.define(
                    updates=["m0_e1"], input_constraint="m0_e0 >= 0"
                )
                client.validate(txn)
                value = client.read(txn, "m0_e0")
                client.write(
                    txn, "m0_e1", (value + counter[0]) % 1000
                )
                client.commit(txn)

            benchmark(one_transaction)


def test_server_loadgen_mixed(benchmark):
    """S1 headline: mixed workload over 8 concurrent connections."""
    benchmark.group = "server"
    workload = _workload()

    def one_replay():
        with ServerThread(
            workload.fresh_database, ServerConfig(port=0)
        ) as handle:
            return asyncio.run(
                run_loadgen(
                    workload,
                    clients=8,
                    port=handle.port,
                    connect_retries=2,
                )
            )

    result = benchmark.pedantic(one_replay, rounds=3, iterations=1)
    assert result.protocol_errors == 0
    report(
        "S1 server loadgen (8 clients, mixed CAD)",
        f"committed {result.committed}/{result.scripts}, "
        f"throughput {result.throughput:.1f} txn/s, "
        f"p95 request latency "
        f"{result.latency.percentile(95) * 1000:.2f} ms, "
        f"busy retries {result.busy_retries}, "
        f"restarts {result.restarts}",
    )
