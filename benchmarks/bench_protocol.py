"""Experiments F3, F4, L4, T2 — the Section-5 protocol.

F3: the Figure-3 lock compatibility matrix, behaviourally.
F4: Figure-4 re-evaluation — abort on read, re-assign on validation.
L4: protocol runs are parent-based executions.
T2: protocol runs are correct executions.
"""

from __future__ import annotations

import random

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import (
    LockMode,
    LockTable,
    Outcome,
    TransactionManager,
    TxnPhase,
    lock_compatibility_matrix,
)
from repro.storage import Database

from conftest import report


def _database(entities=("x", "y", "z"), initial=10):
    schema = Schema.of(*entities, domain=Domain.interval(0, 100_000))
    constraint = Predicate(
        tuple(
            Predicate.parse(f"{name} >= 0").clauses[0]
            for name in entities
        )
    )
    return Database(
        schema, constraint, {name: initial for name in entities}
    )


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


def test_f3_lock_matrix(benchmark):
    matrix = lock_compatibility_matrix()
    # The reconstructed Figure 3.
    assert matrix == {
        ("R_v", "R_v"): True,
        ("R_v", "R"): True,
        ("R_v", "W"): True,
        ("R", "R_v"): True,
        ("R", "R"): True,
        ("R", "W"): True,
        ("W", "R_v"): False,
        ("W", "R"): False,
        ("W", "W"): True,
    }

    def lock_churn():
        table = LockTable()
        for index in range(200):
            txn = f"t.{index % 8}"
            table.request(txn, "x", LockMode.RV)
            table.request(txn, "x", LockMode.W)
            table.release(txn, "x", LockMode.W)
        return table

    benchmark(lock_churn)
    report(
        "F3: lock compatibility matrix (held × requested)",
        "\n".join(
            f"  held {held:3s} req {req:3s} -> "
            f"{'grant' if ok else 'block+re-eval'}"
            for (held, req), ok in sorted(matrix.items())
        ),
    )


def test_f4_reeval_scenarios(benchmark):
    def run_scenarios():
        db = _database()
        tm = TransactionManager(db)
        # Scenario A: validating successor is re-assigned.
        pred = tm.define(tm.root, _spec(), {"x"})
        validating = tm.define(
            tm.root, _spec("x >= 0"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(validating)
        result_a = tm.write(pred, "x", 42)
        # Scenario B: successor that already read is aborted.
        pred2 = tm.define(tm.root, _spec(), {"y"})
        reader = tm.define(
            tm.root, _spec("y >= 0"), set(), predecessors=[pred2]
        )
        tm.validate(pred2)
        tm.validate(reader)
        tm.read(reader, "y")
        result_b = tm.write(pred2, "y", 43)
        return validating, result_a, reader, result_b, tm

    validating, result_a, reader, result_b, tm = benchmark(run_scenarios)
    assert validating in result_a.reassigned
    assert tm.assigned_versions(validating)["x"].value == 42
    assert reader in result_b.aborted
    assert tm.phase(reader) is TxnPhase.ABORTED


def _random_protocol_run(seed: int):
    """A randomized protocol session; returns the manager."""
    rng = random.Random(seed)
    entities = ("x", "y", "z")
    db = _database(entities)
    tm = TransactionManager(db)
    live: list[str] = []
    for index in range(10):
        reads = rng.sample(entities, rng.randint(1, 2))
        writes = set(rng.sample(entities, rng.randint(0, 2)))
        constraint = " & ".join(f"{e} >= 0" for e in reads)
        predecessors = (
            [rng.choice(live)]
            if live and rng.random() < 0.4
            else []
        )
        predecessors = [
            p for p in predecessors
            if tm.phase(p) is not TxnPhase.ABORTED
        ]
        txn = tm.define(
            tm.root, _spec(constraint), writes,
            predecessors=predecessors,
        )
        if tm.validate(txn).outcome is not Outcome.OK:
            continue
        live.append(txn)
        for entity in reads:
            if tm.phase(txn) is not TxnPhase.VALIDATED:
                break
            tm.read(txn, entity)
        for entity in writes:
            if tm.phase(txn) is not TxnPhase.VALIDATED:
                break
            tm.write(txn, entity, rng.randint(0, 1000))
    # Commit whatever can commit, in definition order, repeatedly.
    for _ in range(3):
        for txn in live:
            if tm.phase(txn) is TxnPhase.VALIDATED:
                tm.commit(txn)
    return tm


def test_l4_parent_based_property(benchmark):
    def run_many():
        managers = [_random_protocol_run(seed) for seed in range(12)]
        return managers

    managers = benchmark.pedantic(run_many, rounds=1, iterations=1)
    committed = 0
    for tm in managers:
        violations = tm.verify_parent_based(tm.root)
        assert violations == [], violations
        committed += sum(
            1
            for child in tm.children_of(tm.root)
            if tm.phase(child) is TxnPhase.COMMITTED
        )
    assert committed > 40  # the property was exercised for real
    report(
        "L4: parent-based verification over randomized runs",
        f"  12 runs, {committed} committed transactions, 0 violations",
    )


def test_t2_correctness_property(benchmark):
    def run_many():
        return [_random_protocol_run(seed + 100) for seed in range(12)]

    managers = benchmark.pedantic(run_many, rounds=1, iterations=1)
    for tm in managers:
        violations = tm.verify_correctness(tm.root)
        assert violations == [], violations


def test_recovery_replay_throughput(benchmark):
    """Redo-log replay speed — the §6 recovery story's cost."""
    from repro.protocol.replay import (
        histories_match,
        log_from_json,
        log_to_json,
        replay,
    )

    def build_session():
        db = _database()
        tm = TransactionManager(db)
        for index in range(20):
            txn = tm.define(
                tm.root, _spec("x >= 0"), {"y" if index % 2 else "z"}
            )
            tm.validate(txn)
            tm.read(txn, "x")
            tm.write(
                txn, "y" if index % 2 else "z", index * 7 % 1000
            )
            tm.commit(txn)
        return tm

    original = build_session()
    serialized = log_to_json(original.log)

    def replay_once():
        return replay(log_from_json(serialized), _database())

    rebuilt = benchmark(replay_once)
    assert histories_match(original, rebuilt)


def test_protocol_throughput(benchmark):
    """Micro-benchmark: one full define/validate/read/write/commit."""

    db = _database()
    tm = TransactionManager(db)
    counter = [0]

    def one_transaction():
        counter[0] += 1
        txn = tm.define(tm.root, _spec("x >= 0"), {"y"})
        tm.validate(txn)
        tm.read(txn, "x")
        tm.write(txn, "y", counter[0] % 1000)
        tm.commit(txn)

    benchmark(one_transaction)
