"""Fuzzer throughput and shrink cost (writes BENCH_fuzz.json).

Two measurements of the deterministic fuzzer:

1. Corpus throughput — wall seconds per seeded run over a 100-seed
   corpus (every oracle evaluated), broken down by run flavor
   (in-memory / durable / crash).  This bounds how large a CI smoke
   corpus can be: the 200-run smoke job must fit its 90-second budget
   with a wide margin.
2. Shrink cost — with a lost-commit regression injected, the number of
   delta-debugging runs and wall seconds to minimize a failing plan,
   plus the reduction achieved (ops before -> after).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.fuzz import generate_plan, run_corpus, run_seed, shrink_plan
from repro.fuzz.runner import execute_plan
from repro.server.protocol import ok_response
from repro.server.session import CommandDispatcher

from conftest import report

ROOT = Path(__file__).resolve().parent.parent

CORPUS_RUNS = 100
SHRINK_SEEDS = (2, 3, 5)


def _bench_corpus() -> dict:
    start = time.perf_counter()
    result = run_corpus(1, CORPUS_RUNS, out_dir=None, shrink=False)
    seconds = time.perf_counter() - start
    flavors = {"memory": 0, "durable": 0, "crash": 0}
    for seed in range(1, CORPUS_RUNS + 1):
        plan = generate_plan(seed)
        if plan.crash_point is not None:
            flavors["crash"] += 1
        elif plan.durable:
            flavors["durable"] += 1
        else:
            flavors["memory"] += 1
    return {
        "runs": CORPUS_RUNS,
        "passed": result.passed,
        "seconds": round(seconds, 4),
        "runs_per_second": round(CORPUS_RUNS / seconds, 1),
        "ms_per_run": round(1000 * seconds / CORPUS_RUNS, 2),
        "flavors": flavors,
        "exit_code": result.exit_code,
    }


def _ack_without_commit(self, command):
    name = self._owned_txn(command)
    ok, reason = self._tm.can_commit(name)
    if not ok and "predecessor" in reason:
        return self._park(command, name, self._commit_waiters, None)
    if not ok:
        return ok_response(
            command.request_id, outcome="failed", reason=reason
        )
    self._count("server.txns.committed")
    return ok_response(command.request_id, outcome="committed")


def _bench_shrink() -> list[dict]:
    original = CommandDispatcher._op_commit
    CommandDispatcher._op_commit = _ack_without_commit
    entries = []
    try:
        for seed in SHRINK_SEEDS:
            failing = run_seed(seed)
            if failing.ok:
                continue
            signature = set(failing.failed_oracles)

            def reproduces(candidate):
                return signature <= set(
                    execute_plan(candidate).failed_oracles
                )

            start = time.perf_counter()
            small, runs = shrink_plan(failing.plan, reproduces)
            seconds = time.perf_counter() - start
            entries.append(
                {
                    "seed": seed,
                    "failed_oracles": sorted(signature),
                    "ops_before": failing.plan.op_count,
                    "ops_after": small.op_count,
                    "shrink_runs": runs,
                    "seconds": round(seconds, 4),
                }
            )
    finally:
        CommandDispatcher._op_commit = original
    return entries


def test_fuzz_throughput_and_shrink_write_benchmark_json():
    corpus = _bench_corpus()
    shrink = _bench_shrink()

    payload = {"corpus": corpus, "shrink": shrink}
    (ROOT / "BENCH_fuzz.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # The production code must be clean: every corpus run passes.
    assert corpus["exit_code"] == 0
    assert corpus["passed"] == CORPUS_RUNS
    # The CI smoke corpus (200 runs) must fit its 90s budget with
    # margin: require at least ~10 runs/second here.
    assert corpus["runs_per_second"] > 10, corpus
    # The injected regression is caught and shrinks to small plans.
    assert shrink, "lost-commit injection produced no failing seed"
    for entry in shrink:
        assert entry["ops_after"] <= 6, entry
        assert entry["ops_after"] <= entry["ops_before"]

    lines = [
        f"corpus: {corpus['runs']} runs in {corpus['seconds']:.2f}s "
        f"({corpus['runs_per_second']:.0f} runs/s, "
        f"{corpus['ms_per_run']:.1f} ms/run) "
        f"flavors={corpus['flavors']}"
    ]
    for entry in shrink:
        lines.append(
            f"shrink seed {entry['seed']}: {entry['ops_before']} -> "
            f"{entry['ops_after']} ops in {entry['shrink_runs']} runs "
            f"({entry['seconds']:.2f}s)"
        )
    report("F1: fuzzer throughput + shrink cost", "\n".join(lines))
