"""Experiment R1 — §1's recovery remark, quantified.

The paper's first criticism of serializability-as-correctness:
"included among the serializable schedules are schedules that present
several obstacles to crash recovery (allowance of cascading rollbacks
and non-recoverable schedules)."

The benchmark measures, over an exhaustive interleaving population,
what fraction of *serializable* schedules are unrecoverable / cascade-
prone / non-strict under the natural finish-order commit sequence —
plus the RC ⊇ ACA ⊇ ST chain on the same population.
"""

from __future__ import annotations

from repro.classes import is_view_serializable
from repro.schedules import Schedule, interleavings, recovery_profile

from conftest import report


def _finish_order(schedule: Schedule) -> list[str]:
    """Commit order = order of last operations (natural finish order)."""
    last = {}
    for index, op in enumerate(schedule.operations):
        last[op.txn] = index
    return sorted(last, key=lambda txn: last[txn])


def test_r1_serializable_but_recovery_hazardous(benchmark):
    from itertools import permutations

    programs = Schedule.parse(
        "w1(x) r1(y) w2(y) r2(x) w2(x)"
    ).programs()

    def census():
        totals = {
            "schedules": 0,
            "SR": 0,
            # "allows" = some legal commit order exhibits the hazard.
            "SR allowing ¬RC": 0,
            "SR allowing ¬ACA": 0,
            "SR allowing ¬ST": 0,
            # finish-order commits: the well-behaved baseline.
            "RC@finish": 0,
            "ACA@finish": 0,
            "ST@finish": 0,
        }
        for schedule in interleavings(programs):
            totals["schedules"] += 1
            finish = recovery_profile(
                schedule, _finish_order(schedule)
            )
            for name in ("RC", "ACA", "ST"):
                if finish[name]:
                    totals[f"{name}@finish"] += 1
            if not is_view_serializable(schedule):
                continue
            totals["SR"] += 1
            profiles = [
                recovery_profile(schedule, list(order))
                for order in permutations(schedule.transactions)
            ]
            for name in ("RC", "ACA", "ST"):
                if any(not profile[name] for profile in profiles):
                    totals[f"SR allowing ¬{name}"] += 1
        return totals

    totals = benchmark(census)
    # The hierarchy must hold on the whole population…
    assert totals["ST@finish"] <= totals["ACA@finish"]
    assert totals["ACA@finish"] <= totals["RC@finish"]
    # …and the paper's §1 claim must be witnessed: serializability
    # *allows* non-recoverable behaviour.
    assert totals["SR allowing ¬RC"] > 0
    assert totals["SR allowing ¬ST"] >= totals["SR allowing ¬RC"]
    report(
        "R1: recovery hazards among serializable schedules "
        f"({totals['schedules']} interleavings)",
        "\n".join(
            f"  {key:18s} {value}" for key, value in totals.items()
        ),
    )


def test_r1_strictness_of_protocol_histories(benchmark):
    """The Section-5 protocol's mono-version *shadow* is RC by design:
    committed readers always follow their writers (commit requires all
    partial-order predecessors committed, and re-eval aborts stale
    readers)."""
    from repro.core import Domain, Predicate, Schema, Spec
    from repro.protocol import Outcome, TransactionManager
    from repro.storage import Database

    def run_session():
        schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
        db = Database(
            schema,
            Predicate.parse("x >= 0 & y >= 0"),
            {"x": 1, "y": 1},
        )
        tm = TransactionManager(db)
        writer = tm.define(
            tm.root,
            Spec(Predicate.parse("x >= 0"), Predicate.true()),
            {"x"},
        )
        reader = tm.define(
            tm.root,
            Spec(Predicate.parse("x >= 0"), Predicate.true()),
            set(),
            predecessors=[writer],
        )
        tm.validate(writer)
        tm.validate(reader)
        tm.read(writer, "x")
        tm.write(writer, "x", 5)
        tm.read(reader, "x")
        # The reader cannot commit before its writer (RC enforced by
        # the predecessor rule).
        blocked = tm.commit(reader)
        committed = tm.commit(writer)
        finished = tm.commit(reader)
        return blocked, committed, finished

    blocked, committed, finished = benchmark(run_session)
    assert blocked.outcome is Outcome.FAILED
    assert committed.outcome is Outcome.OK
    assert finished.outcome is Outcome.OK
