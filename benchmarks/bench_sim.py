"""Experiment S1 — cluster-simulation sweep (writes BENCH_sim.json).

Grids the hot-key contention scenario over cluster size (a 3-node and
a ≥6-node cell) × partition rate, runs every cell through the full
discrete-event cluster simulator (`repro.des`) with oracle + invariant
validation, and records per-cell throughput, abort rate, and
replication-lag percentiles.  The document is a pure function of the
base scenario + seed, so CI runs it twice and asserts byte equality —
the bench file doubles as a determinism regression test.

Run directly (``python benchmarks/bench_sim.py``) or via pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.des import get_scenario, run_sweep

from conftest import report

ROOT = Path(__file__).resolve().parent.parent

NODES = [3, 6]
PARTITION_RATES = [0.0, 0.3]


def bench_sweep() -> dict:
    base = get_scenario("hot_key_storm")
    doc = run_sweep(
        base, nodes=NODES, partition_rates=PARTITION_RATES
    )
    again = run_sweep(
        base, nodes=NODES, partition_rates=PARTITION_RATES
    )
    assert json.dumps(doc, sort_keys=True) == json.dumps(
        again, sort_keys=True
    ), "sweep is nondeterministic"
    return doc


def test_sim_benchmark_writes_json():
    doc = bench_sweep()
    (ROOT / "BENCH_sim.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    assert doc["ok"], [
        (cell["scenario"], cell["failed_checks"])
        for cell in doc["cells"]
        if not cell["ok"]
    ]
    assert any(cell["nodes"] >= 6 for cell in doc["cells"])
    rows = "; ".join(
        f"n{cell['nodes']}/pr{cell['partition_rate']:g}: "
        f"{cell['metrics']['throughput_commits_per_s']:.1f} c/s, "
        f"abort {cell['metrics']['abort_rate']:.2f}, "
        f"lag p95 {cell['metrics']['lag_lsn_p95']:g}"
        for cell in doc["cells"]
    )
    report("S1 cluster simulation sweep", rows)


if __name__ == "__main__":
    test_sim_benchmark_writes_json()
    print((ROOT / "BENCH_sim.json").read_text(encoding="utf-8"))
