"""Ablation D1 — class size as admitted concurrency.

DESIGN.md calls out the central design claim behind every Section-4
extension: a richer correctness class = more admissible interleavings
= fewer scheduler-imposed waits/aborts.  This benchmark measures it
directly: over every interleaving of Example 1's programs, count what
strict 2PL and basic TO would actually admit, and what each class
would permit a clairvoyant scheduler to admit.
"""

from __future__ import annotations

from repro.analysis import (
    admission_report,
    example1_programs,
    text_table,
)

from conftest import report


def test_d1_admission_ladder(benchmark):
    programs = example1_programs()

    def run_report():
        return admission_report(programs, [{"x"}, {"y"}])

    result = benchmark(run_report)
    counts = result.counts
    # The ladder the paper's Section 4 climbs, rung by rung.
    assert counts["s2pl"] <= counts["CSR"]
    assert counts["to"] <= counts["CSR"]
    assert counts["CSR"] <= counts["SR"] <= counts["MVSR"] <= counts["PC"]
    assert counts["CSR"] <= counts["PWCSR"] <= counts["CPC"] <= counts["PC"]
    assert counts["CPC"] > counts["CSR"]  # a real gain
    report(
        "D1: interleavings admitted per criterion "
        f"(Example 1's programs, {result.total} interleavings)",
        text_table(result.rows()),
    )


def test_d1_wider_programs(benchmark):
    """Same ladder on a 3-transaction program set (more interleavings)."""
    from repro.schedules import Schedule

    programs = Schedule.parse(
        "r1(x) w1(x) r2(y) w2(y) r3(x) r3(y)"
    ).programs()

    def run_report():
        return admission_report(programs, [{"x"}, {"y"}])

    result = benchmark.pedantic(run_report, rounds=1, iterations=1)
    counts = result.counts
    assert result.total == 90  # 6! / (2! 2! 2!)
    assert counts["s2pl"] <= counts["CSR"] <= counts["PC"]
    report(
        "D1b: admission ladder on a 3-transaction mixed program set",
        text_table(result.rows()),
    )
