"""Experiment P1 — the motivating performance claims (§1, §2.4, §5).

The paper has no measured evaluation; its claims are qualitative:

* 2PL makes long transactions wait for the duration of other long
  transactions (and deadlock-aborts them);
* timestamp schemes trade the waits for aborts, losing human work;
* the Section-5 protocol blocks only for the duration of individual
  write *operations* and aborts only on genuine partial-order
  invalidation.

These benchmarks regenerate that shape on the synthetic CAD workload:
per-scheduler wait/abort/makespan tables, plus a think-time sweep
showing 2PL's waits scale with transaction duration while the
protocol's do not.
"""

from __future__ import annotations

from repro.sim import (
    DEFAULT_SCHEDULERS,
    cad_workload,
    compare_schedulers,
    metrics_table,
    oltp_workload,
    run_one,
)

from conftest import report


def test_p1_cad_comparison(benchmark, cad_workload_std):
    def run_all():
        return compare_schedulers(cad_workload_std, seed=1)

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ks = results["korth-speegle"]
    s2pl = results["s2pl"]
    to = results["to"]
    serial = results["serial"]

    # Goal 1: reduce the number and duration of waits.
    assert ks.total_wait_time <= s2pl.total_wait_time
    assert ks.total_waits <= s2pl.total_waits
    # Goal 2: reduce the number and effect of aborts.
    assert ks.total_restarts <= to.total_restarts
    assert ks.total_wasted_time <= to.total_wasted_time
    # Concurrency: beat the serial makespan.
    assert ks.makespan < serial.makespan
    # Everyone the protocol admitted actually committed.
    assert ks.committed_count == len(cad_workload_std.scripts)

    report(
        "P1: scheduler comparison on the long-duration CAD workload",
        metrics_table(results),
    )


def test_p1_think_time_sweep(benchmark):
    def sweep():
        rows = []
        for think in (0.0, 50.0, 100.0, 200.0, 400.0):
            workload = cad_workload(
                num_designers=6, think_time=think, seed=3
            )
            s2pl = run_one(
                DEFAULT_SCHEDULERS["s2pl"], workload, seed=1
            )
            ks = run_one(
                DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=1
            )
            rows.append(
                {
                    "think": think,
                    "s2pl_wait": round(s2pl.total_wait_time, 1),
                    "s2pl_restarts": s2pl.total_restarts,
                    "ks_wait": round(ks.total_wait_time, 1),
                    "ks_restarts": ks.total_restarts,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # 2PL's wait time grows with think time; the protocol's does not.
    s2pl_waits = [row["s2pl_wait"] for row in rows]
    ks_waits = [row["ks_wait"] for row in rows]
    assert s2pl_waits[-1] > s2pl_waits[1] > 0
    assert max(ks_waits) <= min(s2pl_waits[1:])
    from repro.analysis import text_table

    report("P1b: wait time vs think time", text_table(rows))


def test_p1_oltp_no_regression(benchmark):
    workload = oltp_workload(num_transactions=16, seed=5)

    def run_all():
        return compare_schedulers(workload, seed=1)

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, metrics in results.items():
        assert metrics.committed_count == 16, name
    # The protocol's makespan is within 25% of the best scheduler.
    best = min(m.makespan for m in results.values())
    assert results["korth-speegle"].makespan <= best * 1.25
    report(
        "P1c: short-transaction (OLTP) workload — protocols agree",
        metrics_table(results),
    )


def test_p1_contention_sweep(benchmark):
    """Abort behaviour as module contention rises (fewer modules)."""

    def sweep():
        rows = []
        for modules in (4, 2, 1):
            workload = cad_workload(
                num_designers=6,
                num_modules=modules,
                think_time=100.0,
                seed=3,
            )
            to = run_one(DEFAULT_SCHEDULERS["to"], workload, seed=1)
            ks = run_one(
                DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=1
            )
            rows.append(
                {
                    "modules": modules,
                    "to_restarts": to.total_restarts,
                    "to_wasted": round(to.total_wasted_time, 1),
                    "ks_restarts": ks.total_restarts,
                    "ks_wasted": round(ks.total_wasted_time, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["ks_restarts"] <= row["to_restarts"]
    from repro.analysis import text_table

    report("P1d: aborts vs contention (fewer modules = hotter)", text_table(rows))
