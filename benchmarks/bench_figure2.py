"""Experiment F2 — Figure 2, regenerated (§4.3).

Three reproductions of the figure:

* the paper's nine region examples each land in exactly the region the
  figure claims (assertions);
* an exhaustive census over Example 1's 35 interleavings, timed, with
  region populations printed;
* containment laws verified on every schedule the census touches.
"""

from __future__ import annotations

from repro.analysis import (
    blind_write_programs,
    census_of_programs,
    example1_programs,
    region_report,
)
from repro.classes import FIGURE2_EXAMPLES, classify

from conftest import report


def test_f2_region_examples(benchmark):
    def classify_all():
        return [
            (example.claimed_region, example.region())
            for example in FIGURE2_EXAMPLES
        ]

    pairs = benchmark(classify_all)
    for claimed, computed in pairs:
        assert claimed == computed
    assert sorted(computed for _, computed in pairs) == list(
        range(1, 10)
    )


def test_f2_exhaustive_census(benchmark):
    programs = example1_programs()

    def run_census():
        return census_of_programs(programs, [{"x"}, {"y"}])

    result = benchmark(run_census)
    assert result.total == 35
    assert result.containment_failures == 0
    # The census must populate the regions the example-1 programs can
    # reach, including the paper's target region 4.
    assert result.by_region.get(4, 0) >= 1
    assert result.by_region.get(9, 0) >= 1
    report(
        "F2: Figure-2 region populations "
        "(all 35 interleavings of Example 1)",
        region_report(result.by_region)
        + f"\nstrict gains: {result.strict_gains()}",
    )


def test_f2_blind_write_census(benchmark):
    """The region-5/7 family: blind writes separate SR from CSR."""
    programs = blind_write_programs()

    def run_census():
        return census_of_programs(programs, [{"x"}])

    result = benchmark(run_census)
    assert result.total == 12
    assert result.containment_failures == 0
    # Blind writes populate the regions Example 1 cannot reach.
    assert result.by_region.get(5, 0) >= 1  # SR − PWCSR
    assert result.by_region.get(7, 0) >= 1  # MVCSR − PWCSR
    report(
        "F2c: blind-write program family (regions 5/7/9)",
        region_report(result.by_region),
    )


def test_f2_nonemptiness_by_exhaustion(benchmark):
    """Every Figure-2 region is populated by some interleaving of the
    five program families — the figure's structural claim, proved by
    exhaustive enumeration."""
    from repro.analysis import figure2_reachability

    merged = benchmark.pedantic(
        figure2_reachability, rounds=1, iterations=1
    )
    for region in range(1, 10):
        assert merged.get(region, 0) > 0
    report(
        "F2d: region reachability across all program families",
        region_report(merged),
    )


def test_f2_containments_on_random_population(benchmark):
    from repro.analysis import census_of_random_schedules

    def run_census():
        return census_of_random_schedules(
            300,
            num_transactions=3,
            ops_per_transaction=3,
            entities=("x", "y"),
            objects=[{"x"}, {"y"}],
            seed=42,
        )

    result = benchmark(run_census)
    assert result.containment_failures == 0
    assert result.by_class.get("PC", 0) >= result.by_class.get("CPC", 0)
    report(
        "F2b: class populations over 300 random schedules",
        "\n".join(
            f"  {name:6s} {count:4d}"
            for name, count in sorted(result.by_class.items())
        ),
    )
