"""Experiments L1, T1, P3 — the complexity results (§3.2, §4.3).

L1: the Lemma-1 reduction round-trips, and the exact search cost grows
    with instance size while the certificate check stays flat.
T1: execution-correctness via the Theorem-1 embedding.
P3: the CPC test is polynomial while the SR/PC testers blow up
    factorially in the number of transactions — timed side by side.
"""

from __future__ import annotations

import time

from repro.classes import (
    is_conflict_predicate_correct,
    is_view_serializable,
)
from repro.core import (
    VersionState,
    lemma1_instance,
    theorem1_instance,
    verify_certificate,
)
from repro.sat import random_formula
from repro.schedules import random_schedule

from conftest import report


def test_l1_reduction_and_search(benchmark):
    formula = random_formula(8, 30, seed=11)
    instance = lemma1_instance(formula)

    witness = benchmark(instance.solve_direct)
    via_sat = instance.solve_via_sat()
    assert (witness is None) == (via_sat is None)
    if witness is not None:
        assert instance.input_constraint.evaluate(witness)


def test_l1_certificate_check_is_cheap(benchmark):
    formula = random_formula(10, 35, seed=13)
    instance = lemma1_instance(formula)
    witness = instance.solve_direct()
    if witness is None:  # certificate for the trivial direction
        witness = VersionState(
            instance.schema,
            {name: 0 for name in instance.schema.names},
        )

    def check():
        return instance.input_constraint.evaluate(witness)

    benchmark(check)


def test_l1_scaling_curve(benchmark):
    """Search cost versus variable count (clause ratio fixed ≈ 4.2)."""

    def sweep():
        rows = []
        for num_vars in (4, 6, 8, 10, 12):
            formula = random_formula(
                num_vars, int(num_vars * 4.2), seed=num_vars
            )
            instance = lemma1_instance(formula)
            start = time.perf_counter()
            instance.solve_direct()
            rows.append(
                (num_vars, time.perf_counter() - start)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "L1: exact version-search time vs |E| (phase-transition CNF)",
        "\n".join(
            f"  |E|={n:3d}  {seconds * 1e3:8.2f} ms"
            for n, seconds in rows
        ),
    )


def test_t1_execution_correctness(benchmark):
    formula = random_formula(6, 20, seed=3)
    instance = theorem1_instance(formula)

    execution = benchmark(instance.solve)
    if execution is not None:
        child = instance.transaction.child_names[0]
        assert verify_certificate(
            instance,
            {child: execution.input_state(child)},
            execution.final_state,
        )


def test_p3_cpc_polynomial_vs_sr_exponential(benchmark):
    """CPC (per-conjunct graph acyclicity) vs SR recognition cost.

    The NP-completeness exhibit times the *definitional* SR test — the
    all-permutations sweep — since that is the cost the complexity
    claim is about.  The production tester (pruned backtracking) is
    timed alongside to show how far instance-level pruning gets on
    random schedules, but NP-completeness is a worst-case statement,
    so no growth assertion is made about it.
    """
    from repro.classes.view import brute_force_view_serialization_order

    def sweep():
        rows = []
        for num_txns in (2, 3, 4, 5, 6):
            schedule = random_schedule(
                num_txns, 3, ["x", "y", "z"], seed=num_txns
            )
            objects = [{"x"}, {"y"}, {"z"}]
            start = time.perf_counter()
            is_conflict_predicate_correct(schedule, objects)
            cpc_time = time.perf_counter() - start
            start = time.perf_counter()
            brute_force_view_serialization_order(schedule)
            sweep_time = time.perf_counter() - start
            start = time.perf_counter()
            is_view_serializable(schedule)
            pruned_time = time.perf_counter() - start
            rows.append((num_txns, cpc_time, sweep_time, pruned_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "P3: recognition cost, CPC (polynomial) vs SR (NP-complete)",
        "\n".join(
            f"  n={n}  CPC {cpc * 1e6:9.1f} µs   "
            f"SR-sweep {sweep_us * 1e6:9.1f} µs   "
            f"SR-pruned {pruned * 1e6:9.1f} µs"
            for n, cpc, sweep_us, pruned in rows
        ),
    )
    # The definitional SR sweep's cost must grow much faster than
    # CPC's (factorially in the number of transactions).
    assert rows[-1][2] > rows[-1][1]


def test_p3_cpc_throughput(benchmark):
    schedule = random_schedule(6, 4, ["x", "y", "z"], seed=5)
    objects = [{"x"}, {"y"}, {"z"}]

    benchmark(
        lambda: is_conflict_predicate_correct(schedule, objects)
    )
