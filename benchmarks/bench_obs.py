"""Experiment O1 — observability overhead.

The tracer must be free when off.  ``test_protocol_throughput`` in
``bench_protocol.py`` is the canonical un-traced number (same loop as
the seed); the benchmarks here run the identical loop with the default
no-op tracer and with a :class:`~repro.obs.trace.RecordingTracer`
attached, all in one ``obs-overhead`` comparison group, so

    pytest benchmarks/bench_obs.py benchmarks/bench_protocol.py \
        --benchmark-only --benchmark-group-by=group

prints the disabled-vs-recording-vs-seed columns side by side.  The
acceptance bar is: *disabled* within 5% of the seed loop (they execute
the same instructions plus one ``enabled`` branch per hook).

Run any benchmark here with ``--trace-out FILE`` to also dump a
recorded simulator trace as JSONL (see ``conftest.py``).
"""

from __future__ import annotations

import time

from repro.core import Domain, Predicate, Schema, Spec
from repro.obs import MetricsRegistry, RecordingTracer
from repro.protocol import TransactionManager
from repro.storage import Database

from conftest import report


def _database(entities=("x", "y", "z"), initial=10):
    schema = Schema.of(*entities, domain=Domain.interval(0, 100_000))
    constraint = Predicate(
        tuple(
            Predicate.parse(f"{name} >= 0").clauses[0]
            for name in entities
        )
    )
    return Database(
        schema, constraint, {name: initial for name in entities}
    )


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


def _one_transaction(tm: TransactionManager, counter: list[int]) -> None:
    counter[0] += 1
    txn = tm.define(tm.root, _spec("x >= 0"), {"y"})
    tm.validate(txn)
    tm.read(txn, "x")
    tm.write(txn, "y", counter[0] % 1000)
    tm.commit(txn)


def test_obs_disabled_throughput(benchmark):
    """The default path: NULL_TRACER, no registry (the common case)."""
    benchmark.group = "obs-overhead"
    tm = TransactionManager(_database())
    counter = [0]
    benchmark(lambda: _one_transaction(tm, counter))


def test_obs_recording_throughput(benchmark):
    """Full recording: every span kept in memory, histograms fed."""
    benchmark.group = "obs-overhead"
    tm = TransactionManager(_database())
    tm.set_tracer(RecordingTracer())
    tm.set_registry(MetricsRegistry())
    counter = [0]
    benchmark(lambda: _one_transaction(tm, counter))


def test_obs_overhead_ratio():
    """Report disabled-vs-recording per-transaction cost directly.

    Not a pytest-benchmark case: one deliberate A/B measurement whose
    numbers land in the experiment report.  The assertion is a loose
    sanity bound (recording below 10x disabled), not a perf gate —
    perf gates on shared CI runners flake.
    """

    def measure(recording: bool, rounds: int = 400) -> float:
        tm = TransactionManager(_database())
        if recording:
            tm.set_tracer(RecordingTracer())
            tm.set_registry(MetricsRegistry())
        counter = [0]
        for _ in range(50):  # warmup
            _one_transaction(tm, counter)
        start = time.perf_counter()
        for _ in range(rounds):
            _one_transaction(tm, counter)
        return (time.perf_counter() - start) / rounds

    disabled = min(measure(False) for _ in range(3))
    recording = min(measure(True) for _ in range(3))
    ratio = recording / disabled if disabled else float("inf")
    report(
        "O1: tracing overhead per protocol transaction",
        f"  disabled   {disabled * 1e6:8.2f} us/txn\n"
        f"  recording  {recording * 1e6:8.2f} us/txn\n"
        f"  ratio      {ratio:8.2f}x",
    )
    assert ratio < 10.0


def test_obs_sim_trace_volume(benchmark, cad_workload_std, trace_path):
    """Recording a full simulator run: span volume and wall cost."""
    from repro.obs import write_jsonl
    from repro.sim import DEFAULT_SCHEDULERS, run_one

    def traced_run():
        tracer = RecordingTracer()
        run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            cad_workload_std,
            seed=3,
            tracer=tracer,
        )
        return tracer

    tracer = benchmark.pedantic(traced_run, rounds=3, iterations=1)
    assert {"arrive", "validate", "commit", "txn"} <= tracer.kinds()
    lines = ""
    if trace_path:
        count = write_jsonl(list(tracer.spans), trace_path)
        lines = f"\n  wrote {count} spans -> {trace_path}"
    report(
        "O1: trace volume for the standard CAD run",
        f"  {len(tracer)} spans, kinds: "
        f"{', '.join(sorted(tracer.kinds()))}{lines}",
    )
