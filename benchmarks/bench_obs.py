"""Experiment O1 — observability overhead (writes BENCH_obs.json).

The tracer must be free when off.  ``test_protocol_throughput`` in
``bench_protocol.py`` is the canonical un-traced number (same loop as
the seed); the benchmarks here run the identical loop with the default
no-op tracer, with a :class:`~repro.obs.trace.RecordingTracer`, and
with the server's :class:`~repro.obs.live.LiveTracer` streaming into a
span ring, all in one ``obs-overhead`` comparison group, so

    pytest benchmarks/bench_obs.py benchmarks/bench_protocol.py \
        --benchmark-only --benchmark-group-by=group

prints the disabled-vs-recording-vs-live-vs-seed columns side by side.
The acceptance bar is: *disabled* within 5% of the seed loop (they
execute the same instructions plus one ``enabled`` branch per hook).

``test_obs_live_overhead_write_benchmark_json`` measures the number
that matters operationally — live tracing enabled on the dispatcher
hot path (the loadgen transaction shape through a running
:class:`CommandDispatcher`) versus the same path untraced — and
records it in ``BENCH_obs.json`` with the <5% target.  On the full
wire path the per-span bookkeeping additionally hides behind syscalls
and scheduling, which is why ``--trace-out`` is safe to leave on in
production.

Run any benchmark here with ``--trace-out FILE`` to also dump a
recorded simulator trace as JSONL (see ``conftest.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import Domain, Predicate, Schema, Spec
from repro.obs import LiveTracer, MetricsRegistry, RecordingTracer, SpanRing
from repro.protocol import TransactionManager
from repro.storage import Database

from conftest import report

ROOT = Path(__file__).resolve().parent.parent


def _database(entities=("x", "y", "z"), initial=10):
    schema = Schema.of(*entities, domain=Domain.interval(0, 100_000))
    constraint = Predicate(
        tuple(
            Predicate.parse(f"{name} >= 0").clauses[0]
            for name in entities
        )
    )
    return Database(
        schema, constraint, {name: initial for name in entities}
    )


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


def _one_transaction(tm: TransactionManager, counter: list[int]) -> None:
    counter[0] += 1
    txn = tm.define(tm.root, _spec("x >= 0"), {"y"})
    tm.validate(txn)
    tm.read(txn, "x")
    tm.write(txn, "y", counter[0] % 1000)
    tm.commit(txn)


def test_obs_disabled_throughput(benchmark):
    """The default path: NULL_TRACER, no registry (the common case)."""
    benchmark.group = "obs-overhead"
    tm = TransactionManager(_database())
    counter = [0]
    benchmark(lambda: _one_transaction(tm, counter))


def test_obs_recording_throughput(benchmark):
    """Full recording: every span kept in memory, histograms fed."""
    benchmark.group = "obs-overhead"
    tm = TransactionManager(_database())
    tm.set_tracer(RecordingTracer())
    tm.set_registry(MetricsRegistry())
    counter = [0]
    benchmark(lambda: _one_transaction(tm, counter))


def test_obs_live_throughput(benchmark):
    """Streaming: spans pushed to a ring, nobody consuming (server
    default with ``--trace-out`` off but a tracer attached)."""
    benchmark.group = "obs-overhead"
    tm = TransactionManager(_database())
    tm.set_tracer(LiveTracer(SpanRing(4096)))
    tm.set_registry(MetricsRegistry())
    counter = [0]
    benchmark(lambda: _one_transaction(tm, counter))


def test_obs_overhead_ratio():
    """Report disabled-vs-recording per-transaction cost directly.

    Not a pytest-benchmark case: one deliberate A/B measurement whose
    numbers land in the experiment report.  The assertion is a loose
    sanity bound (recording below 10x disabled), not a perf gate —
    perf gates on shared CI runners flake.
    """

    def measure(recording: bool, rounds: int = 400) -> float:
        tm = TransactionManager(_database())
        if recording:
            tm.set_tracer(RecordingTracer())
            tm.set_registry(MetricsRegistry())
        counter = [0]
        for _ in range(50):  # warmup
            _one_transaction(tm, counter)
        start = time.perf_counter()
        for _ in range(rounds):
            _one_transaction(tm, counter)
        return (time.perf_counter() - start) / rounds

    disabled = min(measure(False) for _ in range(3))
    recording = min(measure(True) for _ in range(3))
    ratio = recording / disabled if disabled else float("inf")
    report(
        "O1: tracing overhead per protocol transaction",
        f"  disabled   {disabled * 1e6:8.2f} us/txn\n"
        f"  recording  {recording * 1e6:8.2f} us/txn\n"
        f"  ratio      {ratio:8.2f}x",
    )
    assert ratio < 10.0


def _measure_loop_us(make_tracer, rounds: int = 400) -> float:
    """min-of-3 us/txn over the bare protocol loop."""

    def once() -> float:
        tm = TransactionManager(_database())
        tracer = make_tracer()
        if tracer is not None:
            tm.set_tracer(tracer)
            tm.set_registry(MetricsRegistry())
        counter = [0]
        for _ in range(50):  # warmup
            _one_transaction(tm, counter)
        start = time.perf_counter()
        for _ in range(rounds):
            _one_transaction(tm, counter)
        return (time.perf_counter() - start) / rounds * 1e6

    return min(once() for _ in range(3))


def _measure_dispatcher_us(tracer, txns: int = 400) -> tuple[float, float]:
    """(wall us/txn, cpu us/txn) through the dispatcher hot path.

    The loadgen transaction shape (define, validate, read, write,
    commit) submitted straight to a running :class:`CommandDispatcher`
    — the full queue / request-span / parking machinery without the
    TCP transport, whose event-loop scheduling costs more CPU *and*
    varies more between runs than the tracing being measured.  The
    overhead verdict is computed from ``time.process_time``: tracing
    overhead is extra work, and on a shared runner wall time is
    dominated by scheduler jitter that dwarfs it.
    """
    import asyncio

    from repro.obs import MetricsRegistry as Registry
    from repro.server.protocol import Request
    from repro.server.session import CommandDispatcher, SessionState

    async def drive() -> tuple[float, float]:
        tm = TransactionManager(_database())
        registry = Registry()
        tm.set_registry(registry)
        if tracer is not None:
            tm.set_tracer(tracer)
        dispatcher = CommandDispatcher(
            tm, registry=registry, tracer=tracer
        )
        task = asyncio.ensure_future(dispatcher.run())
        session = SessionState(session_id=1, notify=lambda _p: None)
        rid = 0

        async def ask(op: str, **params):
            nonlocal rid
            rid += 1
            outcome = dispatcher.submit(session, Request(rid, op, params))
            return outcome if isinstance(outcome, dict) else await outcome

        async def one(i: int) -> None:
            reply = await ask(
                "define", updates=["y"], input="x >= 0", output="true"
            )
            txn = reply["txn"]
            await ask("validate", txn=txn)
            await ask("read", txn=txn, entity="x")
            await ask("write", txn=txn, entity="y", value=i % 1000)
            await ask("commit", txn=txn)

        for i in range(40):  # warmup
            await one(i)
        wall = time.perf_counter()
        cpu = time.process_time()
        for i in range(txns):
            await one(i)
        cpu = time.process_time() - cpu
        wall = time.perf_counter() - wall
        await dispatcher.stop()
        await task
        return wall / txns * 1e6, cpu / txns * 1e6

    return asyncio.run(drive())



def _measure_loadgen(tracer) -> tuple[float, float]:
    """(wall us/commit, cpu us/commit) for a full ``run_loadgen`` at
    defaults — 8 concurrent clients replaying the CAD workload over
    TCP loopback against a ServerThread, exactly what ``repro loadgen``
    does.  This is the scenario the <5% target is stated for."""
    import asyncio

    from repro.server import ServerThread
    from repro.server.loadgen import build_workload, run_loadgen

    workload = build_workload("cad", transactions=24, seed=3)
    with ServerThread(workload.fresh_database, tracer=tracer) as handle:
        wall = time.perf_counter()
        cpu = time.process_time()
        report_ = asyncio.run(
            run_loadgen(workload, clients=8, port=handle.port, seed=3)
        )
        cpu = time.process_time() - cpu
        wall = time.perf_counter() - wall
    committed = max(1, report_.committed)
    return wall / committed * 1e6, cpu / committed * 1e6


def test_obs_live_overhead_write_benchmark_json():
    """The operational number: live tracing on the dispatcher path.

    A/B through a running dispatcher — the same transaction shape as
    ``repro loadgen`` — untraced versus a LiveTracer feeding a span
    ring.  The <5% target lives in the JSON (and EXPERIMENTS
    tracks it); the in-test assertion is deliberately looser because
    perf gates on shared CI runners flake.
    """
    disabled_us = _measure_loop_us(lambda: None)
    recording_us = _measure_loop_us(RecordingTracer)
    live_us = _measure_loop_us(lambda: LiveTracer(SpanRing(4096)))
    # Interleaved A/B pairs: each pair shares the machine conditions of
    # its moment, so the per-pair CPU ratio cancels the slow drift (CPU
    # scaling, noisy neighbours) that dwarfs the effect across minutes.
    pairs = [
        (
            _measure_dispatcher_us(None),
            _measure_dispatcher_us(LiveTracer(SpanRing(65536))),
        )
        for _ in range(7)
    ]
    ratios = sorted(
        live_cpu / off_cpu
        for (_, off_cpu), (_, live_cpu) in pairs
        if off_cpu
    )
    median_ratio = ratios[len(ratios) // 2]
    disp_off = min(wall for (wall, _), _ in pairs)
    disp_live = min(wall for _, (wall, _) in pairs)
    disp_off_cpu = min(cpu for (_, cpu), _ in pairs)
    disp_live_cpu = min(cpu for _, (_, cpu) in pairs)
    overhead_pct = (median_ratio - 1.0) * 100.0
    # The number the <5% target is stated for: full loadgen defaults
    # (8 concurrent TCP clients, CAD workload) — tracing cost relative
    # to what a real served transaction costs end to end.
    lg_pairs = [
        (
            _measure_loadgen(None),
            _measure_loadgen(LiveTracer(SpanRing(65536))),
        )
        for _ in range(5)
    ]
    lg_ratios = sorted(
        live_cpu / off_cpu
        for (_, off_cpu), (_, live_cpu) in lg_pairs
        if off_cpu
    )
    lg_median = lg_ratios[len(lg_ratios) // 2]
    lg_overhead_pct = (lg_median - 1.0) * 100.0
    lg_off_cpu = min(cpu for (_, cpu), _ in lg_pairs)
    lg_live_cpu = min(cpu for _, (_, cpu) in lg_pairs)
    payload = {
        "protocol_loop": {
            "disabled_us_per_txn": round(disabled_us, 3),
            "recording_us_per_txn": round(recording_us, 3),
            "live_us_per_txn": round(live_us, 3),
            "recording_ratio": round(recording_us / disabled_us, 3),
            "live_ratio": round(live_us / disabled_us, 3),
        },
        "dispatcher": {
            "txn_shape": "define+validate+read+write+commit",
            "untraced_wall_us_per_txn": round(disp_off, 1),
            "live_wall_us_per_txn": round(disp_live, 1),
            "untraced_cpu_us_per_txn": round(disp_off_cpu, 1),
            "live_cpu_us_per_txn": round(disp_live_cpu, 1),
            "pair_cpu_ratios": [round(r, 4) for r in ratios],
            "overhead_pct": round(overhead_pct, 2),
            "overhead_basis": "median per-pair CPU-time ratio",
        },
        "loadgen_defaults": {
            "scenario": "run_loadgen cad, 8 clients, TCP loopback",
            "untraced_cpu_us_per_commit": round(lg_off_cpu, 1),
            "live_cpu_us_per_commit": round(lg_live_cpu, 1),
            "pair_cpu_ratios": [round(r, 4) for r in lg_ratios],
            "overhead_pct": round(lg_overhead_pct, 2),
            "overhead_basis": "median per-pair CPU-time ratio",
            "target_pct": 5.0,
        },
    }
    (ROOT / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report(
        "O1: live tracing overhead",
        f"  protocol loop  disabled {disabled_us:8.2f} us/txn   "
        f"recording {recording_us:8.2f}   live {live_us:8.2f}\n"
        f"  dispatcher w   untraced {disp_off:8.1f} us/txn   "
        f"live {disp_live:8.1f}\n"
        f"  dispatcher cpu untraced {disp_off_cpu:8.1f} us/txn   "
        f"live {disp_live_cpu:8.1f}   overhead {overhead_pct:+.2f}% "
        f"median of {len(ratios)} pairs\n"
        f"  loadgen cpu    untraced {lg_off_cpu:8.1f} us/commit "
        f"live {lg_live_cpu:8.1f}   overhead {lg_overhead_pct:+.2f}% "
        f"median of {len(lg_ratios)} pairs (target < 5%)",
    )
    # Loose sanity bounds only — shared/throttled CI runners swing the
    # measured ratio by 2x between runs (observed 1.08..1.25 medians
    # for identical code), so anything tighter flakes.  The 5% target
    # is tracked via the recorded overhead_pct in BENCH_obs.json.
    assert live_us < 25 * disabled_us
    assert median_ratio < 2.0
    assert lg_median < 2.0


def test_obs_sim_trace_volume(benchmark, cad_workload_std, trace_path):
    """Recording a full simulator run: span volume and wall cost."""
    from repro.obs import write_jsonl
    from repro.sim import DEFAULT_SCHEDULERS, run_one

    def traced_run():
        tracer = RecordingTracer()
        run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            cad_workload_std,
            seed=3,
            tracer=tracer,
        )
        return tracer

    tracer = benchmark.pedantic(traced_run, rounds=3, iterations=1)
    assert {"arrive", "validate", "commit", "txn"} <= tracer.kinds()
    lines = ""
    if trace_path:
        count = write_jsonl(list(tracer.spans), trace_path)
        lines = f"\n  wrote {count} spans -> {trace_path}"
    report(
        "O1: trace volume for the standard CAD run",
        f"  {len(tracer)} spans, kinds: "
        f"{', '.join(sorted(tracer.kinds()))}{lines}",
    )
