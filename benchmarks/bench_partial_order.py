"""Ablation D2 — partial-order programs (≺SR, §4.2), operationally.

Two measurements of the concurrency partial orders add:

* combinatorial: how many admissible interleavings a partial-order
  program set has versus its totally-ordered restriction
  (``admissibility_gain``);
* operational: a 2PL run where a transaction's unordered group lets it
  "access a different, available data item" instead of waiting —
  measured wait-time reduction versus the sequential script.
"""

from __future__ import annotations

from repro.classes import PartialOrderProgram, admissibility_gain
from repro.core import PartialOrder
from repro.schedules import R, W

from conftest import report


def test_d2_admissibility_gain(benchmark):
    # Figure-1-style transactions: a read gate, then parallel writes.
    def build_and_count():
        first = PartialOrderProgram(
            "1",
            (R("1", "x"), W("1", "y"), W("1", "z")),
            PartialOrder([0, 1, 2], [(0, 1), (0, 2)]),
        )
        second = PartialOrderProgram.unordered(
            "2", (R("2", "a"), R("2", "b"))
        )
        return admissibility_gain({"1": first, "2": second})

    gained, base = benchmark(build_and_count)
    assert gained > base
    report(
        "D2: admissible interleavings, partial-order vs total-order",
        f"  partial-order: {gained}\n  total-order:   {base}\n"
        f"  gain: {gained / base:.1f}x",
    )


def test_d2_operational_wait_reduction(benchmark):
    from repro.baselines import StrictTwoPhaseLocking
    from repro.core import Domain, Predicate, Schema
    from repro.sim import (
        SimulationEngine,
        TransactionScript,
        Workload,
        Write,
    )
    from repro.sim.workload import Unordered
    from repro.storage import Database

    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))

    def factory() -> Database:
        return Database(
            schema, Predicate.parse("x >= 0 & y >= 0"), {"x": 1, "y": 2}
        )

    def run_pair():
        blocker = TransactionScript(
            "B", [Write("x", 9, duration=30.0)], arrival=0.0
        )
        flexible_scripts = [
            blocker,
            TransactionScript(
                "A",
                [
                    Unordered(
                        (
                            Write("x", 5, duration=1.0),
                            Write("y", 6, duration=20.0),
                        )
                    )
                ],
                arrival=1.0,
            ),
        ]
        sequential_scripts = [
            blocker,
            TransactionScript(
                "A",
                [
                    Write("x", 5, duration=1.0),
                    Write("y", 6, duration=20.0),
                ],
                arrival=1.0,
            ),
        ]
        results = {}
        for name, scripts in (
            ("sequential", sequential_scripts),
            ("partial-order", flexible_scripts),
        ):
            workload = Workload(name, scripts, factory)
            results[name] = SimulationEngine(
                StrictTwoPhaseLocking(workload.fresh_database()),
                workload,
            ).run()
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    sequential = results["sequential"]
    flexible = results["partial-order"]
    assert flexible.committed_count == sequential.committed_count == 2
    assert flexible.total_wait_time < sequential.total_wait_time
    report(
        "D2b: 2PL wait time, sequential vs partial-order scripts",
        f"  sequential:    wait {sequential.total_wait_time:6.1f}, "
        f"makespan {sequential.makespan:6.1f}\n"
        f"  partial-order: wait {flexible.total_wait_time:6.1f}, "
        f"makespan {flexible.makespan:6.1f}",
    )
