"""Shared helpers for the benchmark suite.

Every benchmark corresponds to an experiment id in DESIGN.md §4 and
prints the rows EXPERIMENTS.md records.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a JSONL lifecycle trace of traced benchmark runs",
    )


@pytest.fixture(scope="session")
def trace_path(request):
    """Target file for ``--trace-out``, or None when tracing is off."""
    return request.config.getoption("--trace-out")


def report(title: str, body: str) -> None:
    """Print a labelled experiment report (visible with -s)."""
    print(f"\n### {title}\n{body}")


@pytest.fixture(scope="session")
def cad_workload_std():
    """The canonical P1 workload (shared across benchmarks)."""
    from repro.sim import cad_workload

    return cad_workload(
        num_designers=8,
        num_modules=3,
        accesses_per_txn=6,
        think_time=100.0,
        cooperation_probability=0.3,
        seed=3,
    )
