"""Experiment F2b — the census engines, timed (writes BENCH_census.json).

Runs the Figure-2 census over a four-transaction workload twice — once
with the exact all-testers baseline (no dedup) and once with the
staged classifier plus fingerprint dedup — asserts the counts are
byte-identical, and records throughput, speedup, cache hit rate, and
per-class check counts in ``BENCH_census.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path

from repro.analysis import census_of_programs
from repro.obs import Tracer
from repro.schedules import Schedule

from conftest import report

ROOT = Path(__file__).resolve().parent.parent

# Four transactions over two entities: 1680 interleavings reaching
# four Figure-2 regions, with a high fingerprint-collision rate — the
# regime the census engines are built for.
WORKLOAD = "r1(x) w1(x) r2(x) r2(y) w2(y) r3(y) w3(x) w4(y)"
OBJECTS = [{"x"}, {"y"}]


class CheckCounter(Tracer):
    """Counts ``class.check`` spans per class — which testers ran."""

    enabled = True

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def start(self, kind, txn, parent=None, **attrs):
        if kind == "class.check":
            self.counts[attrs["cls"]] += 1
        return None

    def end(self, span, **attrs) -> None:
        pass


def _timed_census(**kwargs):
    programs = Schedule.parse(WORKLOAD).programs()
    start = time.perf_counter()
    result = census_of_programs(programs, OBJECTS, **kwargs)
    return result, time.perf_counter() - start


def test_census_engines_write_benchmark_json():
    exact, exact_seconds = _timed_census(exact=True, dedup=False)
    fast, fast_seconds = _timed_census()

    # The tentpole invariant, again, at benchmark scale: the fast
    # engines change the wall clock and nothing else.
    assert fast.total == exact.total == 1680
    assert fast.by_region == exact.by_region
    assert fast.by_class == exact.by_class
    assert fast.containment_failures == exact.containment_failures == 0

    exact_checks = CheckCounter()
    fast_checks = CheckCounter()
    programs = Schedule.parse(WORKLOAD).programs()
    census_of_programs(
        programs, OBJECTS, exact=True, dedup=False, tracer=exact_checks
    )
    census_of_programs(programs, OBJECTS, tracer=fast_checks)

    speedup = exact_seconds / fast_seconds
    payload = {
        "workload": WORKLOAD,
        "interleavings": fast.total,
        "by_region": {
            str(region): count
            for region, count in sorted(fast.by_region.items())
        },
        "exact": {
            "seconds": round(exact_seconds, 4),
            "schedules_per_second": round(
                exact.total / exact_seconds, 1
            ),
            "class_checks": dict(sorted(exact_checks.counts.items())),
        },
        "fast": {
            "seconds": round(fast_seconds, 4),
            "schedules_per_second": round(fast.total / fast_seconds, 1),
            "cache_hits": fast.cache_hits,
            "cache_hit_rate": round(fast.cache_hits / fast.total, 3),
            "class_checks": dict(sorted(fast_checks.counts.items())),
        },
        "speedup": round(speedup, 2),
    }
    (ROOT / "BENCH_census.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Exact mode runs all eight testers on every schedule; the staged
    # engine must do strictly less work per class.
    assert exact_checks.counts["CSR"] == exact.total
    assert all(
        fast_checks.counts[name] < exact_checks.counts[name]
        for name in exact_checks.counts
    )
    # The acceptance floor is 5x on this workload (observed 6-7.5x);
    # assert a conservative 3x so timer noise cannot flake the suite.
    assert speedup >= 3.0, f"census speedup regressed: {speedup:.1f}x"

    report(
        "F2b: census engine throughput",
        f"exact  : {exact.total / exact_seconds:8.1f} schedules/s\n"
        f"fast   : {fast.total / fast_seconds:8.1f} schedules/s\n"
        f"speedup: {speedup:.1f}x  "
        f"(cache hits {fast.cache_hits}/{fast.total})",
    )
