"""Experiment P2 — version-selection cost (§5.1's discussion).

The paper argues version selection is worst-case exponential but cheap
in the expected case, and suggests heuristics or query-style search.
These benchmarks time the three selectors (exact backtracking,
SAT-backed, greedy-latest-with-fallback) as the number of versions per
item grows, and verify they agree on feasibility.
"""

from __future__ import annotations

import time

from repro.core import Predicate
from repro.protocol import (
    BacktrackingSelector,
    GreedyLatestSelector,
    SatSelector,
)
from repro.protocol.validation import DSet
from repro.storage.version_store import Version

from conftest import report


def _d_sets(num_items: int, versions_per_item: int) -> dict[str, DSet]:
    sequence = [0]

    def build(item: str) -> DSet:
        candidates = []
        for value in range(versions_per_item):
            sequence[0] += 1
            candidates.append(
                Version(item, value * 3, f"t.{value}", sequence[0])
            )
        return DSet(
            item, frozenset(), frozenset(), tuple(candidates), True
        )

    return {f"e{i}": build(f"e{i}") for i in range(num_items)}


def _constraint(num_items: int) -> Predicate:
    # Adjacent items must be ordered: a chained, moderately tight CSP.
    text = " & ".join(
        f"e{i} <= e{i + 1}" for i in range(num_items - 1)
    )
    return Predicate.parse(text)


def test_p2_selectors_agree(benchmark):
    d_sets = _d_sets(5, 6)
    constraint = _constraint(5)
    selectors = {
        "backtracking": BacktrackingSelector(),
        "sat": SatSelector(),
        "greedy": GreedyLatestSelector(),
    }

    def select_all():
        return {
            name: selector.select(d_sets, constraint)
            for name, selector in selectors.items()
        }

    chosen = benchmark(select_all)
    feasibility = {
        name: result is not None for name, result in chosen.items()
    }
    assert len(set(feasibility.values())) == 1  # all agree
    for result in chosen.values():
        if result is not None:
            values = {
                item: version.value for item, version in result.items()
            }
            assert constraint.evaluate(values)


def test_p2_backtracking_selector(benchmark):
    d_sets = _d_sets(6, 8)
    constraint = _constraint(6)
    selector = BacktrackingSelector()
    result = benchmark(lambda: selector.select(d_sets, constraint))
    assert result is not None


def test_p2_sat_selector(benchmark):
    d_sets = _d_sets(6, 8)
    constraint = _constraint(6)
    selector = SatSelector()
    result = benchmark(lambda: selector.select(d_sets, constraint))
    assert result is not None


def test_p2_greedy_selector(benchmark):
    d_sets = _d_sets(6, 8)
    constraint = _constraint(6)
    selector = GreedyLatestSelector()
    result = benchmark(lambda: selector.select(d_sets, constraint))
    assert result is not None


def test_p2_scaling_with_version_count(benchmark):
    """Cost as the version population grows (the paper's worry)."""

    def sweep():
        rows = []
        for versions in (2, 4, 8, 16):
            d_sets = _d_sets(5, versions)
            constraint = _constraint(5)
            timings = {}
            for name, selector in (
                ("backtracking", BacktrackingSelector()),
                ("sat", SatSelector()),
                ("greedy", GreedyLatestSelector()),
            ):
                start = time.perf_counter()
                assert selector.select(d_sets, constraint) is not None
                timings[name] = time.perf_counter() - start
            rows.append((versions, timings))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "P2: version-selection time vs versions-per-item (5 items)",
        "\n".join(
            f"  v={versions:3d}  "
            + "  ".join(
                f"{name} {seconds * 1e6:9.1f} µs"
                for name, seconds in timings.items()
            )
            for versions, timings in rows
        ),
    )
    # The greedy probe should beat exhaustive search when the
    # all-latest assignment satisfies the constraint (it does here:
    # equal latest values are non-decreasing).
    last = rows[-1][1]
    assert last["greedy"] <= last["backtracking"] * 5
