"""Experiment D2 — WAL-shipping replication (writes BENCH_repl.json).

Three measurements of the replication subsystem:

1. Sync-replicated commit throughput and ack latency: a primary and a
   TCP follower in-process (``ServerThread`` pair), every commit reply
   parked until the follower's fsynced ack (``sync_replicas=1``).
2. Follower staleness: after each acked commit, a bounded-stale
   ``follower_read`` — the lag distribution in LSNs and milliseconds
   is the observable cost of reading an older committed version.
3. Failover: a real subprocess primary + follower pair under load,
   ``SIGKILL`` on the primary, ``promote`` on the follower, and the
   time until a post-promote commit succeeds on the old client port.
   Every commit acked before the kill must be visible afterwards.

Run directly (``python benchmarks/bench_repl.py``) or via pytest.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.entities import Domain, Entity, Schema
from repro.core.predicates import Predicate
from repro.server import Client, ServerConfig, ServerThread
from repro.storage.database import Database

from conftest import report

ROOT = Path(__file__).resolve().parent.parent

SYNC_COMMITS = 300
FAILOVER_COMMITS = 80


def make_database() -> Database:
    schema = Schema(
        [
            Entity("x", Domain(0, 1000)),
            Entity("y", Domain(0, 1000)),
            Entity("z", Domain(0, 1000)),
        ]
    )
    constraint = Predicate.parse("x >= 0 & y >= 0 & z >= 0")
    return Database(schema, constraint, {"x": 5, "y": 5, "z": 5})


def _percentile(samples: "list[float]", pct: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(pct / 100 * (len(ordered) - 1))))
    return ordered[index]


def _summary(samples: "list[float]") -> "dict[str, float]":
    return {
        "p50": _percentile(samples, 50),
        "p95": _percentile(samples, 95),
        "p99": _percentile(samples, 99),
        "max": max(samples) if samples else 0.0,
    }


def _commit_one(client: Client, entity: str, value: int) -> str:
    txn = client.define(
        updates=[entity], input_constraint=f"{entity} >= 0"
    )
    client.validate(txn)
    client.write(txn, entity, value)
    reply = client.commit(txn)
    assert reply.get("outcome") == "committed", reply
    return txn


def bench_sync_replication(base: Path) -> "dict[str, object]":
    """Measurement 1 + 2: in-process pair, sync commits + stale reads."""
    primary_cfg = ServerConfig(
        port=0,
        wal_dir=str(base / "primary"),
        flush_interval=0.0,
        checkpoint_every=64,
        segment_bytes=65536,
        repl_port=0,
        sync_replicas=1,
    )
    with ServerThread(make_database, primary_cfg) as primary:
        repl_port = primary.server.repl_port
        follower_cfg = ServerConfig(
            port=0,
            wal_dir=str(base / "follower"),
            follow_of=f"127.0.0.1:{repl_port}",
        )
        with ServerThread(make_database, follower_cfg) as follower:
            with Client.connect("127.0.0.1", primary.port) as client, \
                    Client.connect("127.0.0.1", follower.port) as f_client:
                # Warm up: one commit, then wait until the follower
                # has applied it before timing anything.
                _commit_one(client, "x", 41)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if f_client.follower_read()["view"].get("x") == 41:
                        break
                    time.sleep(0.01)
                else:
                    raise AssertionError("follower never caught up")

                ack_latencies: list[float] = []
                lag_lsn: list[float] = []
                lag_ms: list[float] = []
                entities = ("x", "y", "z")
                started = time.perf_counter()
                for index in range(SYNC_COMMITS):
                    t0 = time.perf_counter()
                    _commit_one(
                        client, entities[index % 3], index % 1000
                    )
                    ack_latencies.append((time.perf_counter() - t0) * 1e3)
                    stale = f_client.follower_read()
                    lag_lsn.append(float(stale["lag_lsn"]))
                    lag_ms.append(float(stale["lag_ms"]))
                elapsed = time.perf_counter() - started

                status = client.repl_status()
    return {
        "commits": SYNC_COMMITS,
        "throughput_txn_per_s": round(SYNC_COMMITS / elapsed, 1),
        "ack_latency_ms": _summary(ack_latencies),
        "apply_lag_lsn": _summary(lag_lsn),
        "apply_lag_ms": _summary(lag_ms),
        "zero_lag_fraction": round(
            sum(1 for lag in lag_lsn if lag == 0) / len(lag_lsn), 3
        ),
        "shipped_lsn": status["durable_lsn"],
    }


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(args: "list[str]") -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=str(ROOT),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_server(port: int, timeout: float = 15.0) -> Client:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return Client.connect("127.0.0.1", port)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def bench_failover(base: Path) -> "dict[str, object]":
    """Measurement 3: SIGKILL the primary, promote, keep serving."""
    p_port, f_port, repl_port = _free_port(), _free_port(), _free_port()
    primary = _spawn(
        [
            "serve", "--port", str(p_port),
            "--workload", "cad", "--transactions", "24",
            "--wal-dir", str(base / "p"),
            "--repl-port", str(repl_port),
            "--sync-replicas", "1",
            "--wal-segment-bytes", "65536",
        ]
    )
    follower = _spawn(
        [
            "serve", "--port", str(f_port),
            "--workload", "cad", "--transactions", "24",
            "--wal-dir", str(base / "f0"),
            "--follow-of", f"127.0.0.1:{repl_port}",
        ]
    )
    try:
        acked = 0
        last_value = None
        with _wait_for_server(p_port) as client:
            _wait_for_server(f_port).close()
            for index in range(FAILOVER_COMMITS):
                _commit_one(client, "m0_e1", index % 1000)
                acked += 1
                last_value = index % 1000

        killed_at = time.perf_counter()
        primary.send_signal(signal.SIGKILL)
        primary.wait(timeout=10)

        with _wait_for_server(f_port) as f_client:
            promote_report = f_client.promote(listen_port=p_port)
        # The promoted node now answers on the dead primary's port;
        # the failover clock stops at the first commit it serves.
        with _wait_for_server(p_port) as client:
            # The paper's version functions let a fresh leaf read an
            # *older* committed version, so an unconstrained read
            # proves nothing.  Demand the last acked value in the
            # input predicate instead: validation succeeds iff a
            # committed version with that value survived promotion.
            probe = client.define(
                updates=[],
                input_constraint=f"m0_e1 >= {last_value}",
            )
            client.validate(probe)
            survived = client.read(probe, "m0_e1")
            client.abort(probe)
            txn = client.define(
                updates=["m0_e1"], input_constraint="m0_e0 >= 0"
            )
            client.validate(txn)
            client.write(txn, "m0_e1", 777)
            reply = client.commit(txn)
            failover_ms = (time.perf_counter() - killed_at) * 1e3
            assert reply.get("outcome") == "committed", reply
        # Every acked pre-kill commit survived: the promoted node
        # passed recover --verify and the last acked write is the
        # value a fresh reader sees.
        assert survived >= last_value, (survived, last_value)
        recovery = promote_report.get("recovery") or {}
        assert recovery.get("verified", False), promote_report
        assert len(promote_report.get("committed", [])) >= acked, (
            promote_report
        )
    finally:
        for proc in (primary, follower):
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    return {
        "acked_commits_before_kill": acked,
        "last_acked_value": last_value,
        "promote_ms": promote_report.get("promote_ms"),
        "failover_ms": round(failover_ms, 1),
        "post_promote_commit": True,
        "recovered_committed": len(promote_report.get("committed", [])),
        "verified": recovery.get("verified"),
    }


def test_replication_benchmark_writes_json(tmp_path):
    sync = bench_sync_replication(tmp_path / "sync")
    failover = bench_failover(tmp_path / "failover")
    payload = {
        "benchmark": "replication",
        "sync_replication": sync,
        "failover": failover,
    }
    (ROOT / "BENCH_repl.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert failover["failover_ms"] < 1000.0, failover
    report(
        "D2 replication (sync commit, staleness, failover)",
        f"sync commit {sync['throughput_txn_per_s']} txn/s "
        f"(ack p99 {sync['ack_latency_ms']['p99']:.2f} ms), "
        f"apply lag p99 {sync['apply_lag_ms']['p99']:.2f} ms, "
        f"zero-lag reads {sync['zero_lag_fraction'] * 100:.0f}%, "
        f"failover {failover['failover_ms']:.0f} ms "
        f"({failover['recovered_committed']} commits recovered, "
        f"verified={failover['verified']})",
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as scratch:
        test_replication_benchmark_writes_json(Path(scratch))
    print(
        (ROOT / "BENCH_repl.json").read_text(encoding="utf-8")
    )
