"""Experiments E1 and E2 — the paper's worked examples (§4.2).

E1: Example 1 is MVSR but not SR.
E2: Example 2 (same schedule, split conjuncts) is PWSR but not SR,
    and its conjunct projections (Examples 3.a/3.b) are serial.

The benchmark times the membership testers on the example schedule;
the assertions reproduce the paper's claims exactly.
"""

from __future__ import annotations

from repro.classes import (
    EXAMPLE_1,
    EXAMPLE_2,
    conjunct_projections,
    is_mv_view_serializable,
    is_predicatewise_serializable,
    is_view_serializable,
    mv_view_serialization_order,
)


def test_e1_example1_mvsr_not_sr(benchmark):
    schedule = EXAMPLE_1.schedule

    def classify_once():
        return (
            is_mv_view_serializable(schedule),
            is_view_serializable(schedule),
        )

    mvsr, vsr = benchmark(classify_once)
    assert mvsr and not vsr
    # The paper's witness: the version function serializes t2 first.
    assert mv_view_serialization_order(schedule) == ("2", "1")
    assert EXAMPLE_1.check() == []


def test_e2_example2_pwsr_with_serial_projections(benchmark):
    schedule = EXAMPLE_2.schedule
    objects = EXAMPLE_2.objects

    def classify_once():
        return is_predicatewise_serializable(schedule, objects)

    assert benchmark(classify_once)
    assert not is_view_serializable(schedule)
    # Examples 3.a and 3.b: both projections are serial schedules.
    projections = conjunct_projections(schedule, objects)
    assert len(projections) == 2
    for _, projection in projections:
        assert projection.is_serial()
    assert EXAMPLE_2.check() == []
