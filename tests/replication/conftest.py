"""Shared helpers for the replication tests.

Two styles of harness:

* :func:`primary_manager` — a WAL-backed manager plus a helper that
  commits single-entity transactions, for driving the transport-free
  hub/applier core directly;
* :func:`replicated_pair` — a real primary + follower
  :class:`TransactionServer` pair on one event loop, wired over TCP.
"""

from __future__ import annotations

import contextlib

from repro.core.predicates import Predicate
from repro.core.transactions import Spec
from repro.durability import DurableTransactionManager
from repro.server import ServerConfig, TransactionServer

from ..server.conftest import run, tiny_db  # noqa: F401 — re-exported

__all__ = [
    "commit_value",
    "open_primary",
    "replicated_pair",
    "run",
    "tiny_db",
]


def open_primary(wal_dir, **kwargs):
    """A durable manager over ``tiny_db`` with eager fsync."""
    kwargs.setdefault("flush_interval", 0.0)
    kwargs.setdefault("checkpoint_every", 0)
    manager, _recovery = DurableTransactionManager.open(
        wal_dir, tiny_db, **kwargs
    )
    return manager


def commit_value(manager, entity: str, value: int) -> str:
    """Define/validate/write/commit one leaf; return its name."""
    spec = Spec(
        Predicate.parse(f"{entity} >= 0"), Predicate.parse("true")
    )
    txn = manager.define(manager.root, spec, [entity])
    manager.validate(txn)
    manager.write(txn, entity, value)
    manager.commit(txn)
    return txn


@contextlib.asynccontextmanager
async def replicated_pair(
    tmp_path,
    *,
    sync_replicas: int = 0,
    follower_count: int = 1,
    **primary_overrides,
):
    """A started primary and ``follower_count`` followers over TCP."""
    primary = TransactionServer(
        tiny_db(),
        ServerConfig(
            port=0,
            wal_dir=str(tmp_path / "primary"),
            flush_interval=0.002,
            checkpoint_every=64,
            repl_port=0,
            sync_replicas=sync_replicas,
            **primary_overrides,
        ),
    )
    await primary.start()
    followers = []
    try:
        for index in range(follower_count):
            follower = TransactionServer(
                tiny_db(),
                ServerConfig(
                    port=0,
                    wal_dir=str(tmp_path / f"follower{index}"),
                    follow_of=f"127.0.0.1:{primary.repl_port}",
                ),
            )
            await follower.start()
            followers.append(follower)
        yield (primary, *followers)
    finally:
        for follower in followers:
            await follower.shutdown()
        await primary.shutdown()


