"""Replication wire format: framing, size limits, record round-trip."""

from __future__ import annotations

import pytest

from repro.durability.records import WalRecord
from repro.replication import (
    REPL_MAX_FRAME_BYTES,
    ReplicationError,
    ack_message,
    decode_message,
    encode_message,
    hello_message,
    records_from_payload,
    records_message,
    snapshot_message,
)


def test_roundtrip_every_kind():
    record = WalRecord(lsn=5, op="commit", txn="t.1", data={"k": 1})
    for message in (
        hello_message(7, "node-a"),
        snapshot_message({"s": 1}, 42),
        records_message([record], 5, 123.5),
        ack_message(9),
    ):
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message


def test_records_payload_rebuilds_identical_records():
    records = [
        WalRecord(lsn=3, op="write", txn="t.2", data={"entity": "x"}),
        WalRecord(lsn=4, op="commit", txn="t.2", data={}),
    ]
    payload = records_message(records, 4, 0.0)
    rebuilt = records_from_payload(payload)
    assert [r.encode() for r in rebuilt] == [
        r.encode() for r in records
    ]


def test_oversized_frame_is_refused():
    big = snapshot_message({"blob": "x" * REPL_MAX_FRAME_BYTES}, 1)
    with pytest.raises(ReplicationError, match="exceeds"):
        encode_message(big)


def test_garbage_line_is_refused():
    with pytest.raises(ReplicationError):
        decode_message(b"not json\n")
    with pytest.raises(ReplicationError):
        decode_message(b'["a","list"]\n')
