"""Reconnect backoff: capped, jittered, deterministic per seed."""

from __future__ import annotations

from repro.replication.follower import ReconnectBackoff, _node_seed


class TestReconnectBackoff:
    def test_exponential_ramp_up_to_cap(self):
        backoff = ReconnectBackoff(
            base=0.2, cap=5.0, multiplier=2.0, jitter=0.0
        )
        delays = [backoff.next_delay() for _ in range(8)]
        assert delays[:5] == [0.2, 0.4, 0.8, 1.6, 3.2]
        assert delays[5:] == [5.0, 5.0, 5.0]

    def test_jitter_stays_within_the_budget(self):
        backoff = ReconnectBackoff(
            base=1.0, cap=1.0, multiplier=1.0, jitter=0.5, seed=42
        )
        for _ in range(100):
            delay = backoff.next_delay()
            assert 0.5 <= delay <= 1.0

    def test_same_seed_same_delays(self):
        first = ReconnectBackoff(seed=7)
        second = ReconnectBackoff(seed=7)
        assert [first.next_delay() for _ in range(10)] == [
            second.next_delay() for _ in range(10)
        ]

    def test_different_seeds_desynchronize_the_herd(self):
        first = ReconnectBackoff(seed=1)
        second = ReconnectBackoff(seed=2)
        assert [first.next_delay() for _ in range(10)] != [
            second.next_delay() for _ in range(10)
        ]

    def test_reset_restarts_the_ramp(self):
        backoff = ReconnectBackoff(
            base=0.2, cap=5.0, multiplier=2.0, jitter=0.0
        )
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 0.2

    def test_node_seed_is_stable_and_distinct(self):
        assert _node_seed("follower0") == _node_seed("follower0")
        assert _node_seed("follower0") != _node_seed("follower1")
