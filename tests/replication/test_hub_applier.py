"""Transport-free replication core: hub cursors, applier replay.

These tests drive :class:`ReplicationHub` and :class:`FollowerApplier`
directly (no sockets), the same way the deterministic fuzzer does.
"""

from __future__ import annotations

import pytest

from repro.durability.wal import list_segments, scan_wal
from repro.replication import (
    FollowerApplier,
    ReplicationError,
    ReplicationHub,
)
from repro.replication.messages import (
    KIND_RECORDS,
    KIND_SNAPSHOT,
)

from .conftest import commit_value, open_primary


def pump(hub, slot, applier, initial=None):
    """Deliver messages for ``slot`` until the applier catches up."""
    if initial is not None:
        assert initial["kind"] == KIND_SNAPSHOT
        applier.install_snapshot(initial["state"], initial["last_lsn"])
        hub.ack(slot, applier.applied_lsn)
    while True:
        message = hub.next_batch(slot)
        if message is None:
            return
        if message["kind"] == KIND_SNAPSHOT:
            applier.install_snapshot(
                message["state"], message["last_lsn"]
            )
        else:
            assert message["kind"] == KIND_RECORDS
            applier.apply_records(message)
        hub.ack(slot, applier.applied_lsn)


class TestShipAndApply:
    def test_follower_converges_to_primary_view(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        commit_value(primary, "x", 7)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "y", 9)
        commit_value(primary, "x", 11)
        pump(hub, slot, applier)
        applied_lsn, view = applier.read_view()
        assert view == {"x": 11, "y": 9}
        assert applied_lsn == primary.wal.durable_lsn
        assert applier.lag_lsn == 0
        primary.close()

    def test_follower_wal_is_byte_identical_suffix(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "x", 3)
        commit_value(primary, "y", 4)
        pump(hub, slot, applier)
        primary_records = {
            record.lsn: record.encode()
            for record in scan_wal(tmp_path / "p").records
        }
        follower_scan = scan_wal(tmp_path / "f0")
        assert follower_scan.records, "follower shipped no records"
        for record in follower_scan.records:
            assert record.encode() == primary_records[record.lsn]
        primary.close()

    def test_only_durable_records_ship(self, tmp_path):
        # A huge flush window: appends stay buffered (not fsynced).
        primary = open_primary(tmp_path / "p", flush_interval=1e9)
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        base = applier.applied_lsn
        commit_value(primary, "x", 5)
        assert hub.next_batch(slot) is None  # nothing durable yet
        primary.flush()
        pump(hub, slot, applier)
        assert applier.applied_lsn > base
        _lsn, view = applier.read_view()
        assert view["x"] == 5
        primary.close()

    def test_lost_cursor_falls_back_to_snapshot(self, tmp_path):
        primary = open_primary(
            tmp_path / "p", checkpoint_every=4, retain=1
        )
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        # Enough commits to checkpoint + rotate + clean up segments
        # beyond the follower's stale cursor.
        for value in range(2, 30):
            commit_value(primary, "x", value)
        message = hub.next_batch(slot)
        assert message is not None
        while message is not None:
            if message["kind"] == KIND_SNAPSHOT:
                applier.install_snapshot(
                    message["state"], message["last_lsn"]
                )
            else:
                applier.apply_records(message)
            hub.ack(slot, applier.applied_lsn)
            message = hub.next_batch(slot)
        assert applier.snapshots_installed >= 2  # initial + resync
        _lsn, view = applier.read_view()
        assert view["x"] == 29
        primary.close()

    def test_sync_replicas_replicated_lsn_is_kth_ack(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary, sync_replicas=2)
        advanced = []
        hub.on_replicated = advanced.append
        slot_a, init_a = hub.register(0, "a")
        slot_b, init_b = hub.register(0, "b")
        applier_a = FollowerApplier(tmp_path / "a")
        applier_b = FollowerApplier(tmp_path / "b")
        pump(hub, slot_a, applier_a, init_a)
        commit_value(primary, "x", 8)
        pump(hub, slot_a, applier_a)
        # Only one of two required followers has acked.
        assert hub.replicated_lsn < primary.wal.durable_lsn
        pump(hub, slot_b, applier_b, init_b)
        assert hub.replicated_lsn == primary.wal.durable_lsn
        assert advanced and advanced[-1] == hub.replicated_lsn
        primary.close()


class TestApplierEdges:
    def test_gap_is_a_protocol_violation(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "x", 2)
        commit_value(primary, "x", 3)
        message = hub.next_batch(slot)
        assert message["kind"] == KIND_RECORDS
        gapped = dict(message)
        gapped["records"] = message["records"][1:]  # drop the first
        with pytest.raises(ReplicationError, match="gap"):
            applier.apply_records(gapped)
        # The intact batch still applies (dup-free, contiguous).
        applier.apply_records(message)
        primary.close()

    def test_duplicate_delivery_is_idempotent(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "x", 6)
        message = hub.next_batch(slot)
        assert applier.apply_records(message) > 0
        assert applier.apply_records(message) == 0  # resend: no-op
        _lsn, view = applier.read_view()
        assert view["x"] == 6
        primary.close()

    def test_restart_resumes_from_local_history(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "x", 12)
        pump(hub, slot, applier)
        high_water = applier.applied_lsn
        applier.close()
        reborn = FollowerApplier(tmp_path / "f0")
        assert reborn.applied_lsn == high_water
        _lsn, view = reborn.read_view()
        assert view["x"] == 12
        # Re-registering at the resumed LSN ships no snapshot.
        slot2, initial2 = hub.register(reborn.applied_lsn, "f0")
        assert initial2 is None
        commit_value(primary, "y", 13)
        pump(hub, slot2, reborn)
        _lsn, view = reborn.read_view()
        assert view == {"x": 12, "y": 13}
        reborn.close()
        primary.close()

    def test_interrupted_install_wipes_on_restart(self, tmp_path):
        primary = open_primary(tmp_path / "p")
        hub = ReplicationHub(primary)
        slot, initial = hub.register(0, "f0")
        applier = FollowerApplier(tmp_path / "f0")
        pump(hub, slot, applier, initial)
        commit_value(primary, "x", 4)
        pump(hub, slot, applier)
        applier.close()
        # Simulate an interrupted snapshot install: segments exist but
        # every checkpoint is gone.
        for checkpoint in list(
            (tmp_path / "f0").glob("checkpoint-*.json")
        ):
            checkpoint.unlink()
        assert list_segments(tmp_path / "f0")
        fresh = FollowerApplier(tmp_path / "f0")
        assert fresh.applied_lsn == 0  # wiped; will ask for a snapshot
        assert not list_segments(tmp_path / "f0")
        primary.close()
