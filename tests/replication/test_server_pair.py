"""Primary + follower TransactionServers wired over real TCP."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import AsyncClient
from repro.server.errors import NotPrimary, StaleRead

from .conftest import replicated_pair, run


async def _commit(client: AsyncClient, entity: str, value: int) -> str:
    txn = await client.define(
        updates=[entity], input_constraint=f"{entity} >= 0"
    )
    await client.validate(txn)
    await client.write(client_txn := txn, entity, value)
    reply = await client.commit(txn)
    assert reply["outcome"] == "committed"
    return client_txn


async def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        result = await predicate()
        if result:
            return result
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestReplicatedPair:
    def test_follower_read_converges(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    await _commit(p_client, "x", 42)

                    async def caught_up():
                        reply = await f_client.follower_read()
                        view = reply["view"]
                        return view if view.get("x") == 42 else None

                    reply = await _wait_for(caught_up)
                    assert reply["x"] == 42
                    full = await f_client.follower_read(entity="x")
                    assert full["value"] == 42
                    assert full["role"] == "follower"
                    assert full["applied_lsn"] > 0
                finally:
                    await p_client.close()
                    await f_client.close()

        run(scenario())

    def test_mutations_redirect_to_primary(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    with pytest.raises(NotPrimary) as info:
                        await f_client.define(updates=["x"])
                    details = info.value.details
                    assert details["port"] == primary.repl_port
                finally:
                    await f_client.close()

        run(scenario())

    def test_staleness_bounds_are_enforced(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    await _commit(p_client, "x", 9)

                    async def seeded():
                        try:
                            reply = await f_client.follower_read()
                        except StaleRead:
                            return None
                        return reply if reply["view"].get("x") == 9 else None

                    reply = await _wait_for(seeded)
                    applied = reply["applied_lsn"]
                    # Satisfiable bound: we are exactly at applied.
                    ok = await f_client.follower_read(
                        min_applied_lsn=applied
                    )
                    assert ok["applied_lsn"] >= applied
                    # Unsatisfiable bound: far beyond the horizon.
                    with pytest.raises(StaleRead):
                        await f_client.follower_read(
                            min_applied_lsn=applied + 10_000
                        )
                finally:
                    await p_client.close()
                    await f_client.close()

        run(scenario())

    def test_repl_status_both_sides(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    async def follower_registered():
                        status = await p_client.repl_status()
                        return status if status["followers"] else None

                    p_status = await _wait_for(follower_registered)
                    assert p_status["role"] == "primary"
                    f_status = await f_client.repl_status()
                    assert f_status["role"] == "follower"
                    assert (
                        f_status["primary"]["port"] == primary.repl_port
                    )
                finally:
                    await p_client.close()
                    await f_client.close()

        run(scenario())

    def test_sync_commit_waits_for_follower_ack(self, tmp_path):
        async def scenario():
            async with replicated_pair(
                tmp_path, sync_replicas=1
            ) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    await _commit(p_client, "x", 17)
                    # The reply only arrived because the follower acked:
                    # its fsynced state must already hold the write.
                    reply = await f_client.follower_read(entity="x")
                    assert reply["value"] == 17
                    status = await p_client.repl_status()
                    assert status["replicated_lsn"] > 0
                finally:
                    await p_client.close()
                    await f_client.close()

        run(scenario())

    def test_healthz_reports_role_and_lag(self, tmp_path):
        async def scenario():
            async with replicated_pair(
                tmp_path, metrics_port=0
            ) as (primary, follower):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", primary.metrics_port
                )
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"200 OK" in head
                import json

                payload = json.loads(body)
                assert payload["role"] == "primary"
                assert "durable_lsn" in payload

        run(scenario())


class TestFailover:
    def test_promote_preserves_acked_commits(self, tmp_path):
        async def scenario():
            async with replicated_pair(
                tmp_path, sync_replicas=1
            ) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    acked = []
                    for value in (5, 6, 7):
                        acked.append(
                            await _commit(p_client, "x", value)
                        )
                    # Hard-stop the primary: no graceful drain frame
                    # reaches anyone, mimicking a SIGKILL.
                    await p_client.close()
                    await primary.shutdown()
                    report = await f_client.promote()
                    assert report["role"] == "primary"
                    recovery = report["recovery"]
                    assert recovery["verified"] is True
                    for txn in acked:
                        assert txn in report["committed"]
                    # The promoted node now accepts writes.
                    await _commit(f_client, "y", 99)
                    # The committed root view holds every acked write
                    # (a fresh *leaf* may legally read older versions
                    # under the paper's version-function semantics, so
                    # assert the root-level committed state instead).
                    view = (await f_client.follower_read())["view"]
                    assert view == {"x": 7, "y": 99}
                finally:
                    await f_client.close()

        run(scenario())

    def test_promote_takes_over_listen_port(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                f_client = await AsyncClient.connect(*follower.address)
                try:
                    await _commit(p_client, "x", 3)

                    async def caught_up():
                        status = await f_client.repl_status()
                        return status["applied_lsn"] > 0 or None

                    await _wait_for(caught_up)
                    old_port = primary.port
                    await p_client.close()
                    await primary.shutdown()
                    report = await f_client.promote(
                        listen_port=old_port
                    )
                    assert report["listen_port"] == old_port

                    async def port_taken_over():
                        try:
                            client = await AsyncClient.connect(
                                "127.0.0.1", old_port
                            )
                        except OSError:
                            return None
                        return client

                    moved = await _wait_for(port_taken_over)
                    status = await moved.repl_status()
                    assert status["role"] == "primary"
                    await moved.close()
                finally:
                    await f_client.close()

        run(scenario())

    def test_promote_refused_on_primary(self, tmp_path):
        async def scenario():
            async with replicated_pair(tmp_path) as (primary, follower):
                p_client = await AsyncClient.connect(*primary.address)
                try:
                    from repro.server.errors import ServerError

                    with pytest.raises(ServerError):
                        await p_client.promote()
                finally:
                    await p_client.close()

        run(scenario())
