"""Parameter sweeps: grid coverage and byte-identical BENCH output."""

from __future__ import annotations

import json

from repro.des import get_scenario, run_sweep


class TestSweep:
    def test_2x2_grid_is_byte_identical_across_runs(self):
        base = get_scenario("hot_key_storm")
        first = run_sweep(
            base, nodes=[3, 6], partition_rates=[0.0, 0.3]
        )
        second = run_sweep(
            base, nodes=[3, 6], partition_rates=[0.0, 0.3]
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_grid_covers_every_cell_with_metrics(self):
        doc = run_sweep(
            get_scenario("hot_key_storm"),
            nodes=[3, 6],
            partition_rates=[0.0, 0.3],
        )
        assert doc["bench"] == "sim"
        assert doc["ok"] is True
        assert len(doc["cells"]) == 4
        assert {c["nodes"] for c in doc["cells"]} == {3, 6}
        assert {c["partition_rate"] for c in doc["cells"]} == {
            0.0,
            0.3,
        }
        for cell in doc["cells"]:
            assert cell["ok"] is True
            assert cell["failed_checks"] == []
            assert cell["nodes"] == 1 + cell["followers"] + cell[
                "clients"
            ]
            metrics = cell["metrics"]
            assert metrics["throughput_commits_per_s"] > 0
            assert 0.0 <= metrics["abort_rate"] <= 1.0
            assert "lag_lsn_p95" in metrics
            assert "lag_ms_p99" in metrics

    def test_six_node_cell_is_in_the_default_grid(self):
        doc = run_sweep(get_scenario("hot_key_storm"))
        assert any(cell["nodes"] >= 6 for cell in doc["cells"])

    def test_workload_axis_expands(self):
        doc = run_sweep(
            get_scenario("hot_key_storm"),
            nodes=[3],
            partition_rates=[0.0],
            workloads=["hot_key", "herd"],
        )
        assert [c["workload"] for c in doc["cells"]] == [
            "hot_key",
            "herd",
        ]
        assert doc["ok"] is True
