"""The ``repro sim`` command family."""

from __future__ import annotations

import json

from repro.cli import main


class TestSimList:
    def test_lists_every_scenario(self, capsys):
        assert main(["sim", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "hot_key_storm",
            "primary_crash_promotion",
            "follower_lag_divergence",
        ):
            assert name in out


class TestSimRun:
    def test_clean_scenario_exits_zero(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "sim", "run",
                "--scenario", "abort_cascade",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro sim: ok" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["scenario"]["name"] == "abort_cascade"

    def test_seed_override_changes_the_digest(self, capsys):
        assert main(
            ["sim", "run", "--scenario", "abort_cascade",
             "--seed", "999"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed=999" in out

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["sim", "run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSimSweep:
    def test_mini_sweep_writes_bench_json(self, tmp_path, capsys):
        output = tmp_path / "BENCH_sim.json"
        code = main(
            [
                "sim", "sweep",
                "--scenario", "hot_key_storm",
                "--nodes", "3",
                "--partition-rates", "0",
                "--output", str(output),
            ]
        )
        assert code == 0
        doc = json.loads(output.read_text())
        assert doc["bench"] == "sim"
        assert doc["ok"] is True
        assert len(doc["cells"]) == 1
        assert doc["cells"][0]["nodes"] == 3

    def test_empty_output_skips_the_file(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "sim", "sweep",
                "--scenario", "hot_key_storm",
                "--nodes", "3",
                "--partition-rates", "0",
                "--output", "",
            ]
        )
        assert code == 0
        assert not (tmp_path / "BENCH_sim.json").exists()
