"""The modeled network: delays, FIFO links, partitions, bandwidth."""

from __future__ import annotations

import asyncio

from repro.des import Network
from repro.fuzz.loop import run_virtual
from repro.sim import VirtualClock


def _network(clock: VirtualClock, **kwargs) -> Network:
    return Network(lambda: clock.now, **kwargs)


class TestDelayModel:
    def test_same_seed_same_delays(self):
        clock = VirtualClock()
        first = _network(clock, seed=7)
        second = _network(clock, seed=7)
        draws = [first.delay("a", "b", 256) for _ in range(20)]
        assert draws == [second.delay("a", "b", 256) for _ in range(20)]

    def test_links_have_independent_jitter_streams(self):
        clock = VirtualClock()
        net = _network(clock, seed=7)
        assert [net.delay("a", "b", 0) for _ in range(8)] != [
            net.delay("a", "c", 0) for _ in range(8)
        ]

    def test_slow_node_multiplier_applies_to_either_endpoint(self):
        clock = VirtualClock()
        net = _network(
            clock, jitter=0.0, latency=0.01, slow_nodes={"s": 10.0}
        )
        assert net.delay("s", "b", 0) == net.delay("a", "s", 0) == 0.1
        assert net.delay("a", "b", 0) == 0.01

    def test_bandwidth_term_scales_with_bytes(self):
        clock = VirtualClock()
        net = _network(
            clock, jitter=0.0, latency=0.0, bandwidth=1000.0
        )
        assert net.delay("a", "b", 500) == 0.5


class TestTransit:
    def test_fifo_per_link_despite_jitter(self):
        clock = VirtualClock()
        net = _network(clock, seed=3, latency=0.01, jitter=0.05)
        deliveries: list[float] = []

        async def main():
            for _ in range(30):
                deliveries.append(await net.transit("a", "b", 64))

        run_virtual(main(), clock)
        assert deliveries == sorted(deliveries)
        assert net.messages == 30
        assert net.bytes_sent == 30 * 64

    def test_partition_blocks_until_window_closes(self):
        clock = VirtualClock()
        net = _network(
            clock,
            latency=0.001,
            jitter=0.0,
            partitions=[("b", 0.0, 1.0)],
        )

        async def main():
            return await net.transit("a", "b", 64)

        delivered_at = run_virtual(main(), clock)
        assert delivered_at >= 1.0

    def test_heal_drops_all_windows(self):
        clock = VirtualClock()
        net = _network(clock, partitions=[("b", 0.0, 100.0)])
        assert net.partitioned("b", 0.5)
        net.heal()
        assert not net.partitioned("b", 0.5)

    def test_concurrent_transits_are_deterministic(self):
        def run_once() -> list[tuple[str, float]]:
            clock = VirtualClock()
            net = _network(clock, seed=11, latency=0.01, jitter=0.02)
            log: list[tuple[str, float]] = []

            async def one(name: str, dst: str):
                for _ in range(5):
                    at = await net.transit(name, dst, 128)
                    log.append((name, at))

            async def main():
                await asyncio.gather(
                    one("a", "x"), one("b", "x"), one("c", "x")
                )

            run_virtual(main(), clock)
            return log

        assert run_once() == run_once()
