"""End-to-end cluster simulations: every scenario, every oracle."""

from __future__ import annotations

import json

import pytest

from repro.des import (
    SCENARIOS,
    get_scenario,
    percentile,
    run_scenario,
)


def _failed_checks(report: dict) -> list[str]:
    return [
        name
        for section in report["epochs"]
        for name, verdict in section["oracles"].items()
        if not verdict["ok"]
    ] + [
        name
        for name, verdict in report["invariants"].items()
        if not verdict["ok"]
    ]


class TestScenarioLibrary:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes_all_checks(self, name):
        report = run_scenario(SCENARIOS[name])
        assert report["deadlock"] is None
        assert _failed_checks(report) == []
        assert report["ok"] is True
        assert report["metrics"]["commits_acked"] > 0

    def test_same_seed_same_report(self):
        scenario = get_scenario("primary_crash_promotion")
        first = json.dumps(run_scenario(scenario), sort_keys=True)
        second = json.dumps(run_scenario(scenario), sort_keys=True)
        assert first == second

    def test_different_seed_different_schedule(self):
        scenario = get_scenario("hot_key_storm")
        first = run_scenario(scenario)
        second = run_scenario(scenario.with_overrides(seed=12345))
        assert first["scenario_digest"] != second["scenario_digest"]
        assert second["ok"] is True


class TestPromotion:
    @pytest.fixture(scope="class")
    def crash_report(self):
        return run_scenario(get_scenario("primary_crash_promotion"))

    def test_two_epochs_ran(self, crash_report):
        assert len(crash_report["epochs"]) == 2
        assert crash_report["epochs"][0]["crashed"] is True
        assert crash_report["epochs"][1]["crashed"] is False

    def test_promotion_recorded(self, crash_report):
        promotion = crash_report["promotion"]
        assert promotion is not None
        assert promotion["winner"].startswith("follower")
        assert promotion["verified"] is True
        assert promotion["promoted_from_lsn"] > 0

    def test_acked_commits_survive_into_epoch2(self, crash_report):
        e1 = crash_report["epochs"][0]
        baseline = crash_report["promotion"]["baseline_committed"]
        assert e1["acked_committed"]
        assert set(e1["acked_committed"]) <= set(baseline)

    def test_epoch2_made_progress_on_the_survivor(self, crash_report):
        e2 = crash_report["epochs"][1]
        assert e2["acked_committed"]
        assert e2["oracles"]["acked_commits_survive_promotion"]["ok"]
        assert crash_report["invariants"][
            "cluster_promotion_continuity"
        ]["ok"]

    def test_partitioned_follower_lag_is_visible(self, crash_report):
        assert crash_report["metrics"]["lag_lsn_p95"] > 0


class TestBoundedStaleness:
    def test_lag_budget_rejections_are_honest(self):
        report = run_scenario(get_scenario("follower_lag_divergence"))
        metrics = report["metrics"]
        assert metrics["follower_reads_ok"] > 0
        assert report["invariants"]["cluster_bounded_staleness"]["ok"]

    def test_busy_herd_exercises_backpressure(self):
        report = run_scenario(get_scenario("busy_retry_herd"))
        assert report["metrics"]["busy_replies"] > 0
        assert report["ok"] is True


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 95) == 0.0
