"""Scenario library, workload expansion, and sweep-grid plumbing."""

from __future__ import annotations

import pytest

from repro.des import (
    SCENARIOS,
    Scenario,
    build_clients,
    build_plan,
    cell_scenario,
    expand_partitions,
    get_scenario,
    split_nodes,
)


class TestScenario:
    def test_round_trip(self):
        for scenario in SCENARIOS.values():
            clone = Scenario.from_dict(scenario.to_dict())
            assert clone == scenario

    def test_digest_is_stable_and_content_addressed(self):
        base = get_scenario("hot_key_storm")
        assert base.digest() == base.digest()
        assert base.digest() != base.with_overrides(seed=999).digest()

    def test_unsupported_version_rejected(self):
        data = get_scenario("hot_key_storm").to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            Scenario.from_dict(data)

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="hot_key_storm"):
            get_scenario("nope")

    def test_library_names_match_keys(self):
        assert all(
            scenario.name == name
            for name, scenario in SCENARIOS.items()
        )


class TestWorkload:
    def test_expansion_is_deterministic(self):
        scenario = get_scenario("primary_crash_promotion")
        first = build_clients(scenario, phase="e1")
        second = build_clients(scenario, phase="e1")
        assert [c.to_dict() for c in first] == [
            c.to_dict() for c in second
        ]

    def test_unknown_workload_rejected(self):
        scenario = get_scenario("hot_key_storm").with_overrides(
            workload="bogus"
        )
        with pytest.raises(ValueError, match="bogus"):
            build_clients(scenario)

    def test_epoch2_labels_are_prefixed(self):
        scenario = get_scenario("primary_crash_promotion")
        labels = {
            txn.label
            for client in build_clients(scenario, phase="e2")
            for txn in client.txns
        }
        assert labels
        assert all(label.startswith("e2") for label in labels)
        e1_labels = {
            txn.label
            for client in build_clients(scenario, phase="e1")
            for txn in client.txns
        }
        assert not labels & e1_labels

    def test_follower_reads_come_before_the_terminal(self):
        scenario = get_scenario("hot_key_storm")
        seen = 0
        for client in build_clients(scenario):
            for txn in client.txns:
                for index, op in enumerate(txn.ops):
                    if op[0] == "follower_read":
                        seen += 1
                        assert index < len(txn.ops) - 1
                        assert txn.ops[-1][0] in ("commit", "abort")
        assert seen > 0

    def test_partition_expansion_deterministic(self):
        scenario = get_scenario("hot_key_storm").with_overrides(
            partition_rate=0.9, followers=3
        )
        assert expand_partitions(scenario) == expand_partitions(scenario)
        assert expand_partitions(scenario)  # 0.9 over 3 draws: windows

    def test_build_plan_carries_scenario_config(self):
        scenario = get_scenario("follower_lag_divergence")
        plan = build_plan(scenario)
        assert plan.seed == scenario.seed
        assert plan.replicas == scenario.followers
        assert plan.sync_replicas == scenario.sync_replicas
        assert plan.durable is True


class TestSweepGrid:
    def test_split_nodes(self):
        assert split_nodes(3) == (1, 1)
        assert split_nodes(6) == (2, 3)
        assert split_nodes(9) == (3, 5)
        with pytest.raises(ValueError):
            split_nodes(2)

    def test_cell_scenario_overrides_topology(self):
        base = get_scenario("hot_key_storm")
        cell = cell_scenario(base, nodes=6, partition_rate=0.3)
        assert cell.followers == 2
        assert cell.clients == 3
        assert cell.partition_rate == 0.3
        assert cell.name == "hot_key_storm@n6+pr0.3"
        assert cell.digest() != base.digest()
