"""The ``stats`` command and the HTTP metrics listener, end to end.

Drives a real :class:`ServerThread` over TCP: the ``stats`` protocol
command (including the ``live`` open-span list a tracing server adds)
and the ``/metrics`` / ``/stats`` / ``/healthz`` HTTP endpoints.
"""

from __future__ import annotations

import json
import socket

from repro.obs import LiveTracer, SpanRing
from repro.server import ServerConfig, ServerThread
from repro.server.client import Client

from .conftest import tiny_db


def _http_get(port: int, path: str, method: str = "GET") -> tuple[str, str]:
    """One HTTP exchange; returns (status line, body)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(
            f"{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii")
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("ascii")
    return status, body.decode("utf-8")


class TestStatsCommand:
    def test_live_list_tracks_open_transactions(self):
        tracer = LiveTracer(SpanRing(4096))
        with ServerThread(tiny_db, tracer=tracer) as handle:
            with Client.connect("127.0.0.1", handle.port) as client:
                def roots(stats):
                    # The stats request itself is always in flight, so
                    # watch the transaction-lifetime roots only.
                    return [
                        entry for entry in stats["live"]
                        if entry["kind"] == "txn.server"
                    ]

                idle = client.stats()
                assert roots(idle) == []

                txn = client.define(
                    updates=["y"],
                    input_constraint="x >= 0",
                    output_condition="true",
                )
                busy = roots(client.stats())
                assert any(
                    entry["txn"] == txn and entry["age"] >= 0.0
                    for entry in busy
                )

                client.validate(txn)
                client.write(txn, "y", 5)
                client.commit(txn)
                drained = client.stats()
                assert roots(drained) == []
                assert drained["queue_depth"] == 0
                assert drained["parked"] == 0

    def test_untraced_server_omits_live(self):
        with ServerThread(tiny_db) as handle:
            with Client.connect("127.0.0.1", handle.port) as client:
                assert "live" not in client.stats()


class TestMetricsEndpoint:
    def _serving(self):
        return ServerThread(tiny_db, config=ServerConfig(metrics_port=0))

    def _run_one_txn(self, port: int) -> None:
        with Client.connect("127.0.0.1", port) as client:
            txn = client.define(updates=["x"])
            client.validate(txn)
            client.write(txn, "x", 2)
            client.commit(txn)

    def test_metrics_scrape_is_prometheus_text(self):
        with self._serving() as handle:
            self._run_one_txn(handle.port)
            status, body = _http_get(handle.server.metrics_port, "/metrics")
        assert status == "HTTP/1.1 200 OK"
        assert "# TYPE repro_server_requests counter" in body
        assert "# TYPE repro_server_txns_committed counter" in body
        assert 'repro_server_request_latency{quantile="0.99"}' in body
        assert body.endswith("\n")

    def test_stats_endpoint_is_json_with_depths(self):
        with self._serving() as handle:
            self._run_one_txn(handle.port)
            status, body = _http_get(handle.server.metrics_port, "/stats")
        assert status == "HTTP/1.1 200 OK"
        snapshot = json.loads(body)
        assert snapshot["counters"]["server.txns.committed"] == 1
        assert snapshot["queue_depth"] == 0
        assert snapshot["parked"] == 0

    def test_healthz_and_error_routes(self):
        with self._serving() as handle:
            port = handle.server.metrics_port
            assert _http_get(port, "/healthz") == ("HTTP/1.1 200 OK", "ok\n")
            status, _ = _http_get(port, "/nope")
            assert status == "HTTP/1.1 404 Not Found"
            status, _ = _http_get(port, "/metrics", method="POST")
            assert status == "HTTP/1.1 405 Method Not Allowed"

    def test_scrape_ignores_query_string(self):
        with self._serving() as handle:
            status, _ = _http_get(
                handle.server.metrics_port, "/healthz?verbose=1"
            )
        assert status == "HTTP/1.1 200 OK"
