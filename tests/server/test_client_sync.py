"""The blocking client against a background-thread server."""

from __future__ import annotations

import pytest

from repro.server import (
    Client,
    RemoteAborted,
    ServerConfig,
    ServerThread,
    UnknownTransaction,
)

from .conftest import tiny_db


@pytest.fixture()
def server():
    with ServerThread(tiny_db) as handle:
        yield handle


class TestSyncClient:
    def test_full_lifecycle(self, server):
        with Client.connect("127.0.0.1", server.port) as client:
            assert client.ping()
            hello = client.hello()
            assert hello["entities"] == ["x", "y"]
            txn = client.define(
                updates=["x"],
                input_constraint="x >= 0",
                output_condition="x >= 0",
            )
            assert client.validate(txn)["outcome"] == "ok"
            value = client.read(txn, "x")
            client.write(txn, "x", value + 2)
            assert client.view(txn)["x"] == value + 2
            assert client.commit(txn)["outcome"] == "committed"

    def test_typed_errors(self, server):
        with Client.connect("127.0.0.1", server.port) as client:
            with pytest.raises(UnknownTransaction):
                client.read("t.404", "x")

    def test_poll_events_surfaces_cascading_abort(self, server):
        with Client.connect("127.0.0.1", server.port) as writer_client:
            with Client.connect("127.0.0.1", server.port) as reader:
                ta = writer_client.define(updates=["x"])
                writer_client.validate(ta)
                writer_client.write(ta, "x", 7)
                tb = reader.define(input_constraint="x >= 5")
                reader.validate(tb)
                assert reader.read(tb, "x") == 7
                writer_client.abort(ta)
                events = reader.poll_events()
                assert any(
                    event["event"] == "abort" and event["txn"] == tb
                    for event in events
                )
                with pytest.raises(RemoteAborted):
                    reader.read(tb, "x")

    def test_stats_roundtrip(self, server):
        with Client.connect("127.0.0.1", server.port) as client:
            client.ping()
            stats = client.stats()
            assert stats["stats"]["counters"]["server.requests"] >= 1


class TestServerThread:
    def test_context_manager_binds_an_ephemeral_port(self):
        with ServerThread(
            tiny_db, ServerConfig(port=0, queue_size=8)
        ) as handle:
            assert handle.port
            with Client.connect("127.0.0.1", handle.port) as client:
                assert client.ping()

    def test_two_servers_coexist(self):
        with ServerThread(tiny_db) as first, ServerThread(tiny_db) as second:
            assert first.port != second.port
            with Client.connect("127.0.0.1", first.port) as a:
                with Client.connect("127.0.0.1", second.port) as b:
                    ta = a.define(updates=["x"])
                    a.validate(ta)
                    a.write(ta, "x", 50)
                    a.commit(ta)
                    tb = b.define(input_constraint="x >= 0")
                    b.validate(tb)
                    # Isolated databases: B's server never saw 50.
                    assert b.read(tb, "x") == 1
