"""The server stack reads one clock (satellite of the live-path PR).

The load generator used to time requests with ``time.perf_counter``
while the dispatcher stamped queue waits with ``time.monotonic`` —
two clocks with unrelated epochs whose readings cannot be subtracted
from each other.  These tests pin the unified source and the invariant
that every live-path default is that same callable.
"""

from __future__ import annotations

import time

from repro.server import clock as clock_module
from repro.server import loadgen, server, session


class TestUnifiedClock:
    def test_clock_is_monotonic(self):
        assert clock_module.CLOCK is time.monotonic

    def test_dispatcher_default_is_the_shared_clock(self):
        defaults = session.CommandDispatcher.__init__.__kwdefaults__
        assert defaults["clock"] is clock_module.CLOCK

    def test_modules_share_one_source(self):
        # Loadgen and server import the same object, not a lookalike.
        assert loadgen.CLOCK is clock_module.CLOCK
        assert server.CLOCK is clock_module.CLOCK

    def test_loadgen_no_longer_reads_perf_counter(self):
        import inspect

        source = inspect.getsource(loadgen)
        assert "perf_counter" not in source

    def test_readings_are_comparable(self):
        # Same epoch: two immediate readings differ by microseconds,
        # never by an epoch offset.
        a = clock_module.CLOCK()
        b = clock_module.CLOCK()
        assert 0.0 <= b - a < 1.0
