"""Shared helpers for the server tests.

There is no pytest-asyncio in the dependency set, so every async test
runs through :func:`run` (``asyncio.run`` plus a watchdog timeout) and
servers are managed with the :func:`serving` async context manager.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.core.entities import Domain, Entity, Schema
from repro.core.predicates import Predicate
from repro.server import ServerConfig, TransactionServer
from repro.storage.database import Database


def tiny_db() -> Database:
    """Two entities, trivial constraint, initial value 1 each."""
    schema = Schema(
        [
            Entity("x", Domain.interval(0, 100)),
            Entity("y", Domain.interval(0, 100)),
        ]
    )
    return Database(
        schema, Predicate.parse("x >= 0 & y >= 0"), {"x": 1, "y": 1}
    )


def run(coro, timeout: float = 30.0):
    """Run one async test body with a hang watchdog."""
    async def _guarded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(_guarded())


@contextlib.asynccontextmanager
async def serving(database: Database | None = None, **config_kw):
    """A started :class:`TransactionServer` on an ephemeral port."""
    server = TransactionServer(
        database if database is not None else tiny_db(),
        ServerConfig(port=0, **config_kw),
    )
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()
