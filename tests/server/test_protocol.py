"""Framing-layer tests: encode/decode, request parsing, error codes."""

from __future__ import annotations

import json

import pytest

from repro.server.errors import (
    WIRE_FAULT_CODES,
    BusyError,
    ErrorCode,
    MalformedFrame,
    RemoteAborted,
    ServerError,
    error_for_code,
    error_payload,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_response,
    event_frame,
    is_event,
    ok_response,
    parse_request,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"id": 3, "op": "read", "txn": "t.0", "entity": "x"}
        data = encode_frame(payload)
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert decode_frame(data) == payload

    def test_compact_and_sorted(self):
        data = encode_frame({"b": 1, "a": 2})
        assert data == b'{"a":2,"b":1}\n'

    def test_encode_oversized(self):
        with pytest.raises(MalformedFrame, match="exceeds"):
            encode_frame({"pad": "x" * MAX_FRAME_BYTES})

    def test_decode_oversized(self):
        line = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(MalformedFrame, match="exceeds"):
            decode_frame(line)

    def test_decode_bad_utf8(self):
        with pytest.raises(MalformedFrame, match="not UTF-8"):
            decode_frame(b'{"id": \xff\xfe}\n')

    def test_decode_bad_json(self):
        with pytest.raises(MalformedFrame, match="not JSON"):
            decode_frame(b"{nope\n")

    def test_decode_non_object(self):
        with pytest.raises(MalformedFrame, match="JSON object"):
            decode_frame(b"[1, 2]\n")

    def test_decode_empty(self):
        with pytest.raises(MalformedFrame, match="empty"):
            decode_frame(b"   \n")


class TestParseRequest:
    def test_splits_params(self):
        request = parse_request(
            {"id": 7, "op": "read", "txn": "t.0", "entity": "x"}
        )
        assert request.request_id == 7
        assert request.op == "read"
        assert request.params == {"txn": "t.0", "entity": "x"}

    @pytest.mark.parametrize(
        "frame",
        [
            {"op": "ping"},  # no id
            {"id": "7", "op": "ping"},  # string id
            {"id": True, "op": "ping"},  # bool id
            {"id": -1, "op": "ping"},  # negative id
            {"id": 7},  # no op
            {"id": 7, "op": ""},  # empty op
            {"id": 7, "op": 3},  # non-string op
        ],
    )
    def test_rejects_bad_shapes(self, frame):
        with pytest.raises(MalformedFrame):
            parse_request(frame)

    def test_unknown_op_is_not_a_framing_error(self):
        # Typo'd ops parse fine; the dispatcher answers UNKNOWN_OP so
        # the connection survives.
        assert parse_request({"id": 1, "op": "nope"}).op == "nope"


class TestResponses:
    def test_ok_response(self):
        assert ok_response(4, value=9) == {"id": 4, "ok": True, "value": 9}

    def test_error_response(self):
        frame = error_response(4, ErrorCode.BUSY, "full", queue_size=2)
        assert frame["id"] == 4
        assert frame["ok"] is False
        assert frame["error"]["code"] == "BUSY"
        assert frame["error"]["details"] == {"queue_size": 2}
        # JSON-serializable end to end.
        json.dumps(frame)

    def test_error_response_without_id(self):
        assert error_response(None, ErrorCode.MALFORMED, "bad")["id"] is None

    def test_event_frames(self):
        frame = event_frame("abort", txn="t.1", reason="cascade")
        assert is_event(frame)
        assert not is_event(ok_response(1))
        assert not is_event(error_response(1, ErrorCode.BUSY, "x"))


class TestErrorCodes:
    def test_error_for_code_maps_to_typed_exceptions(self):
        assert isinstance(error_for_code("BUSY", "m"), BusyError)
        assert isinstance(error_for_code("ABORTED", "m"), RemoteAborted)

    def test_every_code_has_a_class(self):
        for code in ErrorCode:
            error = error_for_code(code.value, "m")
            assert error.code is code

    def test_unknown_code_degrades_to_internal(self):
        error = error_for_code("WAT", "m")
        assert isinstance(error, ServerError)
        assert error.code is ErrorCode.INTERNAL

    def test_wire_fault_codes(self):
        assert ErrorCode.MALFORMED in WIRE_FAULT_CODES
        assert ErrorCode.INTERNAL in WIRE_FAULT_CODES
        # Expected application conditions are NOT wire faults.
        assert ErrorCode.BUSY not in WIRE_FAULT_CODES
        assert ErrorCode.ABORTED not in WIRE_FAULT_CODES
        assert ErrorCode.TIMEOUT not in WIRE_FAULT_CODES

    def test_payload_omits_empty_details(self):
        assert "details" not in error_payload(ErrorCode.BUSY, "m")
