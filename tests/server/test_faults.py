"""Fault-injection tests: the ISSUE's robustness acceptance criteria.

Covers: malformed frames, backpressure (``BUSY``), parked-request
timeouts, cascading-abort notification, killed clients, slow clients,
and graceful drain.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.protocol.scheduler import TransactionManager
from repro.server import (
    AsyncClient,
    ConflictingRequest,
    RemoteAborted,
    RequestTimeout,
    ServerConfig,
    ShuttingDown,
    TransactionServer,
)
from repro.server.protocol import Request, decode_frame
from repro.server.session import CommandDispatcher, SessionState

from .conftest import run, serving, tiny_db


async def _raw_connection(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def _read_frame(reader):
    return decode_frame(await reader.readline())


class TestMalformedFrames:
    def test_bad_json_is_answered_and_survivable(self):
        async def body():
            async with serving() as server:
                reader, writer = await _raw_connection(server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                frame = await _read_frame(reader)
                assert frame["ok"] is False
                assert frame["error"]["code"] == "MALFORMED"
                # The connection still works afterwards.
                writer.write(b'{"id": 1, "op": "ping"}\n')
                await writer.drain()
                pong = await _read_frame(reader)
                assert pong == {"id": 1, "ok": True, "pong": True}
                writer.close()

        run(body())

    def test_connection_closes_after_too_many_bad_frames(self):
        async def body():
            async with serving(max_malformed=3) as server:
                reader, writer = await _raw_connection(server.port)
                for _ in range(3):
                    writer.write(b"garbage\n")
                await writer.drain()
                for _ in range(3):
                    frame = await _read_frame(reader)
                    assert frame["error"]["code"] == "MALFORMED"
                assert await reader.readline() == b""  # EOF
                writer.close()

        run(body())

    def test_malformed_echoes_recoverable_id(self):
        async def body():
            async with serving() as server:
                reader, writer = await _raw_connection(server.port)
                writer.write(b'{"id": 9, "op": ""}\n')
                await writer.drain()
                frame = await _read_frame(reader)
                assert frame["id"] == 9
                assert frame["error"]["code"] == "MALFORMED"
                writer.close()

        run(body())

    def test_oversized_frame_closes_the_connection(self):
        async def body():
            async with serving() as server:
                reader, writer = await _raw_connection(server.port)
                writer.write(b'{"pad": "' + b"x" * (70 * 1024) + b'"}\n')
                await writer.drain()
                frame = await _read_frame(reader)
                assert frame["error"]["code"] == "MALFORMED"
                assert "exceeds" in frame["error"]["message"]
                assert await reader.readline() == b""  # EOF
                writer.close()

        run(body())


class TestBackpressure:
    def test_full_queue_answers_busy_immediately(self):
        # Unit-level: a dispatcher whose loop is NOT running, so the
        # queue genuinely fills (deterministic, no timing races).
        async def body():
            dispatcher = CommandDispatcher(
                TransactionManager(tiny_db()), queue_size=2
            )
            session = SessionState(1, notify=lambda frame: None)
            outcomes = [
                dispatcher.submit(session, Request(i, "ping"))
                for i in range(4)
            ]
            futures = [o for o in outcomes if isinstance(o, asyncio.Future)]
            rejections = [o for o in outcomes if isinstance(o, dict)]
            assert len(futures) == 2
            assert len(rejections) == 2
            for rejection in rejections:
                assert rejection["error"]["code"] == "BUSY"
                assert rejection["error"]["details"]["queue_size"] == 2
            # Queued work still completes once the loop runs.
            runner = asyncio.create_task(dispatcher.run())
            responses = await asyncio.gather(*futures)
            assert all(r["pong"] for r in responses)
            await dispatcher.stop()
            await runner

        run(body())

    def test_submit_after_drain_is_shutting_down(self):
        async def body():
            dispatcher = CommandDispatcher(TransactionManager(tiny_db()))
            runner = asyncio.create_task(dispatcher.run())
            await dispatcher.drain(grace=0.01)
            session = SessionState(1, notify=lambda frame: None)
            outcome = dispatcher.submit(session, Request(1, "ping"))
            assert isinstance(outcome, dict)
            assert outcome["error"]["code"] == "SHUTTING_DOWN"
            await dispatcher.stop()
            await runner

        run(body())


class TestTimeouts:
    def test_slow_client_parked_request_times_out(self):
        # A "slow client" holds a W lock open (begin_write without
        # end_write); B's validate parks and must time out, and the
        # server stays fully available throughout.
        async def body():
            async with serving(request_timeout=0.3) as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                ta = await a.define(updates=["y"])
                await a.validate(ta)
                await a.begin_write(ta, "y")
                tb = await b.define(input_constraint="y >= 0")
                with pytest.raises(RequestTimeout, match="y"):
                    await b.validate(tb)
                # Server is still responsive; once the writer finishes,
                # the same transaction validates fine.
                assert await b.ping()
                await a.end_write(ta, "y", 2)
                assert (await b.validate(tb))["outcome"] == "ok"
                await a.close()
                await b.close()

        run(body())

    def test_parked_request_resumes_when_unblocked(self):
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                ta = await a.define(updates=["x"])
                await a.validate(ta)
                await a.begin_write(ta, "x")
                tb = await b.define(input_constraint="x >= 0")
                task = asyncio.create_task(b.validate(tb))
                await asyncio.sleep(0.1)
                assert not task.done()  # parked server-side
                await a.end_write(ta, "x", 3)
                assert (await task)["outcome"] == "ok"
                await a.close()
                await b.close()

        run(body())

    def test_second_request_on_parked_txn_conflicts(self):
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                ta = await a.define(updates=["x"])
                await a.validate(ta)
                await a.begin_write(ta, "x")
                tb = await b.define(input_constraint="x >= 0")
                parked = asyncio.create_task(b.validate(tb))
                await asyncio.sleep(0.05)
                with pytest.raises(ConflictingRequest):
                    await b.validate(tb)
                await a.end_write(ta, "x", 3)
                await parked
                await a.close()
                await b.close()

        run(body())


class TestCascadingAborts:
    def test_cascade_fails_reader_and_notifies_its_session(self):
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                # A writes x=7 uncommitted; B's constraint x >= 5 forces
                # it onto A's uncommitted version.
                ta = await a.define(updates=["x"])
                await a.validate(ta)
                await a.write(ta, "x", 7)
                tb = await b.define(input_constraint="x >= 5")
                await b.validate(tb)
                assert await b.read(tb, "x") == 7
                aborted = await a.abort(ta)
                assert tb in aborted["cascade"]
                event = await asyncio.wait_for(b.event_queue.get(), 5)
                # Driving the dead transaction now fails typed.
                with pytest.raises(RemoteAborted):
                    await b.read(tb, "x")
                await a.close()
                await b.close()
                return event, tb

        event, tb = run(body())
        assert event["event"] == "abort"
        assert event["txn"] == tb
        assert "abort" in event["reason"]

    def test_killed_client_mid_transaction_cascades(self):
        # A dies holding an uncommitted write that B read: the server
        # aborts A's work and the cascade reaches B with an event.
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                ta = await a.define(updates=["x"])
                await a.validate(ta)
                await a.write(ta, "x", 9)
                tb = await b.define(input_constraint="x >= 5")
                await b.validate(tb)
                assert await b.read(tb, "x") == 9
                await a.close()  # killed mid-transaction
                event = await asyncio.wait_for(b.event_queue.get(), 5)
                await b.close()
                return event, tb

        event, tb = run(body())
        assert event["event"] == "abort"
        assert event["txn"] == tb

    def test_abort_unblocks_parked_waiters(self):
        # B parks behind A's in-flight write; aborting A must release
        # B (the manager drops lock grants on abort — the dispatcher
        # re-runs all lock waiters to compensate).
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                ta = await a.define(updates=["x"])
                await a.validate(ta)
                await a.begin_write(ta, "x")
                tb = await b.define(input_constraint="x >= 0")
                task = asyncio.create_task(b.validate(tb))
                await asyncio.sleep(0.05)
                assert not task.done()
                await a.abort(ta)
                result = await asyncio.wait_for(task, 5)
                assert result["outcome"] == "ok"
                await a.close()
                await b.close()

        run(body())


class TestGracefulDrain:
    def test_shutdown_aborts_live_work_and_notifies(self):
        async def body():
            server = TransactionServer(tiny_db(), ServerConfig(port=0))
            await server.start()
            client = await AsyncClient.connect("127.0.0.1", server.port)
            txn = await client.define(updates=["x"])
            await client.validate(txn)
            await server.shutdown()
            events = []
            while True:
                try:
                    events.append(
                        await asyncio.wait_for(client.event_queue.get(), 2)
                    )
                except asyncio.TimeoutError:
                    break
                if events[-1]["event"] == "shutdown":
                    break
            await client.close()
            # The live transaction was aborted server-side.
            assert server.manager.record(txn).terminated
            return events, txn

        events, txn = run(body())
        kinds = [event["event"] for event in events]
        assert kinds == ["abort", "shutdown"]
        assert events[0]["txn"] == txn

    def test_requests_after_drain_get_shutting_down(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                server.dispatcher._draining = True
                with pytest.raises(ShuttingDown):
                    await client.ping()
                server.dispatcher._draining = False
                await client.close()

        run(body())

    def test_idle_session_is_closed(self):
        async def body():
            async with serving(session_timeout=0.2) as server:
                reader, writer = await _raw_connection(server.port)
                line = await asyncio.wait_for(reader.readline(), 5)
                assert line == b""  # server closed the idle connection
                writer.close()
                counters = server.registry.snapshot()["counters"]
                assert counters["server.idle_closed"] == 1

        run(body())
