"""Drain-with-parked-commit regression tests.

The commit-stability gate parks a commit whose reads-from author is
still in flight (``_commit_waiters``).  The original drain handled that
park dishonestly twice over: it burned the *entire* grace period
polling (a parked commit has no progress source once the queue is
empty — its author's session can no longer submit), and it then failed
the waiter with a plain ``SHUTTING_DOWN`` *before* aborting live
transactions — even though those very aborts would have resolved the
waiter honestly (``ABORTED`` through the cascade, or ``committed`` when
the author's termination unblocks it).

The fixed drain breaks out of the grace loop as soon as only
commit-stability parks remain, aborts non-parked transactions first so
``_after_abort`` can resolve the waiters with their true outcome, and
only backstops a still-undecided commit with an *indeterminate*
``SHUTTING_DOWN``.
"""

from __future__ import annotations

import asyncio
import time

from repro.protocol.scheduler import TransactionManager
from repro.protocol.validation import GreedyLatestSelector
from repro.server.protocol import Request
from repro.server.session import CommandDispatcher, SessionState

from .conftest import run, tiny_db


async def _request(dispatcher, session, rid, op, **params):
    outcome = dispatcher.submit(session, Request(rid, op, params))
    return outcome if isinstance(outcome, dict) else await outcome


async def _parked_commit(dispatcher):
    """T2 reads T1's uncommitted write, then commits: parked on T1."""
    s1 = SessionState(1, notify=lambda frame: None)
    s2 = SessionState(2, notify=lambda frame: None)
    t1 = (await _request(dispatcher, s1, 1, "define", updates=["x"]))[
        "txn"
    ]
    await _request(dispatcher, s1, 2, "validate", txn=t1)
    await _request(dispatcher, s1, 3, "write", txn=t1, entity="x", value=7)
    # T2's input predicate mentions x so validation assigns it a
    # version of x — the latest, which is T1's uncommitted write.
    t2 = (
        await _request(
            dispatcher, s2, 4, "define", updates=["y"], input="x >= 0"
        )
    )["txn"]
    await _request(dispatcher, s2, 5, "validate", txn=t2)
    read = await _request(dispatcher, s2, 6, "read", txn=t2, entity="x")
    assert read["value"] == 7  # reads-from edge onto in-flight T1
    commit_future = dispatcher.submit(
        s2, Request(7, "commit", {"txn": t2})
    )
    assert isinstance(commit_future, asyncio.Future)
    # Let the dispatcher run the commit up to the stability park.
    for _ in range(50):
        await asyncio.sleep(0)
        if t2 in dispatcher._commit_waiters:
            break
    assert t2 in dispatcher._commit_waiters
    return t1, t2, commit_future


def test_drain_resolves_parked_commit_honestly_and_fast():
    async def body():
        dispatcher = CommandDispatcher(
            # Latest-first selection so T2 deterministically reads
            # T1's uncommitted version (the park precondition).
            TransactionManager(
                tiny_db(), selector=GreedyLatestSelector()
            ),
            request_timeout=30.0,
        )
        runner = asyncio.create_task(dispatcher.run())
        t1, t2, commit_future = await _parked_commit(dispatcher)

        started = time.monotonic()
        summary = await dispatcher.drain(grace=5.0)
        elapsed = time.monotonic() - started

        # No full-grace poll: only a commit-stability park remained,
        # which waiting can never resolve.
        assert elapsed < 2.0
        # The waiter got its true outcome, not a dropped future or a
        # misleading plain SHUTTING_DOWN: aborting in-flight T1
        # cascades over T2 (it read T1's expunged version).
        assert commit_future.done()
        response = commit_future.result()
        assert response["ok"] is False
        assert response["error"]["code"] == "ABORTED"
        assert t2 in response["error"]["message"]
        assert t1 in summary["aborted"]
        assert t2 in summary["aborted"]

        await dispatcher.stop()
        await runner

    run(body())


def test_drain_commits_waiter_when_author_terminates_in_queue():
    async def body():
        dispatcher = CommandDispatcher(
            # Latest-first selection so T2 deterministically reads
            # T1's uncommitted version (the park precondition).
            TransactionManager(
                tiny_db(), selector=GreedyLatestSelector()
            ),
            request_timeout=30.0,
        )
        runner = asyncio.create_task(dispatcher.run())
        t1, t2, commit_future = await _parked_commit(dispatcher)

        # The author's commit is already queued when the drain starts:
        # the grace loop must let it run, and its termination resolves
        # the parked commit with a real ``committed``.
        s1 = SessionState(1, notify=lambda frame: None)
        s1.owned.add(t1)
        author_commit = dispatcher.submit(
            s1, Request(8, "commit", {"txn": t1})
        )
        assert isinstance(author_commit, asyncio.Future)
        summary = await dispatcher.drain(grace=5.0)

        assert (await author_commit)["outcome"] == "committed"
        assert commit_future.done()
        assert commit_future.result()["outcome"] == "committed"
        assert t2 not in summary["aborted"]

        await dispatcher.stop()
        await runner

    run(body())
