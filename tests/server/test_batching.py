"""The dispatcher's batched drain loop (live-path fast lane).

One blocking ``get`` then opportunistic ``get_nowait`` up to
``batch_size`` — FIFO order preserved, every queued command still
served, the ``server.batch.size`` histogram records what the loop
actually drained, and ``batch_size=1`` reproduces the old
command-at-a-time behaviour exactly.
"""

from __future__ import annotations

import asyncio

from repro.obs.metrics import MetricsRegistry
from repro.protocol.scheduler import TransactionManager
from repro.server.protocol import Request
from repro.server.session import CommandDispatcher, SessionState

from .conftest import run, serving, tiny_db


def _session() -> SessionState:
    return SessionState(session_id=1, notify=lambda frame: None)


async def _drive(batch_size: int, count: int) -> tuple[list, MetricsRegistry]:
    """Queue ``count`` defines before the loop starts, then drain."""
    registry = MetricsRegistry()
    dispatcher = CommandDispatcher(
        TransactionManager(tiny_db()),
        registry=registry,
        batch_size=batch_size,
    )
    session = _session()
    futures = []
    for request_id in range(1, count + 1):
        outcome = dispatcher.submit(
            session,
            Request(
                request_id,
                "define",
                {"updates": ["x"], "input_constraint": "x >= 0"},
            ),
        )
        assert not isinstance(outcome, dict), outcome
        futures.append(outcome)
    runner = asyncio.create_task(dispatcher.run())
    responses = await asyncio.gather(*futures)
    await dispatcher.stop()
    await runner
    return responses, registry


class TestBatchedDrain:
    def test_queued_burst_is_one_batch(self):
        responses, registry = run(_drive(batch_size=32, count=5))
        assert all(r["ok"] for r in responses)
        sizes = registry.histogram("server.batch.size").values
        assert sizes and max(sizes) == 5

    def test_fifo_order_within_a_batch(self):
        responses, _ = run(_drive(batch_size=32, count=6))
        names = [r["txn"] for r in responses]
        # Child naming is allocation-ordered, so FIFO dispatch means
        # the n-th submitted define receives the n-th child name.
        assert names == sorted(names, key=lambda n: int(n.rsplit(".", 1)[1]))

    def test_batch_size_one_is_command_at_a_time(self):
        responses, registry = run(_drive(batch_size=1, count=4))
        assert all(r["ok"] for r in responses)
        sizes = registry.histogram("server.batch.size").values
        assert sizes and set(sizes) == {1} and len(sizes) >= 4

    def test_batch_cap_splits_bursts(self):
        responses, registry = run(_drive(batch_size=2, count=5))
        assert all(r["ok"] for r in responses)
        sizes = registry.histogram("server.batch.size").values
        assert max(sizes) <= 2 and sum(sizes) == 5


class TestBatchedServerEndToEnd:
    def test_server_round_trip_with_tiny_batches(self):
        # The whole lifecycle still works when every batch is size 1.
        from repro.server import AsyncClient

        async def body():
            async with serving(batch_size=1) as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                await client.validate(txn)
                value = await client.read(txn, "x")
                await client.write(txn, "x", value + 1)
                outcome = await client.commit(txn)
                await client.close()
                return outcome

        assert run(body())["outcome"] == "committed"
