"""Loadgen tests: workload replay, report shape, bench-file output."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server import (
    ServerConfig,
    TransactionServer,
    build_workload,
)
from repro.server.loadgen import report_table, run_loadgen

from .conftest import run


def _replay(workload, clients, **server_kw):
    async def body():
        server = TransactionServer(
            workload.fresh_database(), ServerConfig(port=0, **server_kw)
        )
        await server.start()
        try:
            return await run_loadgen(
                workload,
                clients=clients,
                port=server.port,
                connect_retries=2,
            )
        finally:
            await server.shutdown()

    return run(body(), timeout=120)


class TestBuildWorkload:
    def test_kinds(self):
        cad = build_workload("cad", transactions=3)
        oltp = build_workload("oltp", transactions=3)
        assert len(cad.scripts) == 3
        assert len(oltp.scripts) == 3
        assert cad.fresh_database().schema.names

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("tpcc")

    def test_key_dist_threads_through(self):
        zipf = build_workload("cad", transactions=3, key_dist="zipf")
        assert zipf.key_dist == "zipf"
        assert build_workload("oltp", transactions=3).key_dist == "uniform"
        with pytest.raises(ValueError, match="key distribution"):
            build_workload("cad", key_dist="pareto")


class TestLoadgen:
    def test_cad_replay_commits_everything_cleanly(self):
        workload = build_workload("cad", transactions=8, seed=1)
        report = _replay(workload, clients=4)
        assert report.protocol_errors == 0
        assert report.committed + report.gave_up == 8
        assert report.committed > 0
        assert report.requests > 0
        # BUSY retries observe latency without counting as requests.
        assert report.latency.count >= report.requests
        assert report.wall_time > 0
        assert report.throughput > 0

    def test_oltp_replay(self):
        workload = build_workload("oltp", transactions=6, seed=2)
        report = _replay(workload, clients=3)
        assert report.protocol_errors == 0
        assert report.committed + report.gave_up == 6

    def test_more_clients_than_scripts(self):
        workload = build_workload("cad", transactions=2, seed=0)
        report = _replay(workload, clients=5)
        assert report.protocol_errors == 0
        assert report.committed + report.gave_up == 2

    def test_report_json_and_file(self, tmp_path):
        workload = build_workload("cad", transactions=4, seed=3)
        report = _replay(workload, clients=2)
        data = report.to_json()
        assert data["benchmark"] == "server-loadgen"
        assert data["clients"] == 2
        assert data["scripts"] == 4
        assert data["key_dist"] == "uniform"
        assert set(data["request_latency_ms"]) == {
            "count", "mean", "p50", "p95", "p99", "max",
        }
        assert "server" in data
        path = tmp_path / "BENCH_server.json"
        report.write(str(path))
        assert json.loads(path.read_text()) == data
        table = report_table(report)
        assert "wire-protocol errors: 0" in table
        assert "committed" in table

    def test_server_stats_are_archived(self):
        workload = build_workload("cad", transactions=4, seed=4)
        report = _replay(workload, clients=2)
        assert report.server_stats["counters"]["server.requests"] > 0
        assert "queue_wait" in report.server_stats

    def test_rejects_zero_clients(self):
        workload = build_workload("cad", transactions=2)

        async def body():
            await run_loadgen(workload, clients=0, port=1)

        with pytest.raises(ValueError, match="client"):
            run(body())

    def test_connection_refused_surfaces_oserror(self):
        workload = build_workload("cad", transactions=1)

        async def body():
            # An unroutable port with no retries fails fast.
            await run_loadgen(
                workload,
                clients=1,
                port=1,
                connect_retries=0,
            )

        with pytest.raises(OSError):
            run(body())


class TestLoadgenUnderPressure:
    def test_tiny_queue_still_completes_with_busy_retries(self):
        # A 4-deep command queue against 6 clients forces BUSY
        # responses; the loadgen's backoff absorbs them and the run
        # still finishes with zero wire faults.
        workload = build_workload("oltp", transactions=12, seed=5)
        report = _replay(workload, clients=6, queue_size=4)
        assert report.protocol_errors == 0
        assert report.committed + report.gave_up == 12

    def test_asyncio_event_loop_isolation(self):
        # Two sequential asyncio.run loadgens must not share state.
        workload = build_workload("cad", transactions=2, seed=6)
        first = _replay(workload, clients=2)
        second = _replay(workload, clients=2)
        assert first.protocol_errors == second.protocol_errors == 0
