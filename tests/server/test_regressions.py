"""Regression tests for the fuzz-sweep bugfixes.

Each test pins one fix from the fuzzer-driven sweep:

* dropped slow-reader notifications are counted under
  ``server.notifications_dropped`` and surfaced by the drain summary;
* :meth:`ServerThread.stop` raises instead of silently leaking a
  wedged event-loop thread;
* a command that was answered while parked (timeout, abort cascade)
  can never reach the manager again;
* a recursive abort cascade inside ``_resume_all_lock_waiters`` must
  not double-execute a parked command (the stale-snapshot race).
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter

import pytest

from repro.protocol.scheduler import TransactionManager
from repro.server import ServerConfig, TransactionServer
from repro.server.protocol import Request
from repro.server.server import ServerThread, _Connection
from repro.server.session import CommandDispatcher, SessionState

from .conftest import run, tiny_db


class CountingManager(TransactionManager):
    """Counts manager entry points the dispatcher may double-call."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.validate_calls: Counter = Counter()
        self.begin_write_calls: Counter = Counter()

    def validate(self, txn):
        self.validate_calls[txn] += 1
        return super().validate(txn)

    def begin_write(self, txn, entity):
        self.begin_write_calls[(txn, entity)] += 1
        return super().begin_write(txn, entity)


async def _request(dispatcher, session, rid, op, **params):
    outcome = dispatcher.submit(session, Request(rid, op, params))
    return outcome if isinstance(outcome, dict) else await outcome


# -- satellite: notifications_dropped metric + drain summary ----------------


def test_slow_reader_drops_are_counted_and_summarized():
    async def body():
        server = TransactionServer(
            tiny_db(), ServerConfig(outbound_queue=1)
        )
        # A connection whose writer never drains: one slot, no task.
        connection = _Connection(
            session=SessionState(session_id=1, notify=lambda p: None),
            writer=None,
            out_queue=asyncio.Queue(maxsize=1),
        )
        server._connections[1] = connection
        server._send(connection, {"event": "first"})  # fills the queue
        server._send(connection, {"event": "second"})  # dropped
        server._send(connection, {"event": "third"})  # dropped
        counter = server.registry.counter(
            "server.notifications_dropped"
        )
        assert counter.value == 2
        summary = await server.shutdown()
        # shutdown() pushes a shutdown event + close sentinel at the
        # same full queue, so the summary includes those drops too.
        assert summary["notifications_dropped"] == counter.value >= 2
        assert summary["parked_failed"] == 0
        assert summary["aborted"] == []

    run(body())


def test_send_never_blocks_the_caller():
    async def body():
        server = TransactionServer(
            tiny_db(), ServerConfig(outbound_queue=1)
        )
        connection = _Connection(
            session=SessionState(session_id=1, notify=lambda p: None),
            writer=None,
            out_queue=asyncio.Queue(maxsize=1),
        )
        start = time.monotonic()
        for index in range(100):
            server._send(connection, {"event": index})
        assert time.monotonic() - start < 1.0
        assert connection.out_queue.qsize() == 1

    run(body())


# -- satellite: ServerThread.stop detects a wedged loop ---------------------


def test_server_thread_stop_raises_on_wedged_loop():
    handle = ServerThread(tiny_db).start()
    try:
        # Wedge the loop: a blocking callback the drain cannot preempt.
        handle._loop.call_soon_threadsafe(time.sleep, 1.5)
        with pytest.raises(RuntimeError, match="wedged"):
            handle.stop(timeout=0.2)
    finally:
        # The sleep ends, the stop event (queued behind it) fires, and
        # a second stop() joins the now-exiting thread cleanly.
        handle.stop(timeout=15.0)


def test_server_thread_stop_clean_shutdown_still_works():
    handle = ServerThread(tiny_db).start()
    handle.stop(timeout=10.0)
    assert handle._thread is None
    handle.stop()  # idempotent


# -- satellite: answered-while-parked commands never run --------------------


def test_timed_out_parked_command_cannot_mutate_later():
    async def body():
        manager = CountingManager(tiny_db(), strict=True)
        dispatcher = CommandDispatcher(
            manager, queue_size=32, request_timeout=0.15
        )
        runner = asyncio.ensure_future(dispatcher.run())
        s1 = SessionState(session_id=1, notify=lambda p: None)
        s2 = SessionState(session_id=2, notify=lambda p: None)

        reply = await _request(dispatcher, s1, 1, "define", updates=["x"])
        t1 = reply["txn"]
        await _request(dispatcher, s1, 2, "validate", txn=t1)
        await _request(
            dispatcher, s1, 3, "write", txn=t1, entity="x", value=5
        )
        reply = await _request(dispatcher, s2, 1, "define", updates=["x"])
        t2 = reply["txn"]
        await _request(dispatcher, s2, 2, "validate", txn=t2)
        # Strict mode: t1's uncommitted version parks t2's write.
        future = dispatcher.submit(
            s2, Request(3, "write", {"txn": t2, "entity": "x", "value": 7})
        )
        await asyncio.sleep(0.02)
        assert dispatcher.parked_count == 1
        stale = dispatcher._lock_waiters[t2]
        reply = await future  # deadline passes -> TIMEOUT
        assert reply["error"]["code"] == "TIMEOUT"
        assert dispatcher.parked_count == 0
        assert manager.begin_write_calls[(t2, "x")] == 1

        # The strict commit re-runs every lock waiter; the answered
        # command must not be among them...
        await _request(dispatcher, s1, 4, "commit", txn=t1)
        assert manager.begin_write_calls[(t2, "x")] == 1
        # ...and even a stale direct reference is refused by the
        # done-future guard in _run_command.
        dispatcher._run_command(stale)
        assert manager.begin_write_calls[(t2, "x")] == 1

        await dispatcher.stop()
        await runner

    run(body())


# -- satellite: recursive resume must not double-execute --------------------


def test_recursive_abort_cascade_resumes_each_waiter_once():
    async def body():
        manager = CountingManager(tiny_db())
        dispatcher = CommandDispatcher(
            manager, queue_size=32, request_timeout=5.0
        )
        runner = asyncio.ensure_future(dispatcher.run())
        s1 = SessionState(session_id=1, notify=lambda p: None)
        s2 = SessionState(session_id=2, notify=lambda p: None)
        s3 = SessionState(session_id=3, notify=lambda p: None)

        # t1 holds an in-flight write on x.
        reply = await _request(dispatcher, s1, 1, "define", updates=["x"])
        t1 = reply["txn"]
        await _request(dispatcher, s1, 2, "validate", txn=t1)
        await _request(
            dispatcher, s1, 3, "begin_write", txn=t1, entity="x"
        )

        # A parks on x and will FAIL validation once resumed (x = 1
        # can never satisfy "x >= 50").  Its child C turns that
        # failure into a cascade, which re-enters the resume loop.
        reply = await _request(
            dispatcher, s2, 1, "define", updates=[], input="x >= 50"
        )
        a = reply["txn"]
        reply = await _request(dispatcher, s2, 2, "define", parent=a)
        c = reply["txn"]
        future_a = dispatcher.submit(s2, Request(3, "validate", {"txn": a}))
        await asyncio.sleep(0.02)

        # B parks on x after A and validates fine once resumed.
        reply = await _request(
            dispatcher, s3, 1, "define", updates=[], input="x >= 0"
        )
        b = reply["txn"]
        future_b = dispatcher.submit(s3, Request(2, "validate", {"txn": b}))
        await asyncio.sleep(0.02)
        assert dispatcher.parked_count == 2

        # Aborting t1 resumes the waiters; A's failure cascades to C,
        # recursively re-entering _resume_all_lock_waiters, which
        # already runs B.  The outer (stale) snapshot must skip B.
        await _request(dispatcher, s1, 4, "abort", txn=t1)
        reply_a = await future_a
        reply_b = await future_b
        assert reply_a["ok"] and reply_a["outcome"] == "failed"
        assert c in reply_a["aborted"]
        assert reply_b["ok"] and reply_b["outcome"] == "ok"
        # One parked attempt + exactly one resume each:
        assert manager.validate_calls[a] == 2
        assert manager.validate_calls[b] == 2

        await dispatcher.stop()
        await runner

    run(body())
