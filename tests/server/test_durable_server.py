"""The durable server: WAL-backed restarts and strict-mode serving."""

from __future__ import annotations

import threading

import pytest

from repro.durability.snapshot import CheckpointStore
from repro.errors import RecoveryError
from repro.server import Client, ServerConfig, ServerThread

from .conftest import tiny_db


def durable_config(wal_dir, **overrides) -> ServerConfig:
    defaults = dict(
        wal_dir=str(wal_dir),
        flush_interval=0.005,
        checkpoint_every=8,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestDurableServer:
    def test_restart_preserves_committed_state(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            assert handle.server.recovery is None  # fresh directory
            with Client.connect("127.0.0.1", handle.port) as client:
                txn = client.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                client.validate(txn)
                client.write(txn, "x", 42)
                assert client.commit(txn)["outcome"] == "committed"
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            recovery = handle.server.recovery
            assert recovery is not None and recovery.verified
            with Client.connect("127.0.0.1", handle.port) as client:
                txn = client.define(input_constraint="x >= 0")
                client.validate(txn)
                assert client.read(txn, "x") == 42

    def test_in_flight_txn_rolled_back_across_restart(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            with Client.connect("127.0.0.1", handle.port) as client:
                committed = client.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                client.validate(committed)
                client.write(committed, "x", 42)
                client.commit(committed)
                dangling = client.define(
                    updates=["y"], input_constraint="y >= 0"
                )
                client.validate(dangling)
                client.write(dangling, "y", 33)
                # No commit: the shutdown checkpoint must still treat
                # this as in flight and the restart must undo it.
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            recovery = handle.server.recovery
            assert recovery is not None and recovery.verified
            # The disconnect already aborted the dangling transaction
            # server-side; either way it must not survive as committed.
            assert dangling not in recovery.committed
            assert committed in recovery.committed
            with Client.connect("127.0.0.1", handle.port) as client:
                txn = client.define(
                    input_constraint="x >= 0 & y >= 0"
                )
                client.validate(txn)
                assert client.read(txn, "x") == 42
                assert client.read(txn, "y") == 1  # initial value

    def test_shutdown_writes_final_checkpoint(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            store = CheckpointStore(wal_dir)
            at_start = len(store.checkpoints())
            with Client.connect("127.0.0.1", handle.port) as client:
                txn = client.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                client.validate(txn)
                client.write(txn, "x", 9)
                client.commit(txn)
        assert len(CheckpointStore(wal_dir).checkpoints()) > at_start

    def test_refuses_to_start_on_unverifiable_directory(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with ServerThread(
            tiny_db, config=durable_config(wal_dir)
        ) as handle:
            with Client.connect("127.0.0.1", handle.port) as client:
                txn = client.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                client.validate(txn)
                client.write(txn, "x", 9)
                client.commit(txn)
        for path in CheckpointStore(wal_dir).checkpoints():
            path.unlink()  # damage: no usable checkpoint remains
        with pytest.raises(RuntimeError) as excinfo:
            ServerThread(
                tiny_db, config=durable_config(wal_dir)
            ).start()
        assert isinstance(excinfo.value.__cause__, RecoveryError)


class TestStrictServing:
    def test_blocked_write_resumes_after_commit(self, tmp_path):
        config = durable_config(
            tmp_path / "wal", strict=True, request_timeout=10.0
        )
        with ServerThread(tiny_db, config=config) as handle:
            with Client.connect(
                "127.0.0.1", handle.port
            ) as writer, Client.connect(
                "127.0.0.1", handle.port
            ) as waiter:
                first = writer.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                writer.validate(first)
                writer.write(first, "x", 7)  # uncommitted write on x
                second = waiter.define(
                    updates=["x"], input_constraint="x >= 0"
                )
                waiter.validate(second)

                result = {}

                def blocked_write():
                    result["response"] = waiter.write(second, "x", 8)

                thread = threading.Thread(target=blocked_write)
                thread.start()
                thread.join(timeout=0.5)
                assert thread.is_alive()  # parked on first's lock
                writer.commit(first)
                thread.join(timeout=5.0)
                assert not thread.is_alive()
                assert result["response"]["ok"]
                assert waiter.view(second)["x"] == 8
                assert waiter.commit(second)["outcome"] == "committed"
        # The strict interleaving is durable: a restart recovers both
        # commits and the root view folds them in commit order.
        with ServerThread(tiny_db, config=config) as handle:
            recovery = handle.server.recovery
            assert recovery is not None and recovery.verified
            assert recovery.committed == [first, second]
            assert recovery.state.root_view()["x"] == 8
