"""Read-your-writes session tokens in the client libraries."""

from __future__ import annotations

from repro.server.client import _token_from_error, _token_from_reply
from repro.server.errors import ServerError


class TestTokenFromReply:
    def test_commit_lsn_advances_the_token(self):
        reply = {"outcome": "committed", "commit_lsn": 42}
        assert _token_from_reply(reply, 0) == 42

    def test_token_never_regresses(self):
        reply = {"outcome": "committed", "commit_lsn": 7}
        assert _token_from_reply(reply, 42) == 42

    def test_missing_or_bogus_lsn_is_ignored(self):
        assert _token_from_reply({"outcome": "committed"}, 5) == 5
        assert _token_from_reply({"commit_lsn": "nope"}, 5) == 5
        assert _token_from_reply({"commit_lsn": True}, 5) == 5


class TestTokenFromError:
    def test_indeterminate_commit_still_advances(self):
        # A replication-ack timeout: committed and durable locally,
        # so this session has observed its own write.
        error = ServerError(
            "timed out",
            details={"indeterminate": True, "commit_lsn": 99},
        )
        assert _token_from_error(error, 10) == 99

    def test_determinate_failure_does_not_advance(self):
        error = ServerError("aborted", details={"commit_lsn": 99})
        assert _token_from_error(error, 10) == 10
        assert _token_from_error(ServerError("boom"), 10) == 10
