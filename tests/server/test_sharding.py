"""Sharded server: routing, cross-shard 2PC, and metric accounting.

The entity space here is four "modules" of two entities each
(``m{i}_e{j}``) so the affinity hash (entity name up to its last
underscore) colocates each module on one shard — the layout the
router's per-clause locality assumption is designed for.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.entities import Domain, Schema
from repro.core.predicates import Predicate
from repro.obs.metrics import MetricsRegistry
from repro.server import InvalidArgument, ServerConfig, TransactionServer
from repro.server.client import AsyncClient
from repro.server.router import ShardRouter, affinity_key, shard_of
from repro.server.session import CommandDispatcher
from repro.storage.database import Database

from .conftest import run, serving

SHARDS = 4


def cluster_db() -> Database:
    schema = Schema.of(
        *(f"m{m}_e{e}" for m in range(8) for e in range(2)),
        domain=Domain.interval(0, 100),
    )
    constraint = Predicate.parse(
        " & ".join(f"m{m}_e0 >= 0" for m in range(8))
    )
    return Database(
        schema, constraint, {name: 1 for name in schema.names}
    )


def cross_pair() -> tuple[str, str]:
    """Two entities that land on *different* shards."""
    by_shard: dict[int, list[str]] = {}
    for name in sorted(cluster_db().schema.names):
        by_shard.setdefault(shard_of(name, SHARDS), []).append(name)
    first, second, *_ = sorted(by_shard)
    return by_shard[first][0], by_shard[second][0]


def test_affinity_key_groups_modules():
    assert affinity_key("m3_e2") == "m3"
    assert affinity_key("m3_sub_e2") == "m3_sub"
    assert affinity_key("x") == "x"
    # every entity of a module lands on the same shard
    for shards in (1, 2, 4, 8):
        assert len(
            {shard_of(f"m5_e{j}", shards) for j in range(16)}
        ) == 1
    assert shard_of("anything", 1) == 0


def test_shards_one_keeps_the_single_dispatcher_stack():
    server = TransactionServer(cluster_db(), ServerConfig(shards=1))
    assert isinstance(server.dispatcher, CommandDispatcher)
    assert not isinstance(server.dispatcher, ShardRouter)


def test_sharding_excludes_replication_and_prebuilt_managers():
    with pytest.raises(ValueError, match="mutually exclusive"):
        TransactionServer(
            cluster_db(),
            ServerConfig(shards=2, repl_port=0, wal_dir="unused"),
        )
    with pytest.raises(ValueError, match="shards must be >= 1"):
        TransactionServer(cluster_db(), ServerConfig(shards=0))


def test_single_shard_txn_over_sharded_server():
    async def body():
        async with serving(cluster_db(), shards=SHARDS) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            hello = await client.hello()
            assert hello["shards"] == SHARDS
            entity, _ = cross_pair()
            txn = await client.define(updates=[entity])
            # branch names are self-routing: sh<shard>.<seq>
            assert txn.startswith(f"sh{shard_of(entity, SHARDS)}.")
            await client.validate(txn)
            await client.write(txn, entity, 5)
            response = await client.commit(txn)
            assert response["outcome"] == "committed"
            await client.close()

    run(body())


def test_cross_shard_commit_is_atomic_and_readable():
    async def body():
        async with serving(cluster_db(), shards=SHARDS) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            a, b = cross_pair()
            txn = await client.define(updates=[a, b])
            await client.validate(txn)
            await client.write(txn, a, 9)
            await client.write(txn, b, 8)
            response = await client.commit(txn)
            assert response["outcome"] == "committed"
            assert len(response["shards"]) == 2
            # both writes visible through fresh single-shard readers
            for entity, expected in ((a, 9), (b, 8)):
                reader = await client.define(
                    input_constraint=f"{entity} >= 0"
                )
                await client.validate(reader)
                assert await client.read(reader, entity) == expected
                await client.abort(reader)
            await client.close()

    run(body())


def test_cross_shard_abort_rolls_back_every_branch():
    async def body():
        async with serving(cluster_db(), shards=SHARDS) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            a, b = cross_pair()
            txn = await client.define(updates=[a, b])
            await client.validate(txn)
            await client.write(txn, a, 33)
            await client.write(txn, b, 44)
            await client.abort(txn)
            for entity in (a, b):
                reader = await client.define(
                    input_constraint=f"{entity} >= 0"
                )
                await client.validate(reader)
                assert await client.read(reader, entity) == 1
                await client.abort(reader)
            await client.close()

    run(body())


def test_entity_outside_footprint_is_rejected():
    async def body():
        async with serving(cluster_db(), shards=SHARDS) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            a, b = cross_pair()
            txn = await client.define(updates=[a, b])
            await client.validate(txn)
            outside = next(
                name
                for name in sorted(cluster_db().schema.names)
                if shard_of(name, SHARDS)
                not in {shard_of(a, SHARDS), shard_of(b, SHARDS)}
            )
            with pytest.raises(InvalidArgument, match="footprint"):
                await client.request(
                    "write", txn=txn, entity=outside, value=1
                )
            await client.abort(txn)
            await client.close()

    run(body())


def test_sharded_durability_survives_restart(tmp_path):
    async def body():
        wal = str(tmp_path / "wal")
        a, b = cross_pair()
        async with serving(
            cluster_db(), shards=SHARDS, wal_dir=wal
        ) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            txn = await client.define(updates=[a, b])
            await client.validate(txn)
            await client.write(txn, a, 9)
            await client.write(txn, b, 8)
            assert (await client.commit(txn))["outcome"] == "committed"
            await client.close()
        # fresh server over the same sharded WAL base
        async with serving(
            cluster_db(), shards=SHARDS, wal_dir=wal
        ) as server:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            for entity, expected in ((a, 9), (b, 8)):
                reader = await client.define(
                    input_constraint=f"{entity} >= 0"
                )
                await client.validate(reader)
                assert await client.read(reader, entity) == expected
                await client.abort(reader)
            await client.close()

    run(body())


def test_per_shard_metrics_sum_exactly():
    """Aggregate gauges/counters equal the sum of their shard series."""

    async def body():
        registry = MetricsRegistry()
        server = TransactionServer(
            cluster_db(),
            ServerConfig(port=0, shards=SHARDS),
            registry=registry,
        )
        await server.start()
        try:
            client = await AsyncClient.connect("127.0.0.1", server.port)
            a, b = cross_pair()
            for _ in range(3):
                txn = await client.define(updates=[a, b])
                await client.validate(txn)
                await client.write(txn, a, 2)
                await client.write(txn, b, 3)
                await client.commit(txn)
            await client.close()
            committed = registry.counter("server.txns.committed").value
            per_shard = sum(
                registry.counter(
                    f"server.txns.committed.shard{index}"
                ).value
                for index in range(SHARDS)
            )
            assert committed == per_shard > 0
            depth = registry.gauge("server.queue.depth").value
            assert depth == sum(
                registry.gauge(
                    f"server.queue.depth.shard{index}"
                ).value
                for index in range(SHARDS)
            )
        finally:
            await server.shutdown()

    run(body())
