"""End-to-end lifecycle tests over a real socket (async client)."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    AsyncClient,
    InvalidArgument,
    NotOwner,
    RemoteProtocolError,
    UnknownOperation,
    UnknownTransaction,
)

from .conftest import run, serving


class TestLifecycle:
    def test_hello_describes_the_database(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                hello = await client.hello()
                await client.close()
                return hello

        hello = run(body())
        assert hello["server"] == "repro"
        assert hello["root"] == "t"
        assert hello["entities"] == ["x", "y"]
        assert hello["session"] == "s1"

    def test_full_commit_cycle_and_visibility(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(
                    updates=["x"],
                    input_constraint="x >= 0",
                    output_condition="x >= 0",
                )
                validated = await client.validate(txn)
                assert validated["outcome"] == "ok"
                assert "x" in validated["assigned"]
                value = await client.read(txn, "x")
                await client.write(txn, "x", value + 5)
                committed = await client.commit(txn)
                assert committed["outcome"] == "committed"
                # A later transaction observes the committed write.
                reader = await client.define(input_constraint="x >= 0")
                await client.validate(reader)
                seen = await client.read(reader, "x")
                await client.abort(reader)
                await client.close()
                return value, seen

        before, after = run(body())
        assert after == before + 5

    def test_begin_end_write_and_view(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(
                    updates=["y"], input_constraint="y >= 0"
                )
                await client.validate(txn)
                await client.begin_write(txn, "y")
                await client.end_write(txn, "y", 42)
                view = await client.view(txn)
                await client.abort(txn)
                await client.close()
                return view

        assert run(body())["y"] == 42

    def test_failed_validation_reports_not_raises(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(input_constraint="x >= 50")
                result = await client.validate(txn)
                await client.close()
                return result

        result = run(body())
        assert result["outcome"] == "failed"
        assert result["reason"]

    def test_pipelined_requests_on_one_connection(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                pongs = await asyncio.gather(
                    *(client.ping() for _ in range(20))
                )
                await client.close()
                return pongs

        assert run(body()) == [True] * 20

    def test_subtransaction_under_own_parent(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                parent = await client.define(updates=["x", "y"])
                await client.validate(parent)
                child = await client.define(
                    updates=["x"],
                    input_constraint="x >= 0",
                    parent=parent,
                )
                await client.validate(child)
                await client.write(child, "x", 9)
                committed = await client.commit(child)
                await client.abort(parent)
                await client.close()
                return committed

        assert run(body())["outcome"] == "committed"


class TestSessionIsolation:
    def test_other_sessions_transactions_are_protected(self):
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                txn = await a.define(updates=["x"])
                with pytest.raises(NotOwner):
                    await b.validate(txn)
                await a.close()
                await b.close()

        run(body())

    def test_cross_session_predecessor_parks_commit(self):
        async def body():
            async with serving() as server:
                a = await AsyncClient.connect("127.0.0.1", server.port)
                b = await AsyncClient.connect("127.0.0.1", server.port)
                first = await a.define(updates=["x"])
                await a.validate(first)
                second = await b.define(
                    updates=["y"], predecessors=[first]
                )
                await b.validate(second)
                # B's commit must wait for A's — it parks server-side.
                commit_task = asyncio.create_task(b.commit(second))
                await asyncio.sleep(0.1)
                assert not commit_task.done()
                assert (await a.commit(first))["outcome"] == "committed"
                result = await commit_task
                await a.close()
                await b.close()
                return result

        assert run(body())["outcome"] == "committed"


class TestRequestValidation:
    def test_unknown_op_keeps_connection_alive(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                with pytest.raises(UnknownOperation):
                    await client.request("frobnicate")
                alive = await client.ping()
                await client.close()
                return alive

        assert run(body()) is True

    def test_unknown_transaction(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                with pytest.raises(UnknownTransaction):
                    await client.read("t.99", "x")
                await client.close()

        run(body())

    def test_unparseable_predicate(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                with pytest.raises(InvalidArgument, match="input"):
                    await client.define(input_constraint="x >>>> 1")
                await client.close()

        run(body())

    def test_missing_and_mistyped_params(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(updates=["x"])
                with pytest.raises(InvalidArgument, match="entity"):
                    await client.request("read", txn=txn)
                with pytest.raises(InvalidArgument, match="updates"):
                    await client.request("define", updates="x")
                await client.close()

        run(body())

    def test_illegal_step_maps_to_protocol_error(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                txn = await client.define(updates=["x"])
                # Reading before validation is an illegal phase step.
                with pytest.raises(RemoteProtocolError):
                    await client.read(txn, "x")
                await client.close()

        run(body())


class TestStats:
    def test_stats_exposes_server_metrics(self):
        async def body():
            async with serving() as server:
                client = await AsyncClient.connect(
                    "127.0.0.1", server.port
                )
                await client.ping()
                txn = await client.define(updates=["x"])
                await client.abort(txn)
                stats = await client.stats()
                await client.close()
                return stats

        stats = run(body())
        counters = stats["stats"]["counters"]
        assert counters["server.requests"] >= 3
        assert counters["server.txns.defined"] == 1
        assert counters["server.txns.aborted"] == 1
        assert "server.request.latency" in stats["stats"]["histograms"]
        assert stats["queue_depth"] == 0
        assert stats["parked"] == 0
