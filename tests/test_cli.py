"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestClassify:
    def test_example1(self, capsys):
        code = main(
            [
                "classify",
                "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)",
                "--objects",
                "x;y",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure-2 region: 4" in out
        assert "MVSR" in out

    def test_default_objects(self, capsys):
        code = main(["classify", "r1(x) w1(x)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "region: 9" in out

    def test_multi_entity_objects(self, capsys):
        code = main(
            ["classify", "r1(x) w1(y) r2(z)", "--objects", "x,y;z"]
        )
        assert code == 0
        assert "[['x', 'y'], ['z']]" in capsys.readouterr().out


class TestExamples:
    def test_all_verify(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") >= 11


class TestCensus:
    def test_exhaustive(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "containment violations: 0" in out

    def test_random(self, capsys):
        assert main(["census", "--random", "40", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "40 schedules" in out


class TestAdmission:
    def test_ladder(self, capsys):
        assert main(["admission"]) == 0
        out = capsys.readouterr().out
        assert "s2pl" in out and "PC" in out


class TestShowdown:
    def test_small_comparison(self, capsys):
        assert (
            main(
                [
                    "showdown",
                    "--designers",
                    "3",
                    "--think",
                    "20",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "korth-speegle" in out
        assert "makespan" in out


class TestDot:
    def test_conflict_graph(self, capsys):
        assert main(["dot", "r1(x) w2(x)"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out
        assert '"t1" -> "t2"' in out

    def test_mv_graph(self, capsys):
        assert main(["dot", "w1(x) r2(x)", "--graph", "mv"]) == 0
        out = capsys.readouterr().out
        # wr is not an MV conflict: no edges.
        assert "->" not in out.split("labelloc")[1]

    def test_cpc_clusters(self, capsys):
        assert (
            main(
                [
                    "dot",
                    "r1(x) w2(x) r2(y) w1(y)",
                    "--graph",
                    "cpc",
                    "--objects",
                    "x;y",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cluster_0" in out and "cluster_1" in out


class TestTrace:
    def _record(self, tmp_path, *extra):
        path = tmp_path / "trace.jsonl"
        args = [
            "trace", str(path), "--record",
            "--designers", "10", "--think", "1", "--seed", "3",
        ]
        assert main(args + list(extra)) == 0
        return path

    def test_record_then_replay(self, tmp_path, capsys):
        path = self._record(tmp_path)
        out = capsys.readouterr().out
        assert "recorded" in out and str(path) in out
        assert main(["trace", str(path)]) == 0
        timeline = capsys.readouterr().out
        assert "== D0 ==" in timeline
        for kind in ("arrive", "wait", "validate", "commit"):
            assert kind in timeline

    def test_txn_filter(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path), "--txn", "D2"]) == 0
        out = capsys.readouterr().out
        assert "== D2 ==" in out
        assert "== D0 ==" not in out

    def test_kind_filter_and_stats(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path), "--kind", "wait", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "wait" in out
        assert "commit" not in out

    def test_no_matching_spans(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path), "--txn", "nope"]) == 0
        assert "(no spans match)" in capsys.readouterr().out

    def test_record_with_timeline(self, tmp_path, capsys):
        self._record(tmp_path, "--timeline")
        out = capsys.readouterr().out
        assert "recorded" in out
        assert "== D0 ==" in out


class TestShowdownTrace:
    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import load_jsonl

        path = tmp_path / "showdown.jsonl"
        code = main(
            ["showdown", "--designers", "3", "--trace", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        spans = load_jsonl(path)
        assert spans
        assert {"arrive", "commit"} <= {span.kind for span in spans}


class TestCensusJobsValidation:
    @pytest.mark.parametrize("jobs", ["0", "-3", "two"])
    def test_rejects_bad_jobs(self, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["census", "--jobs", jobs])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "must be >= 1" in err or "not an integer" in err

    def test_accepts_one(self, capsys):
        assert main(["census", "--jobs", "1", "--limit", "5"]) == 0


class TestServeLoadgenParsers:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 7455
        assert args.workload == "cad"
        assert args.queue_size == 256

    def test_loadgen_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["loadgen"])
        assert args.clients == 8
        assert args.output == "BENCH_server.json"

    def test_sharding_and_key_dist_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--shards", "4", "--key-dist", "zipf"]
        )
        assert args.shards == 4
        assert args.key_dist == "zipf"
        args = build_parser().parse_args(["loadgen", "--key-dist", "zipf"])
        assert args.key_dist == "zipf"
        assert build_parser().parse_args(["serve"]).shards == 1

    @pytest.mark.parametrize(
        "argv",
        [
            ["loadgen", "--clients", "0"],
            ["serve", "--queue-size", "0"],
            ["serve", "--workload", "tpcc"],
            ["serve", "--shards", "0"],
            ["serve", "--key-dist", "pareto"],
            ["loadgen", "--key-dist", "pareto"],
        ],
    )
    def test_rejects_bad_values(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2


class TestLoadgenCommand:
    def test_unreachable_server_exits_2(self, capsys):
        code = main(
            [
                "loadgen",
                "--port", "1",
                "--connect-retries", "0",
                "--transactions", "1",
                "--output", "",
            ]
        )
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_against_running_server(self, tmp_path, capsys):
        import json

        from repro.server import ServerThread
        from repro.server.loadgen import build_workload

        workload = build_workload("cad", transactions=4, seed=0)
        bench = tmp_path / "BENCH_server.json"
        with ServerThread(workload.fresh_database) as handle:
            code = main(
                [
                    "loadgen",
                    "--port", str(handle.port),
                    "--transactions", "4",
                    "--clients", "2",
                    "--output", str(bench),
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "wire-protocol errors: 0" in out
        data = json.loads(bench.read_text())
        assert data["protocol_errors"] == 0
        assert data["committed"] + data["gave_up"] == 4


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert out.strip() == f"repro {repro.__version__}"


def _seed_wal_dir(wal_dir):
    """A tiny recovered-able WAL directory: one commit, one in-flight."""
    from repro.core.entities import Domain, Entity, Schema
    from repro.core.predicates import Predicate
    from repro.core.transactions import Spec
    from repro.durability import DurableTransactionManager
    from repro.storage.database import Database

    def factory():
        schema = Schema([Entity("x", Domain.interval(0, 100))])
        return Database(schema, Predicate.parse("x >= 0"), {"x": 1})

    manager, _ = DurableTransactionManager.open(wal_dir, factory)
    spec = Spec(Predicate.parse("x >= 0"), Predicate.parse("true"))
    done = manager.define(manager.root, spec, ["x"])
    manager.validate(done)
    manager.read(done, "x")
    manager.begin_write(done, "x")
    manager.end_write(done, "x", 42)
    manager.commit(done)
    dangling = manager.define(manager.root, spec, ["x"])
    manager.validate(dangling)
    manager.flush()
    # No close: like a crash, the WAL suffix is all recovery gets.


class TestRecover:
    def test_human_summary(self, tmp_path, capsys):
        wal_dir = tmp_path / "wal"
        _seed_wal_dir(wal_dir)
        code = main(["recover", "--wal-dir", str(wal_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "committed txns:     1" in out
        assert "verification:       VERIFIED" in out

    def test_json_summary(self, tmp_path, capsys):
        import json

        wal_dir = tmp_path / "wal"
        _seed_wal_dir(wal_dir)
        code = main(["recover", "--wal-dir", str(wal_dir), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True
        assert summary["committed"] == 1
        assert summary["aborted_in_flight"] == ["t.1"]

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        code = main(
            ["recover", "--wal-dir", str(tmp_path / "nothing")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_verification_failure_exits_1(self, tmp_path, capsys):
        import json

        from repro.durability.records import WalRecord
        from repro.durability.wal import list_segments

        wal_dir = tmp_path / "wal"
        _seed_wal_dir(wal_dir)
        for path in list_segments(wal_dir):
            lines = path.read_bytes().splitlines(keepends=True)
            for index, line in enumerate(lines):
                record = WalRecord.decode(line.rstrip(b"\n"))
                if record.op == "commit":
                    forged = WalRecord(
                        record.lsn,
                        record.op,
                        record.txn,
                        {"released": {"x": -1}},
                    )
                    lines[index] = forged.encode()
                    path.write_bytes(b"".join(lines))
        code = main(
            ["recover", "--wal-dir", str(wal_dir), "--json"]
        )
        assert code == 1
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is False
        assert summary["violations"]

    def test_sharded_layout_is_routed(self, tmp_path, capsys):
        import json

        base = tmp_path / "wal"
        for index in (0, 1):
            _seed_wal_dir(base / f"shard{index}")
        code = main(["recover", "--wal-dir", str(base)])
        out = capsys.readouterr().out
        assert code == 0
        assert "(sharded)" in out
        assert "shards:             2" in out
        assert "in-doubt 2PC branches: none" in out
        assert "verification:       VERIFIED" in out
        code = main(["recover", "--wal-dir", str(base), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True
        assert set(summary["shards"]) == {"0", "1"}
        assert summary["resolutions"] == []

    def test_no_verify_skips_the_gate(self, tmp_path, capsys):
        wal_dir = tmp_path / "wal"
        _seed_wal_dir(wal_dir)
        code = main(
            ["recover", "--wal-dir", str(wal_dir), "--no-verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verification:" not in out
