"""Unit tests for the database façade."""

from __future__ import annotations

import pytest

from repro.core import Domain, Predicate, Schema
from repro.errors import SchemaError
from repro.storage import Database


@pytest.fixture
def schema():
    return Schema.of("x", "y", domain=Domain.interval(0, 100))


class TestConstruction:
    def test_initial_must_satisfy_constraint(self, schema):
        with pytest.raises(SchemaError):
            Database(schema, Predicate.parse("x > 50"), {"x": 1, "y": 1})

    def test_accepts_mapping_initial(self, schema):
        db = Database(schema, Predicate.parse("x >= 0"), {"x": 1, "y": 2})
        assert db.initial_state["x"] == 1

    def test_objects_from_constraint(self, schema):
        db = Database(
            schema,
            Predicate.parse("x >= 0 & (y >= 0 | x = 0)"),
            {"x": 1, "y": 2},
        )
        assert db.objects() == (
            frozenset({"x"}),
            frozenset({"x", "y"}),
        )


class TestConsistency:
    def test_latest_state_and_consistency(self, schema):
        db = Database(
            schema, Predicate.parse("x <= y"), {"x": 1, "y": 2}
        )
        assert db.is_consistent()
        db.write("x", 50, "t.0")
        assert not db.is_consistent()  # latest view: x=50 > y=2

    def test_consistent_version_state_survives(self, schema):
        db = Database(
            schema, Predicate.parse("x <= y"), {"x": 1, "y": 2}
        )
        db.write("x", 50, "t.0")
        # The old x=1 version still combines with y=2 consistently.
        assert db.has_consistent_version_state()

    def test_version_state_builder(self, schema):
        db = Database(schema, Predicate.true(), {"x": 1, "y": 2})
        state = db.version_state({"x": 9, "y": 9})
        assert state["x"] == 9

    def test_as_database_state(self, schema):
        db = Database(schema, Predicate.true(), {"x": 1, "y": 2})
        db.write("x", 3, "t.0")
        assert db.as_database_state().versions_of("x") == {1, 3}
