"""Unit tests for the multi-version store."""

from __future__ import annotations

import pytest

from repro.core import Domain, Schema, UniqueState
from repro.errors import SchemaError, UnknownEntityError
from repro.storage import VersionStore, store_from_values


@pytest.fixture
def schema():
    return Schema.of("x", "y", domain=Domain.interval(0, 100))


@pytest.fixture
def store(schema):
    return VersionStore(schema, UniqueState(schema, {"x": 1, "y": 2}))


class TestBasics:
    def test_initial_versions(self, store):
        assert store.initial("x").value == 1
        assert store.initial("x").author is None
        assert store.version_count("x") == 1

    def test_write_appends(self, store):
        version = store.write("x", 5, "t.0")
        assert version.author == "t.0"
        assert store.version_count("x") == 2
        # Old version retained (Section 2.1).
        assert store.values_of("x") == {1, 5}

    def test_latest(self, store):
        store.write("x", 5, "t.0")
        store.write("x", 9, "t.1")
        assert store.latest("x").value == 9

    def test_latest_by(self, store):
        store.write("x", 5, "t.0")
        store.write("x", 9, "t.1")
        store.write("x", 7, "t.0")
        assert store.latest_by("x", "t.0").value == 7
        assert store.latest_by("x", "t.9") is None

    def test_sequence_is_monotone(self, store):
        a = store.write("x", 5, "t.0")
        b = store.write("y", 6, "t.0")
        assert b.sequence > a.sequence

    def test_unknown_entity(self, store):
        with pytest.raises(UnknownEntityError):
            store.versions("q")

    def test_domain_enforced(self, store):
        with pytest.raises(Exception):
            store.write("x", 999, "t.0")

    def test_total_and_iteration(self, store):
        store.write("x", 5, "t.0")
        assert store.total_versions() == 3
        assert len(list(store)) == 3

    def test_store_from_values(self, schema):
        store = store_from_values(schema, {"x": 3, "y": 4})
        assert store.initial("y").value == 4


class TestMaintenance:
    def test_expunge_author(self, store):
        store.write("x", 5, "t.0")
        store.write("y", 6, "t.0")
        store.write("x", 7, "t.1")
        removed = store.expunge_author("t.0")
        assert len(removed) == 2
        assert store.values_of("x") == {1, 7}
        assert store.values_of("y") == {2}

    def test_initial_survives_expunge(self, store):
        store.expunge_author("t.0")
        assert store.version_count("x") == 1

    def test_prune(self, store):
        for value in (5, 6, 7):
            store.write("x", value, "t.0")
        dropped = store.prune("x", keep_last=2)
        assert dropped == 2
        assert store.values_of("x") == {6, 7}

    def test_prune_keeps_at_least_one(self, store):
        with pytest.raises(SchemaError):
            store.prune("x", keep_last=0)


class TestModelBridge:
    def test_latest_unique_state(self, store):
        store.write("x", 5, "t.0")
        state = store.latest_unique_state()
        assert state["x"] == 5 and state["y"] == 2

    def test_as_database_state_matches_value_sets(self, store):
        store.write("x", 5, "t.0")
        store.write("x", 9, "t.1")
        store.write("y", 4, "t.0")
        db_state = store.as_database_state()
        assert db_state.versions_of("x") == store.values_of("x")
        assert db_state.versions_of("y") == store.values_of("y")


class TestExpungePruneInterplay:
    """The sequence-stamp and survival guarantees recovery leans on."""

    def test_stamps_stay_monotone_and_unique_after_expunge(self, store):
        stamps = [store.write("x", v, "t.0").sequence for v in (5, 6)]
        stamps.append(store.write("x", 7, "t.1").sequence)
        store.expunge_author("t.0")
        # New writes never reuse expunged stamps: the watermark does
        # not rewind.
        after = [store.write("x", v, "t.2").sequence for v in (8, 9)]
        everything = stamps + after
        assert len(set(everything)) == len(everything)
        assert after[0] > max(stamps)
        assert after == sorted(after)

    def test_watermark_never_rewinds(self, store):
        store.write("x", 5, "t.0")
        store.write("x", 6, "t.1")
        before = store.sequence_watermark
        store.expunge_author("t.1")
        assert store.sequence_watermark == before
        store.prune("x", keep_last=1)
        assert store.sequence_watermark == before

    def test_prune_after_expunge_keeps_latest_committed(self, store):
        """Expunge the aborted author first; prune then can only see
        committed versions, so the latest committed one survives."""
        committed = store.write("x", 5, "t.0")
        store.write("x", 6, "t.1")
        store.write("x", 7, "t.1")
        store.expunge_author("t.1")  # t.1 aborted
        store.prune("x", keep_last=1)
        assert store.versions("x") == (committed,)

    def test_prune_keeps_newest_surviving_versions(self, store):
        store.write("x", 5, "t.0")
        keep_b = store.write("x", 6, "t.1")
        keep_a = store.write("x", 7, "t.2")
        dropped = store.prune("x", keep_last=2)
        assert dropped == 2  # the initial version and t.0's write
        assert store.versions("x") == (keep_b, keep_a)
        assert store.latest("x") is keep_a

    def test_expunge_then_prune_never_strands_an_entity(self, store):
        store.write("y", 6, "t.0")
        store.expunge_author("t.0")
        store.prune("y", keep_last=1)
        assert store.version_count("y") == 1
        assert store.initial("y").value == 2


class TestSnapshotRoundTrip:
    def test_round_trip_preserves_versions_and_watermark(self, schema, store):
        store.write("x", 5, "t.0")
        store.write("y", 6, "t.1")
        store.expunge_author("t.0")
        image = store.snapshot()
        restored = VersionStore.from_snapshot(schema, image)
        assert list(restored) == list(store)
        assert restored.sequence_watermark == store.sequence_watermark
        # Post-restore writes continue the same stamp sequence.
        assert (
            restored.write("x", 9, "t.2").sequence
            == store.write("x", 9, "t.2").sequence
        )

    def test_snapshot_is_json_serializable(self, store):
        import json

        assert json.loads(json.dumps(store.snapshot())) == store.snapshot()

    def test_duplicate_stamp_rejected(self, schema, store):
        image = store.snapshot()
        image["versions"].append(list(image["versions"][0]))
        with pytest.raises(SchemaError):
            VersionStore.from_snapshot(schema, image)

    def test_stamp_beyond_watermark_rejected(self, schema, store):
        image = store.snapshot()
        image["versions"][0][3] = image["next_sequence"] + 5
        with pytest.raises(SchemaError):
            VersionStore.from_snapshot(schema, image)

    def test_entity_without_versions_rejected(self, schema, store):
        image = store.snapshot()
        image["versions"] = [
            row for row in image["versions"] if row[0] != "y"
        ]
        with pytest.raises(SchemaError):
            VersionStore.from_snapshot(schema, image)
