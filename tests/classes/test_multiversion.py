"""Tests for the multiversion classes MVSR and MVCSR."""

from __future__ import annotations

from repro.classes import (
    is_conflict_serializable,
    is_mv_conflict_serializable,
    is_mv_view_serializable,
    is_view_serializable,
    mv_conflict_graph,
    mv_conflict_serialization_order,
    mv_view_serialization_order,
)
from repro.schedules import Schedule

EXAMPLE_1 = Schedule.parse(
    "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
)


class TestMVConflictGraph:
    def test_only_read_before_write_edges(self):
        # w1(x) before r2(x): a wr pair — NOT an MV conflict.
        schedule = Schedule.parse("w1(x) r2(x)")
        graph = mv_conflict_graph(schedule)
        assert graph["1"] == set() and graph["2"] == set()

    def test_read_before_write_edge(self):
        schedule = Schedule.parse("r1(x) w2(x)")
        assert mv_conflict_graph(schedule)["1"] == {"2"}

    def test_own_write_no_edge(self):
        schedule = Schedule.parse("r1(x) w1(x)")
        graph = mv_conflict_graph(schedule)
        assert graph["1"] == set()


class TestMVCSR:
    def test_example1_is_mvcsr(self):
        assert is_mv_conflict_serializable(EXAMPLE_1)
        assert mv_conflict_serialization_order(EXAMPLE_1) is not None

    def test_region1_not_mvcsr(self):
        schedule = Schedule.parse("r1(x) r2(x) w1(x) w2(x)")
        assert not is_mv_conflict_serializable(schedule)
        assert mv_conflict_serialization_order(schedule) is None

    def test_region7_is_mvcsr(self):
        assert is_mv_conflict_serializable(
            Schedule.parse("r1(x) w2(x) w1(x)")
        )

    def test_csr_implies_mvcsr(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(x)")
        assert is_conflict_serializable(schedule)
        assert is_mv_conflict_serializable(schedule)

    def test_ww_only_schedules_are_always_mvcsr(self):
        # Without reads there are no MV conflicts at all.
        schedule = Schedule.parse("w1(x) w2(x) w1(y) w2(y) w1(x)")
        assert is_mv_conflict_serializable(schedule)


class TestMVSR:
    def test_example1_is_mvsr_not_vsr(self):
        # The paper's Example 1: the version function hands t2 the
        # initial state and t1 reads y from t2.
        assert is_mv_view_serializable(EXAMPLE_1)
        assert not is_view_serializable(EXAMPLE_1)
        assert mv_view_serialization_order(EXAMPLE_1) == ("2", "1")

    def test_region7_final_read_selection(self):
        # Serializable to t1,t2 only because the final read may take
        # t2's version (paper's region-7 note).
        schedule = Schedule.parse("r1(x) w2(x) w1(x)")
        assert is_mv_view_serializable(schedule)
        assert mv_view_serialization_order(schedule) == ("1", "2")

    def test_region1_not_mvsr(self):
        # Both transactions read x before either writes: in any serial
        # order the second must read the first's version, which did not
        # exist at read time.
        schedule = Schedule.parse("r1(x) r2(x) w1(x) w2(x)")
        assert not is_mv_view_serializable(schedule)

    def test_availability_constraint(self):
        # t2 must read t1's x (t1 is its only possible predecessor via
        # y), but t1 writes x after t2's read — no version function
        # can serve a version from the future.
        schedule = Schedule.parse("r2(x) w1(x) r1(y) w2(y)")
        # Serial order (1,2): t2 reads x from t1 -> t1's w(x) at index 1
        # precedes r2(x) at index 0? No -> unavailable.
        # Serial order (2,1): t1 reads y from t2 -> w2(y) at 3 after
        # r1(y) at 2 -> unavailable.
        assert not is_mv_view_serializable(schedule)

    def test_own_earlier_write_is_always_available(self):
        schedule = Schedule.parse("w1(x) r1(x) w2(x) r2(x)")
        assert is_mv_view_serializable(schedule)

    def test_vsr_implies_mvsr(self):
        schedule = Schedule.parse("r1(x) w2(x) w1(x) w3(x)")
        assert is_view_serializable(schedule)
        assert is_mv_view_serializable(schedule)

    def test_mvcsr_implies_mvsr_on_examples(self):
        for text in [
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)",
            "r1(x) w2(x) w1(x)",
            "r1(x) w1(x) r2(x)",
        ]:
            schedule = Schedule.parse(text)
            if is_mv_conflict_serializable(schedule):
                assert is_mv_view_serializable(schedule), text

    def test_pruned_search_matches_brute_force(self):
        from repro.classes.multiversion import (
            brute_force_mv_view_serialization_order,
        )

        for text in [
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)",
            "r1(x) w2(x) w1(x)",
            "r1(x) r2(x) w1(x) w2(x)",
            "r2(x) w1(x) r1(y) w2(y)",
            "w1(x) r1(x) w2(x) r2(x)",
            "r1(x) w2(x) w1(x) w3(x)",
        ]:
            schedule = Schedule.parse(text)
            assert mv_view_serialization_order(
                schedule
            ) == brute_force_mv_view_serialization_order(schedule), text
