"""Differential tests for the staged classifier and pruned searches.

The fast paths are only admissible because they are *invisible*: the
staged ``classify()`` must return the same vector as the exact
all-testers mode, and the pruned SR/MVSR backtracking must return the
same witness as the literal all-permutations sweep.  These tests
enforce both claims exhaustively over every interleaving of the
Figure-2 program families and on random schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import REGION_FAMILIES
from repro.classes import classify
from repro.classes.multiversion import (
    brute_force_mv_view_serialization_order,
    mv_view_serialization_order,
)
from repro.classes.view import (
    brute_force_view_serialization_order,
    view_serialization_order,
)
from repro.obs import RecordingTracer
from repro.schedules import (
    Operation,
    OpType,
    Schedule,
    interleavings,
    random_schedule,
)


def family_interleavings():
    """Every interleaving of every Figure-2 program family."""
    for name, (text, objects) in REGION_FAMILIES.items():
        programs = Schedule.parse(text).programs()
        for schedule in interleavings(programs):
            yield name, schedule, objects


FAMILY_CASES = list(family_interleavings())


class TestFastVsExactClassify:
    def test_agree_on_every_family_interleaving(self):
        """The tentpole invariant: staged == exact, everywhere."""
        for name, schedule, objects in FAMILY_CASES:
            fast = classify(schedule, objects)
            exact = classify(schedule, objects, exact=True)
            assert fast == exact, f"{name}: {schedule}"

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_txns=st.integers(min_value=2, max_value=4),
        ops=st.integers(min_value=1, max_value=3),
        split=st.booleans(),
    )
    def test_agree_on_random_schedules(self, seed, num_txns, ops, split):
        schedule = random_schedule(num_txns, ops, ["x", "y"], seed=seed)
        constraint = [{"x"}, {"y"}] if split else [{"x", "y"}]
        fast = classify(schedule, constraint)
        exact = classify(schedule, constraint, exact=True)
        assert fast == exact, str(schedule)


def _operations() -> st.SearchStrategy[Operation]:
    """One read or write by transaction 1–3 on entity x or y."""
    return st.builds(
        Operation,
        st.sampled_from(["1", "2", "3"]),
        st.sampled_from([OpType.READ, OpType.WRITE]),
        st.sampled_from(["x", "y"]),
    )


def _schedules() -> st.SearchStrategy[Schedule]:
    """Schedules drawn directly from operation-list strategies.

    Unlike ``random_schedule`` (seeded generator, uniform shapes), this
    lets hypothesis *shrink* failures to minimal schedules and explore
    degenerate shapes the generator never emits: single-transaction
    schedules, repeated identical operations, blind writes, entirely
    read-only schedules.
    """
    return st.lists(_operations(), min_size=1, max_size=10).map(Schedule)


class TestFastVsExactClassifyPropertyBased:
    """Satellite: strategy-generated (not seed-based) agreement check."""

    @settings(max_examples=150, deadline=None)
    @given(schedule=_schedules(), split=st.booleans())
    def test_agree_on_generated_schedules(self, schedule, split):
        constraint = [{"x"}, {"y"}] if split else [{"x", "y"}]
        fast = classify(schedule, constraint)
        exact = classify(schedule, constraint, exact=True)
        assert fast == exact, str(schedule)

    @settings(max_examples=60, deadline=None)
    @given(schedule=_schedules())
    def test_witnesses_agree_on_generated_schedules(self, schedule):
        assert view_serialization_order(
            schedule
        ) == brute_force_view_serialization_order(schedule), str(schedule)
        assert mv_view_serialization_order(
            schedule
        ) == brute_force_mv_view_serialization_order(schedule), str(schedule)


class TestPrunedSearchesMatchBruteForce:
    def test_sr_witness_on_every_family_interleaving(self):
        for name, schedule, _ in FAMILY_CASES:
            assert view_serialization_order(
                schedule
            ) == brute_force_view_serialization_order(schedule), (
                f"{name}: {schedule}"
            )

    def test_mvsr_witness_on_every_family_interleaving(self):
        for name, schedule, _ in FAMILY_CASES:
            assert mv_view_serialization_order(
                schedule
            ) == brute_force_mv_view_serialization_order(schedule), (
                f"{name}: {schedule}"
            )

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_txns=st.integers(min_value=2, max_value=4),
    )
    def test_witnesses_on_random_schedules(self, seed, num_txns):
        schedule = random_schedule(num_txns, 3, ["x", "y"], seed=seed)
        assert view_serialization_order(
            schedule
        ) == brute_force_view_serialization_order(schedule)
        assert mv_view_serialization_order(
            schedule
        ) == brute_force_mv_view_serialization_order(schedule)


class TestStagedShortCircuiting:
    """The fast path must actually *skip* the tests the lattice decides."""

    def _check_spans(self, schedule, objects, exact):
        tracer = RecordingTracer()
        classify(schedule, objects, tracer, exact=exact)
        return [
            span.attrs["cls"] for span in tracer.of_kind("class.check")
        ]

    def test_csr_schedule_runs_one_test(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(y)")
        assert self._check_spans(schedule, [{"x"}, {"y"}], False) == [
            "CSR"
        ]

    def test_exact_mode_runs_all_eight(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(y)")
        spans = self._check_spans(schedule, [{"x"}, {"y"}], True)
        assert sorted(spans) == sorted(
            ["CSR", "SR", "MVCSR", "MVSR", "PWCSR", "PWSR", "CPC", "PC"]
        )

    def test_mvcsr_skips_the_mvsr_search(self):
        # Example 1: MVCSR but not CSR, so MVSR is lattice-derived.
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        spans = self._check_spans(schedule, [{"x"}, {"y"}], False)
        assert "MVSR" not in spans
        assert "MVCSR" in spans

    def test_non_mvsr_skips_the_sr_search(self):
        # Region 1: not MVSR, hence ¬SR is derived and never searched.
        schedule = Schedule.parse("r1(x) r2(x) w1(x) w2(x)")
        spans = self._check_spans(schedule, [{"x"}], False)
        assert "MVSR" in spans
        assert "SR" not in spans

    @pytest.mark.parametrize("exact", [False, True])
    def test_span_verdicts_match_membership(self, exact):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        tracer = RecordingTracer()
        membership = classify(
            schedule, [{"x"}, {"y"}], tracer, exact=exact
        )
        vector = membership.as_dict()
        for span in tracer.of_kind("class.check"):
            assert span.attrs["member"] == vector[span.attrs["cls"]]
