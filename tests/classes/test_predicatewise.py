"""Tests for the predicate-wise classes PWSR and PWCSR."""

from __future__ import annotations

import pytest

from repro.classes import (
    conjunct_projections,
    is_predicatewise_conflict_serializable,
    is_predicatewise_serializable,
    is_view_serializable,
    normalize_objects,
)
from repro.core import Predicate
from repro.errors import ScheduleError
from repro.schedules import Schedule

EXAMPLE_2 = Schedule.parse(
    "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
)
SPLIT = [{"x"}, {"y"}]


class TestNormalizeObjects:
    def test_from_predicate(self):
        predicate = Predicate.parse("x > 0 & (y = 1 | z = 2)")
        assert normalize_objects(predicate) == (
            frozenset({"x"}),
            frozenset({"y", "z"}),
        )

    def test_from_raw_sets(self):
        assert normalize_objects([["x"], ["y", "z"]]) == (
            frozenset({"x"}),
            frozenset({"y", "z"}),
        )

    def test_empty_constraint_rejected(self):
        with pytest.raises(ScheduleError):
            normalize_objects([])
        with pytest.raises(ScheduleError):
            normalize_objects(Predicate.true())

    def test_constant_only_conjuncts_dropped(self):
        predicate = Predicate.parse("1 = 1 & x > 0")
        assert normalize_objects(predicate) == (frozenset({"x"}),)


class TestProjections:
    def test_examples_3a_3b(self):
        projections = dict(conjunct_projections(EXAMPLE_2, SPLIT))
        assert str(projections[frozenset({"x"})]) == "r1(x) w1(x) r2(x)"
        assert (
            str(projections[frozenset({"y"})])
            == "r2(y) w2(y) r1(y) w1(y)"
        )

    def test_untouched_conjunct_skipped(self):
        projections = conjunct_projections(
            Schedule.parse("r1(x)"), [{"x"}, {"q"}]
        )
        assert len(projections) == 1


class TestPWSR:
    def test_example2_is_pwsr_not_sr(self):
        # The paper's Example 2: same schedule as Example 1, x and y in
        # different conjuncts; both projections are serial.
        assert is_predicatewise_serializable(EXAMPLE_2, SPLIT)
        assert not is_view_serializable(EXAMPLE_2)

    def test_single_conjunct_collapses_to_sr(self):
        assert not is_predicatewise_serializable(
            EXAMPLE_2, [{"x", "y"}]
        )

    def test_sr_implies_pwsr(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) r2(y) w2(y)")
        assert is_view_serializable(schedule)
        assert is_predicatewise_serializable(schedule, SPLIT)
        assert is_predicatewise_serializable(schedule, [{"x", "y"}])


class TestPWCSR:
    def test_example2_is_pwcsr(self):
        assert is_predicatewise_conflict_serializable(EXAMPLE_2, SPLIT)

    def test_region3(self):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) w2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        assert is_predicatewise_conflict_serializable(schedule, SPLIT)
        assert not is_predicatewise_conflict_serializable(
            schedule, [{"x", "y"}]
        )

    def test_conjunct_orders_may_disagree(self):
        # x serializes t1<t2 while y serializes t2<t1 — fine for PWCSR.
        schedule = Schedule.parse("w1(x) w2(x) w2(y) w1(y)")
        assert is_predicatewise_conflict_serializable(schedule, SPLIT)
        assert not is_predicatewise_conflict_serializable(
            schedule, [{"x", "y"}]
        )

    def test_accepts_predicate_constraint(self):
        constraint = Predicate.parse("x >= 0 & y >= 0")
        assert is_predicatewise_conflict_serializable(
            EXAMPLE_2, constraint
        )
