"""Tests for partial-order serializability (≺SR / ≺CSR)."""

from __future__ import annotations

import pytest

from repro.classes import (
    PartialOrderProgram,
    admissibility_gain,
    admissible_interleavings,
    is_partial_order_conflict_serializable,
    is_partial_order_view_serializable,
    observed_linearizes,
)
from repro.core import PartialOrder
from repro.errors import ScheduleError
from repro.schedules import R, Schedule, W


@pytest.fixture
def diamond_program():
    """r(x) first, then w(y) and w(z) in either order."""
    ops = (R("1", "x"), W("1", "y"), W("1", "z"))
    order = PartialOrder([0, 1, 2], [(0, 1), (0, 2)])
    return PartialOrderProgram("1", ops, order)


class TestPrograms:
    def test_sequential(self):
        program = PartialOrderProgram.sequential(
            "1", [R("1", "x"), W("1", "x")]
        )
        assert program.linearization_count() == 1

    def test_unordered(self):
        program = PartialOrderProgram.unordered(
            "1", [R("1", "x"), R("1", "y"), R("1", "z")]
        )
        assert program.linearization_count() == 6

    def test_diamond_linearizations(self, diamond_program):
        linears = list(diamond_program.linearizations())
        assert len(linears) == 2
        assert all(linear[0] == R("1", "x") for linear in linears)

    def test_admits(self, diamond_program):
        assert diamond_program.admits(
            (R("1", "x"), W("1", "z"), W("1", "y"))
        )
        assert not diamond_program.admits(
            (W("1", "y"), R("1", "x"), W("1", "z"))
        )
        assert not diamond_program.admits((R("1", "x"),))

    def test_validation(self):
        with pytest.raises(ScheduleError):
            PartialOrderProgram("1", (), PartialOrder.empty([]))
        with pytest.raises(ScheduleError):
            PartialOrderProgram(
                "1", (R("2", "x"),), PartialOrder.total([0])
            )
        with pytest.raises(ScheduleError):
            PartialOrderProgram(
                "1", (R("1", "x"),), PartialOrder.total([5])
            )


class TestMembership:
    def test_observed_must_linearize(self, diamond_program):
        programs = {"1": diamond_program}
        good = Schedule([R("1", "x"), W("1", "z"), W("1", "y")])
        bad = Schedule([W("1", "y"), R("1", "x"), W("1", "z")])
        assert observed_linearizes(good, programs)
        assert not observed_linearizes(bad, programs)
        assert is_partial_order_conflict_serializable(good, programs)
        assert not is_partial_order_conflict_serializable(bad, programs)

    def test_unknown_transaction_rejected(self):
        schedule = Schedule.parse("r9(x)")
        assert not observed_linearizes(schedule, {})

    def test_coincides_with_csr_for_sequential_programs(self):
        schedule = Schedule.parse("r1(x) r2(y) w2(x) w1(y)")
        programs = {
            txn: PartialOrderProgram.sequential(txn, ops)
            for txn, ops in schedule.programs().items()
        }
        # Not CSR, hence not ≺CSR either.
        assert not is_partial_order_conflict_serializable(
            schedule, programs
        )
        assert not is_partial_order_view_serializable(schedule, programs)


class TestConcurrencyGain:
    def test_admissible_interleavings_enumeration(self, diamond_program):
        other = PartialOrderProgram.sequential("2", [R("2", "q")])
        programs = {"1": diamond_program, "2": other}
        schedules = list(admissible_interleavings(programs))
        # 2 linearizations × C(4,1)=4 interleavings each.
        assert len(schedules) == 8
        for schedule in schedules:
            assert observed_linearizes(schedule, programs)

    def test_admissibility_gain_counts(self, diamond_program):
        other = PartialOrderProgram.sequential("2", [R("2", "q")])
        gained, base = admissibility_gain(
            {"1": diamond_program, "2": other}
        )
        assert base == 4
        assert gained == 8  # 2 linearizations × 4

    def test_sequential_programs_gain_nothing(self):
        programs = {
            "1": PartialOrderProgram.sequential(
                "1", [R("1", "x"), W("1", "x")]
            )
        }
        gained, base = admissibility_gain(programs)
        assert gained == base == 1
