"""Tests for multilevel serializability (§2.2 / §4.2)."""

from __future__ import annotations

import pytest

from repro.classes import is_conflict_serializable
from repro.classes.multilevel import (
    ancestry_at_level,
    concurrency_gap,
    is_multilevel_conflict_serializable,
    is_multilevel_view_serializable,
    lift_schedule,
)
from repro.core import (
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Schema,
    Spec,
    TxnName,
)
from repro.errors import ScheduleError
from repro.schedules import Schedule


@pytest.fixture
def two_parents_tree():
    """Root with two nested children, each holding two leaves."""
    schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
    root_name = TxnName.root()

    def leaf(parent: TxnName, index: int, entity: str):
        return LeafTransaction(
            parent.child(index),
            schema,
            Spec.trivial(),
            Effect({entity: 1}),
            extra_reads=(entity,),
        )

    t0 = NestedTransaction(
        root_name.child(0),
        schema,
        Spec.trivial(),
        [
            leaf(root_name.child(0), 0, "x"),
            leaf(root_name.child(0), 1, "y"),
        ],
    )
    t1 = NestedTransaction(
        root_name.child(1),
        schema,
        Spec.trivial(),
        [
            leaf(root_name.child(1), 0, "x"),
            leaf(root_name.child(1), 1, "y"),
        ],
    )
    return NestedTransaction(
        root_name, schema, Spec.trivial(), [t0, t1]
    )


class TestAncestry:
    def test_level1_maps_to_top_level(self, two_parents_tree):
        mapping = ancestry_at_level(two_parents_tree, 1)
        assert mapping["t.0.0"] == "t.0"
        assert mapping["t.1.1"] == "t.1"
        assert mapping["t.0"] == "t.0"

    def test_level_validation(self, two_parents_tree):
        with pytest.raises(ScheduleError):
            ancestry_at_level(two_parents_tree, 0)


class TestLifting:
    def test_lift_renames_operations(self):
        schedule = Schedule.parse("rA(x) wB(x)")
        lifted = lift_schedule(schedule, {"A": "P", "B": "Q"})
        assert str(lifted) == "rP(x) wQ(x)"

    def test_missing_mapping_rejected(self):
        with pytest.raises(ScheduleError):
            lift_schedule(Schedule.parse("r1(x)"), {})


class TestTheSection22Gap:
    def test_lifting_can_create_cycles(self, two_parents_tree):
        # The inverse phenomenon: four leaves conflict pairwise in one
        # direction each (acyclic), but merging them into two top-level
        # transactions folds the edges into a cycle — top-level
        # serializability is a *stronger* demand on cross-parent
        # conflicts.
        schedule = Schedule.parse(
            "rt.0.0(x) wt.1.0(x) rt.1.1(y) wt.0.1(y)"
        )
        assert is_conflict_serializable(schedule)  # 4 nodes, 2 edges
        mapping = ancestry_at_level(two_parents_tree, 1)
        leaf_csr, lifted_csr = concurrency_gap(schedule, mapping)
        assert leaf_csr
        assert not lifted_csr  # t.0 -> t.1 on x, t.1 -> t.0 on y

    def test_positive_gap(self, two_parents_tree):
        # Same-parent leaves interleave non-serializably; across
        # parents everything is cleanly ordered.  Leaf level: cycle
        # between t.0.0 and t.0.1?  Leaves of one parent conflict with
        # leaves of the other in one direction only.
        schedule = Schedule.parse(
            "rt.0.0(x) rt.0.1(y) wt.0.1(y) wt.0.0(x) "
            "rt.1.0(x) wt.1.0(x) rt.1.1(y) wt.1.1(y)"
        )
        mapping = ancestry_at_level(two_parents_tree, 1)
        lifted = lift_schedule(schedule, mapping)
        assert is_conflict_serializable(lifted)
        assert is_multilevel_conflict_serializable(schedule, mapping)
        assert is_multilevel_view_serializable(schedule, mapping)

    def test_genuine_leaf_cycle_absorbed_by_lifting(
        self, two_parents_tree
    ):
        # The paper's promise: a schedule non-serializable at the leaf
        # level but serial at the top.  Build a leaf-level conflict
        # cycle entirely between siblings of ONE parent (t.0.0 -> t.0.1
        # on y, t.0.1 -> t.0.0 on... use reversed entity access), then
        # run the other parent strictly after.
        schedule = Schedule.parse(
            "rt.0.0(x) rt.0.1(y) wt.0.1(x) wt.0.0(y) "
            "rt.1.0(x) wt.1.0(x)"
        )
        # Leaf level: t.0.0 reads x before t.0.1 writes x  (00 -> 01)
        #             t.0.1 reads y before t.0.0 writes y  (01 -> 00)
        assert not is_conflict_serializable(schedule)
        mapping = ancestry_at_level(two_parents_tree, 1)
        # Lifted: the cycle collapses inside t.0; t.0 -> t.1 only.
        assert is_multilevel_conflict_serializable(schedule, mapping)
