"""Tests for the DOT exporters."""

from __future__ import annotations

from repro.classes.export import (
    conflict_graph_dot,
    cpc_graphs_dot,
    mv_conflict_graph_dot,
    transaction_tree_dot,
)
from repro.core import (
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Schema,
    Spec,
    TxnName,
)
from repro.schedules import Schedule


class TestScheduleGraphs:
    def test_conflict_graph_edges(self):
        dot = conflict_graph_dot(Schedule.parse("r1(x) w2(x)"))
        assert dot.startswith("digraph")
        assert '"t1" -> "t2";' in dot
        assert dot.endswith("}")

    def test_mv_graph_only_rw_edges(self):
        dot = mv_conflict_graph_dot(Schedule.parse("w1(x) r2(x)"))
        assert '"t1" -> "t2"' not in dot  # wr pairs don't count
        dot = mv_conflict_graph_dot(Schedule.parse("r1(x) w2(x)"))
        assert '"t1" -> "t2";' in dot

    def test_cpc_graphs_one_cluster_per_conjunct(self):
        dot = cpc_graphs_dot(
            Schedule.parse("r1(x) w2(x) r2(y) w1(y)"),
            [{"x"}, {"y"}],
        )
        assert dot.count("subgraph cluster_") == 2
        assert '"c0_t1" -> "c0_t2";' in dot
        assert '"c1_t2" -> "c1_t1";' in dot


class TestTransactionTree:
    def test_tree_with_order_edges(self):
        schema = Schema.of("x", domain=Domain.interval(0, 10))
        root_name = TxnName.root()
        first = LeafTransaction(
            root_name.child(0), schema, Spec.trivial(), Effect({"x": 1})
        )
        second = LeafTransaction(
            root_name.child(1), schema, Spec.trivial(), Effect({})
        )
        root = NestedTransaction.build(
            root_name,
            schema,
            Spec.trivial(),
            [first, second],
            [(first.name, second.name)],
        )
        dot = transaction_tree_dot(root)
        assert '"t" -> "t.0";' in dot
        assert '"t" -> "t.1";' in dot
        assert "style=dashed" in dot  # the P edge
        assert "[shape=ellipse];" in dot  # leaves
