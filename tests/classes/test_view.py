"""Tests for view serializability (SR) and Lemma 3."""

from __future__ import annotations

import pytest

from repro.analysis import (
    execution_from_serial_order,
    leaf_transactions_from_programs,
)
from repro.classes import (
    count_view_serial_orders,
    execution_is_view_serializable,
    is_conflict_serializable,
    is_view_serializable,
    lemma3_view_serialization,
    view_serialization_order,
)
from repro.core import (
    Const,
    Domain,
    Predicate,
    Schema,
    UniqueState,
)
from repro.schedules import Schedule


class TestViewSerializability:
    def test_serial_is_vsr(self):
        assert is_view_serializable(Schedule.parse("r1(x) w1(x) r2(x)"))

    def test_region5_blind_writes(self):
        # VSR but not CSR — the classic blind-write example.
        schedule = Schedule.parse("r1(x) w2(x) w1(x) w3(x)")
        assert is_view_serializable(schedule)
        assert not is_conflict_serializable(schedule)
        assert view_serialization_order(schedule) == ("1", "2", "3")

    def test_example1_not_vsr(self):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        assert not is_view_serializable(schedule)

    def test_csr_implies_vsr(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(y)")
        assert is_conflict_serializable(schedule)
        assert is_view_serializable(schedule)

    def test_count_view_serial_orders(self):
        # Non-conflicting transactions: every order works.
        schedule = Schedule.parse("r1(x) r2(y)")
        assert count_view_serial_orders(schedule) == 2


class TestLemma3:
    @pytest.fixture
    def root_and_initial(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
        programs = Schedule.parse(
            "r1(x) w1(x) r2(x) w2(y)"
        ).programs()
        root = leaf_transactions_from_programs(
            schema,
            programs,
            Predicate.parse("x >= 0 & y >= 0"),
            lambda txn, entity: Const(int(txn)),
        )
        initial = UniqueState(schema, {"x": 10, "y": 20})
        return root, initial

    def test_chained_execution_satisfies_lemma3(self, root_and_initial):
        root, initial = root_and_initial
        order = list(root.child_names)
        execution = execution_from_serial_order(root, initial, order)
        witness = lemma3_view_serialization(execution)
        assert witness is not None
        assert execution_is_view_serializable(execution)

    def test_non_chained_execution_fails_lemma3(self, root_and_initial):
        from repro.core import DatabaseState, Execution, VersionState

        root, initial = root_and_initial
        schema = root.schema
        # Both children read the initial state and R relates them,
        # violating condition 4 (no chaining).
        state = VersionState(schema, initial.as_dict())
        c0, c1 = root.child_names
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [(c0, c1)],
            {c0: state, c1: state},
            state,
        )
        # t.0 writes x:=0 but t.1 still saw x=10: not serial chaining.
        assert lemma3_view_serialization(execution) is None

    def test_isolated_transaction_fails_condition2(self, root_and_initial):
        from repro.core import DatabaseState, Execution, VersionState

        root, initial = root_and_initial
        schema = root.schema
        state = VersionState(schema, initial.as_dict())
        c0, c1 = root.child_names
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [],  # empty R: both children isolated
            {c0: state, c1: state},
            state,
        )
        assert lemma3_view_serialization(execution) is None

    def test_sink_only_transaction_fails_condition2(self):
        """Regression: condition 2 needs a successor AND a predecessor.

        t3 reads t1's result but nothing — no real transaction and not
        ``t_f`` (its result is not the final state) — ever reads t3's.
        A check accepting *either* end of an ``R`` edge would wave the
        execution through; Lemma 3 requires both.
        """
        from repro.core import DatabaseState, Execution, VersionState

        schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
        programs = Schedule.parse(
            "r1(x) w1(x) r2(x) w2(y) r3(x)"
        ).programs()
        root = leaf_transactions_from_programs(
            schema,
            programs,
            Predicate.parse("x >= 0 & y >= 0"),
            lambda txn, entity: Const(int(txn)),
        )
        initial = UniqueState(schema, {"x": 10, "y": 20})
        c1, c2, c3 = root.child_names
        state0 = VersionState(schema, initial.as_dict())
        after1 = VersionState(
            schema, root.child(c1).apply(state0).as_dict()
        )
        after2 = VersionState(
            schema, root.child(c2).apply(after1).as_dict()
        )
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [(c1, c2), (c1, c3)],
            {c1: state0, c2: after1, c3: after1},
            after2,  # final state comes from t2, not the read-only t3
        )
        assert lemma3_view_serialization(execution) is None
