"""Tests for the class lattice, regions, and containment laws."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classes import (
    REGION_LABELS,
    ClassMembership,
    classify,
    containment_violations,
    figure2_region,
)
from repro.schedules import Schedule, random_schedule


class TestClassify:
    def test_serial_schedule_in_every_class(self):
        membership = classify(
            Schedule.parse("r1(x) w1(x) r2(x) w2(y)"), [{"x"}, {"y"}]
        )
        assert all(membership.as_dict().values())
        assert figure2_region(membership) == 9

    def test_default_constraint_is_whole_entity_set(self):
        schedule = Schedule.parse("r1(x) w2(x) w1(x)")
        membership = classify(schedule)
        # With one conjunct, PWCSR == CSR and CPC == MVCSR.
        assert membership.pwcsr == membership.csr
        assert membership.cpc == membership.mvcsr

    def test_member_classes_listing(self):
        membership = classify(Schedule.parse("r1(x) w1(x)"))
        assert "CSR" in membership.member_classes()

    def test_str_rendering(self):
        membership = classify(Schedule.parse("r1(x)"))
        assert "CSR=✓" in str(membership)


class TestRegions:
    def test_all_regions_labelled(self):
        assert set(REGION_LABELS) == set(range(1, 10))

    def test_region_precedence_is_total(self):
        # Any membership vector maps to exactly one region.
        import itertools

        for bits in itertools.product([False, True], repeat=8):
            membership = ClassMembership(*bits)
            region = figure2_region(membership)
            assert 1 <= region <= 9


class TestContainments:
    def test_no_violation_for_consistent_vector(self):
        membership = ClassMembership(
            csr=True,
            vsr=True,
            mvcsr=True,
            mvsr=True,
            pwcsr=True,
            pwsr=True,
            cpc=True,
            pc=True,
        )
        assert containment_violations(membership) == []

    def test_violation_detected(self):
        membership = ClassMembership(
            csr=True,
            vsr=False,  # CSR ⊆ SR violated
            mvcsr=True,
            mvsr=True,
            pwcsr=True,
            pwsr=True,
            cpc=True,
            pc=True,
        )
        assert ("csr", "vsr") in containment_violations(membership)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_txns=st.integers(min_value=2, max_value=3),
        ops=st.integers(min_value=1, max_value=3),
        split=st.booleans(),
    )
    def test_random_schedules_respect_the_lattice(
        self, seed, num_txns, ops, split
    ):
        """Property: the testers never violate a containment law.

        ``exact=True`` matters: the staged fast path satisfies the
        inclusion laws by construction, so only running every tester
        independently can falsify a broken one.
        """
        schedule = random_schedule(
            num_txns, ops, ["x", "y"], seed=seed
        )
        constraint = [{"x"}, {"y"}] if split else [{"x", "y"}]
        membership = classify(schedule, constraint, exact=True)
        assert containment_violations(membership) == [], str(schedule)
