"""The paper's worked examples, verified claim by claim."""

from __future__ import annotations

import pytest

from repro.classes import (
    ALL_EXAMPLES,
    EXAMPLE_1,
    EXAMPLE_2,
    FIGURE2_EXAMPLES,
    verify_all,
)


class TestExampleClaims:
    @pytest.mark.parametrize(
        "example", ALL_EXAMPLES, ids=lambda e: e.name
    )
    def test_claims_hold(self, example):
        assert example.check() == []

    def test_verify_all_clean(self):
        assert all(
            not failures for failures in verify_all().values()
        )


class TestFigure2:
    def test_nine_examples_cover_nine_regions(self):
        regions = sorted(
            example.region() for example in FIGURE2_EXAMPLES
        )
        assert regions == list(range(1, 10))

    @pytest.mark.parametrize(
        "example",
        FIGURE2_EXAMPLES,
        ids=lambda e: f"region{e.claimed_region}",
    )
    def test_each_lands_in_its_claimed_region(self, example):
        assert example.region() == example.claimed_region


class TestNarratives:
    def test_example1_narrative(self):
        # "t1 reads y from t2 and t2 reads x from t1."
        sources = EXAMPLE_1.schedule.read_sources()
        assert sources[("1", "y", 0)] == "2"
        assert sources[("2", "x", 0)] == "1"

    def test_example2_projections_are_serial(self):
        for obj in EXAMPLE_2.objects:
            projection = EXAMPLE_2.schedule.project_entities(obj)
            assert projection is not None and projection.is_serial()

    def test_examples_1_and_2_share_the_schedule(self):
        assert EXAMPLE_1.schedule == EXAMPLE_2.schedule
