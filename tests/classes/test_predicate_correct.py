"""Tests for the combined classes PC and CPC (Section 4.3)."""

from __future__ import annotations

from repro.classes import (
    cpc_graphs,
    is_conflict_predicate_correct,
    is_mv_conflict_serializable,
    is_predicate_correct,
    is_predicatewise_conflict_serializable,
)
from repro.schedules import Schedule

SPLIT = [{"x"}, {"y"}]


class TestCPCGraphs:
    def test_one_graph_per_conjunct(self):
        schedule = Schedule.parse("r1(x) w2(x) r2(y) w1(y)")
        graphs = cpc_graphs(schedule, SPLIT)
        assert set(graphs) == {frozenset({"x"}), frozenset({"y"})}
        assert graphs[frozenset({"x"})]["1"] == {"2"}
        assert graphs[frozenset({"y"})]["2"] == {"1"}

    def test_arcs_only_for_conjunct_items(self):
        schedule = Schedule.parse("r1(x) w2(x)")
        graphs = cpc_graphs(schedule, [{"y"}])
        assert all(
            not targets
            for adjacency in graphs.values()
            for targets in adjacency.values()
        )


class TestCPC:
    def test_region2_in_cpc_only(self):
        schedule = Schedule.parse(
            "r1(y) r2(x) w1(x) w2(x) w2(y) w1(y)"
        )
        assert is_conflict_predicate_correct(schedule, SPLIT)
        assert not is_mv_conflict_serializable(schedule)
        assert not is_predicatewise_conflict_serializable(schedule, SPLIT)

    def test_region1_not_cpc_for_any_conjuncts(self):
        schedule = Schedule.parse("r1(x) r2(x) w1(x) w2(x)")
        assert not is_conflict_predicate_correct(schedule, [{"x"}])
        assert not is_conflict_predicate_correct(
            schedule, [{"x", "y"}]
        )

    def test_single_conjunct_equals_mvcsr(self):
        for text in [
            "r1(x) w2(x) w1(x)",
            "r1(x) r2(x) w1(x) w2(x)",
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)",
        ]:
            schedule = Schedule.parse(text)
            whole = [set(schedule.entities)]
            assert is_conflict_predicate_correct(
                schedule, whole
            ) == is_mv_conflict_serializable(schedule), text

    def test_mvcsr_implies_cpc(self):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        assert is_mv_conflict_serializable(schedule)
        assert is_conflict_predicate_correct(schedule, SPLIT)

    def test_pwcsr_implies_cpc(self):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) w2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        assert is_predicatewise_conflict_serializable(schedule, SPLIT)
        assert is_conflict_predicate_correct(schedule, SPLIT)


class TestPC:
    def test_cpc_implies_pc_on_region2(self):
        schedule = Schedule.parse(
            "r1(y) r2(x) w1(x) w2(x) w2(y) w1(y)"
        )
        assert is_predicate_correct(schedule, SPLIT)

    def test_region1_not_pc(self):
        schedule = Schedule.parse("r1(x) r2(x) w1(x) w2(x)")
        assert not is_predicate_correct(schedule, [{"x"}])

    def test_pc_strictly_larger_than_cpc(self):
        # A per-conjunct analogue of the blind-write example: the x
        # projection is MVSR but its rw-graph has... actually region-5's
        # projection is MVCSR, so use a conjunct-local VSR/non-CSR case
        # with an MV cycle.  Simplest known separator: the projection
        # r1(x) r2(x) w1(x) w2(x) is not MVSR either, so build from the
        # SR−MVCSR region-6 schedule instead.
        schedule = Schedule.parse(
            "r1(x) w2(y) r2(y) w1(y) w2(x) w2(y) r3(x) w3(x) w3(y)"
        )
        whole = [{"x", "y"}]
        assert is_predicate_correct(schedule, whole)  # MVSR ⊇ VSR
        assert not is_conflict_predicate_correct(schedule, whole)
