"""Tests for conflict serializability (CSR)."""

from __future__ import annotations

from repro.classes import (
    conflict_graph,
    conflict_serialization_order,
    is_conflict_serializable,
)
from repro.schedules import Schedule


class TestConflictGraph:
    def test_edges_follow_schedule_order(self):
        schedule = Schedule.parse("r1(x) w2(x) w1(y) r2(y)")
        graph = conflict_graph(schedule)
        assert graph["1"] == {"2"}
        assert graph["2"] == set()

    def test_no_conflicts_no_edges(self):
        schedule = Schedule.parse("r1(x) r2(x) r3(y)")
        graph = conflict_graph(schedule)
        assert all(not targets for targets in graph.values())


class TestMembership:
    def test_serial_is_csr(self):
        assert is_conflict_serializable(
            Schedule.parse("r1(x) w1(x) r2(x) w2(x)")
        )

    def test_classic_cycle(self):
        # t1 reads x before t2 writes it; t2 reads y before t1 writes it.
        schedule = Schedule.parse("r1(x) r2(y) w2(x) w1(y)")
        assert not is_conflict_serializable(schedule)

    def test_region9_example_is_csr(self):
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r1(y) w1(y) r2(y) w2(y)"
        )
        assert is_conflict_serializable(schedule)

    def test_witness_order_topological(self):
        schedule = Schedule.parse("r1(x) w2(x) r2(y) w3(y)")
        order = conflict_serialization_order(schedule)
        assert order is not None
        position = {txn: i for i, txn in enumerate(order)}
        assert position["1"] < position["2"] < position["3"]

    def test_no_witness_when_cyclic(self):
        schedule = Schedule.parse("r1(x) r2(y) w2(x) w1(y)")
        assert conflict_serialization_order(schedule) is None

    def test_conflict_equivalence_to_witness(self):
        schedule = Schedule.parse("r1(x) r2(y) w1(x) w2(y)")
        order = conflict_serialization_order(schedule)
        serial = Schedule.serial(schedule.programs(), list(order))
        assert schedule.conflict_equivalent(serial)
