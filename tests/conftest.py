"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    DatabaseState,
    Domain,
    Predicate,
    Schema,
    Spec,
    UniqueState,
)
from repro.storage import Database


@pytest.fixture
def xy_schema() -> Schema:
    """Two boolean entities x, y."""
    return Schema.of("x", "y")


@pytest.fixture
def xyz_schema() -> Schema:
    """Three integer entities with domain [0, 100]."""
    return Schema.of("x", "y", "z", domain=Domain.interval(0, 100))


@pytest.fixture
def two_state(xy_schema: Schema) -> DatabaseState:
    """Lemma 1's two-state database: all-zeros and all-ones."""
    zero = UniqueState(xy_schema, {"x": 0, "y": 0})
    one = UniqueState(xy_schema, {"x": 1, "y": 1})
    return DatabaseState([zero, one])


@pytest.fixture
def simple_db(xyz_schema: Schema) -> Database:
    """A small consistent database: x, y, z ≥ 0, initial (10, 20, 30)."""
    return Database(
        xyz_schema,
        Predicate.parse("x >= 0 & y >= 0 & z >= 0"),
        {"x": 10, "y": 20, "z": 30},
    )


@pytest.fixture
def trivial_spec() -> Spec:
    return Spec.trivial()
