"""Cross-module integration tests: the paper's narratives end to end."""

from __future__ import annotations


import repro
from repro.classes import classify, figure2_region
from repro.core import (
    Domain,
    Predicate,
    Schema,
    Spec,
    lemma1_instance,
)
from repro.protocol import (
    EventKind,
    Outcome,
    SatSelector,
    TransactionManager,
)
from repro.sat import CNFFormula
from repro.schedules import Schedule
from repro.storage import Database


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestPaperNarrativeSection2:
    """Section 2's informal story, executed."""

    def test_cooperating_designers_nonserializable_but_correct(self):
        # Two designers exchange intermediate results through versions
        # — a schedule pattern equivalent to Example 1, which no
        # serializability-based scheduler admits.
        schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
        db = Database(
            schema,
            Predicate.parse("x >= 0 & y >= 0"),
            {"x": 1, "y": 1},
        )
        tm = TransactionManager(db)
        t1 = tm.define(
            tm.root, Spec(Predicate.parse("x >= 0 & y >= 0"),
                          Predicate.true()), {"x", "y"}
        )
        t2 = tm.define(
            tm.root, Spec(Predicate.parse("x >= 0 & y >= 0"),
                          Predicate.true()), {"y"}
        )
        for txn in (t1, t2):
            assert tm.validate(txn).outcome is Outcome.OK
        # t1: R(x) W(x); t2 then reads the *initial* x (old version!)
        tm.read(t1, "x")
        tm.write(t1, "x", 100)
        assert tm.read(t2, "x").value == 1  # multiversion read
        # t2: W(y); t1 then reads y — its assigned (initial) version.
        tm.read(t2, "y")
        tm.write(t2, "y", 200)
        assert tm.read(t1, "y").value == 1
        tm.write(t1, "y", 50)
        assert tm.commit(t1).outcome is Outcome.OK
        assert tm.commit(t2).outcome is Outcome.OK
        assert tm.commit(tm.root).outcome is Outcome.OK
        assert tm.verify_parent_based(tm.root) == []
        assert tm.verify_correctness(tm.root) == []


class TestSatSelectorIntegration:
    def test_protocol_with_sat_backed_validation(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
        db = Database(
            schema,
            Predicate.parse("x >= 0 & y >= 0"),
            {"x": 3, "y": 4},
        )
        tm = TransactionManager(db, selector=SatSelector())
        writer = tm.define(tm.root, Spec.trivial(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 700)
        # Needs the *old* x (<= 100) with the new y — SAT selection
        # must mix versions.
        picky = tm.define(
            tm.root,
            Spec(Predicate.parse("x <= 100 & y >= 0"), Predicate.true()),
            set(),
        )
        assert tm.validate(picky).outcome is Outcome.OK
        assert tm.assigned_versions(picky)["x"].value == 3


class TestComplexityPipeline:
    def test_sat_to_protocol_relevant_sizes(self):
        # A formula solvable both ways, embedded through every layer.
        formula = CNFFormula.parse("a | b & ~a | c & ~b | ~c")
        instance = lemma1_instance(formula)
        direct = instance.solve_direct()
        via_sat = instance.solve_via_sat()
        assert direct is not None and via_sat is not None
        assert instance.input_constraint.evaluate(direct)
        assert instance.input_constraint.evaluate(via_sat)


class TestScheduleToProtocolConsistency:
    """The protocol's event stream replays as a classifiable schedule."""

    def test_protocol_history_is_cpc(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
        db = Database(
            schema,
            Predicate.parse("x >= 0 & y >= 0"),
            {"x": 1, "y": 1},
        )
        tm = TransactionManager(db)
        t1 = tm.define(
            tm.root,
            Spec(Predicate.parse("x >= 0"), Predicate.true()),
            {"x"},
        )
        t2 = tm.define(
            tm.root,
            Spec(Predicate.parse("y >= 0"), Predicate.true()),
            {"y"},
        )
        tm.validate(t1)
        tm.validate(t2)
        tm.read(t1, "x")
        tm.read(t2, "y")
        tm.write(t2, "y", 9)
        tm.write(t1, "x", 8)
        tm.commit(t1)
        tm.commit(t2)
        # Reconstruct the operation schedule from the event log.
        ops = []
        rename = {t1: "1", t2: "2"}
        for event in tm.log:
            if event.kind is EventKind.READ:
                ops.append(f"r{rename[event.txn]}({event.details['entity']})")
            elif event.kind is EventKind.WRITE_END:
                ops.append(f"w{rename[event.txn]}({event.details['entity']})")
        schedule = Schedule.parse(" ".join(ops))
        membership = classify(schedule, [{"x"}, {"y"}])
        assert membership.cpc
        assert figure2_region(membership) in range(1, 10)


class TestMultilevelNesting:
    def test_three_level_tree_commits_bottom_up(self):
        schema = Schema.of("x", domain=Domain.interval(0, 1000))
        db = Database(schema, Predicate.parse("x >= 0"), {"x": 1})
        tm = TransactionManager(db)
        top = tm.define(tm.root, Spec.trivial(), {"x"})
        tm.validate(top)
        mid = tm.define(top, Spec.trivial(), {"x"})
        tm.validate(mid)
        leaf = tm.define(mid, Spec.trivial(), {"x"})
        tm.validate(leaf)
        tm.write(leaf, "x", 42)
        # Commit must proceed leaf -> mid -> top.
        assert tm.commit(top).outcome is Outcome.FAILED
        assert tm.commit(mid).outcome is Outcome.FAILED
        assert tm.commit(leaf).outcome is Outcome.OK
        assert tm.commit(mid).outcome is Outcome.OK
        assert tm.commit(top).outcome is Outcome.OK
        # The write surfaced through both releases.
        assert tm.view(tm.root)["x"] == 42

    def test_deep_names_follow_figure1(self):
        schema = Schema.of("x", domain=Domain.interval(0, 1000))
        db = Database(schema, Predicate.parse("x >= 0"), {"x": 1})
        tm = TransactionManager(db)
        top = tm.define(tm.root, Spec.trivial(), {"x"})
        tm.validate(top)
        mid = tm.define(top, Spec.trivial(), {"x"})
        assert top == "t.0"
        assert mid == "t.0.0"
