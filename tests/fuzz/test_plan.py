"""Plan generation: deterministic, serializable, overridable."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzPlan, generate_plan


def test_same_seed_same_plan():
    a = generate_plan(42)
    b = generate_plan(42)
    assert a.canonical_json() == b.canonical_json()
    assert a.digest() == b.digest()


def test_seeds_differ():
    digests = {generate_plan(seed).digest() for seed in range(1, 11)}
    assert len(digests) > 1


def test_round_trip_is_lossless():
    plan = generate_plan(7)
    clone = FuzzPlan.from_dict(plan.to_dict())
    assert clone.canonical_json() == plan.canonical_json()
    assert clone.digest() == plan.digest()


def test_unknown_version_rejected():
    data = generate_plan(1).to_dict()
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        FuzzPlan.from_dict(data)


def test_overrides_pin_dimensions():
    plan = generate_plan(
        5, clients=2, txns_per_client=1, durable=False, strict=True
    )
    assert len(plan.clients) == 2
    assert all(len(c.txns) == 1 for c in plan.clients)
    assert not plan.durable
    assert plan.strict
    assert plan.crash_point is None  # crash implies durable


def test_crash_override_requires_durable():
    plan = generate_plan(5, durable=True, crash=True)
    assert plan.crash_point is not None
    assert plan.crash_at_hit >= 1


def test_op_count_counts_requests_not_sleeps():
    plan = generate_plan(3)
    expected = 0
    for client in plan.clients:
        for txn in client.txns:
            expected += 2 + sum(
                1 for op in txn.ops if op[0] != "sleep"
            )
    assert plan.op_count == expected
    assert plan.op_count > 0


def test_replication_fields_round_trip():
    plan = generate_plan(9, replicas=2)
    assert plan.replicas == 2
    assert plan.sync_replicas == 1
    clone = FuzzPlan.from_dict(plan.to_dict())
    assert clone.replicas == plan.replicas
    assert clone.sync_replicas == plan.sync_replicas
    assert clone.partitions == plan.partitions
    assert clone.canonical_json() == plan.canonical_json()


def test_pre_replication_plan_dicts_still_load():
    # Reproducer files written before replication existed have no
    # replicas/sync_replicas/partitions keys; they must load with the
    # no-replication defaults.
    data = generate_plan(6).to_dict()
    for key in ("replicas", "sync_replicas", "partitions"):
        data.pop(key)
    plan = FuzzPlan.from_dict(data)
    assert plan.replicas == 0
    assert plan.sync_replicas == 0
    assert plan.partitions == []


def test_replication_requires_durable():
    plan = generate_plan(9, durable=False, replicas=2)
    assert plan.replicas == 0
    for seed in range(60):
        plan = generate_plan(seed)
        if plan.replicas:
            assert plan.durable


def test_sharding_fields_round_trip_and_default():
    plan = generate_plan(4, shards=4)
    assert plan.shards == 4
    clone = FuzzPlan.from_dict(plan.to_dict())
    assert clone.shards == 4
    assert clone.canonical_json() == plan.canonical_json()
    # Reproducer files written before sharding existed have no
    # "shards" key; they must load as single-shard plans.
    data = generate_plan(6).to_dict()
    data.pop("shards")
    assert FuzzPlan.from_dict(data).shards == 1


def test_shard_roll_is_after_every_other_draw():
    # The shard dimension sits at the very end of the seed stream:
    # pinning it must not disturb any earlier draw (for seeds that
    # drew no replication, which a shard pin would suppress).
    checked = 0
    for seed in range(40):
        free = generate_plan(seed)
        if free.replicas:
            continue
        checked += 1
        pinned = generate_plan(seed, shards=4).to_dict()
        reference = free.to_dict()
        pinned.pop("shards")
        reference.pop("shards")
        assert pinned == reference
    assert checked > 10


def test_sharding_and_replication_are_exclusive():
    with pytest.raises(ValueError, match="replicas"):
        generate_plan(9, shards=2, replicas=1)
    # Seed-drawn replication forces single-shard...
    for seed in range(120):
        plan = generate_plan(seed)
        if plan.replicas:
            assert plan.shards == 1
    # ...and an explicit shard pin suppresses seed-drawn replication.
    pinned = generate_plan(9, shards=4)
    assert pinned.shards == 4
    assert pinned.replicas == 0
    assert pinned.sync_replicas == 0
    assert pinned.partitions == []


def test_seed_stream_reaches_shard_dimensions():
    plans = [generate_plan(seed) for seed in range(120)]
    assert any(p.shards == 2 for p in plans)
    assert any(p.shards == 4 for p in plans)
    assert any(
        p.shards > 1 and p.durable and p.crash_point for p in plans
    )


def test_seed_stream_reaches_replication_dimensions():
    # The seed alone must exercise followers, partitions, and the
    # partition+crash combination somewhere in a modest seed range.
    plans = [generate_plan(seed) for seed in range(120)]
    assert any(p.replicas for p in plans)
    assert any(p.partitions for p in plans)
    assert any(p.replicas and p.crash_point for p in plans)
    for plan in plans:
        for window in plan.partitions:
            index, start, end = window
            assert 0 <= index < plan.replicas
            assert 0.0 <= start < end
