"""Plan generation: deterministic, serializable, overridable."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzPlan, generate_plan


def test_same_seed_same_plan():
    a = generate_plan(42)
    b = generate_plan(42)
    assert a.canonical_json() == b.canonical_json()
    assert a.digest() == b.digest()


def test_seeds_differ():
    digests = {generate_plan(seed).digest() for seed in range(1, 11)}
    assert len(digests) > 1


def test_round_trip_is_lossless():
    plan = generate_plan(7)
    clone = FuzzPlan.from_dict(plan.to_dict())
    assert clone.canonical_json() == plan.canonical_json()
    assert clone.digest() == plan.digest()


def test_unknown_version_rejected():
    data = generate_plan(1).to_dict()
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        FuzzPlan.from_dict(data)


def test_overrides_pin_dimensions():
    plan = generate_plan(
        5, clients=2, txns_per_client=1, durable=False, strict=True
    )
    assert len(plan.clients) == 2
    assert all(len(c.txns) == 1 for c in plan.clients)
    assert not plan.durable
    assert plan.strict
    assert plan.crash_point is None  # crash implies durable


def test_crash_override_requires_durable():
    plan = generate_plan(5, durable=True, crash=True)
    assert plan.crash_point is not None
    assert plan.crash_at_hit >= 1


def test_op_count_counts_requests_not_sleeps():
    plan = generate_plan(3)
    expected = 0
    for client in plan.clients:
        for txn in client.txns:
            expected += 2 + sum(
                1 for op in txn.ops if op[0] != "sleep"
            )
    assert plan.op_count == expected
    assert plan.op_count > 0
