"""Oracles must actually fire: feed them synthetic bad evidence."""

from __future__ import annotations

from types import SimpleNamespace

from repro.durability.records import OP_WRITE
from repro.fuzz import generate_plan, run_oracles
from repro.fuzz.runner import Evidence


def _verdict(results, name):
    for result in results:
        if result.name == name:
            return result
    raise AssertionError(f"oracle {name} never ran")


def _evidence(**kw) -> Evidence:
    base = dict(
        plan=generate_plan(1, durable=False),
        events=[],
        names={},
        acked_committed=[],
        requests={},
    )
    base.update(kw)
    return Evidence(**base)


def _recovery(committed, verified=True, violations=()):
    return SimpleNamespace(
        committed=list(committed),
        verified=verified,
        violations=list(violations),
    )


def _wal_write(lsn, txn, entity):
    return SimpleNamespace(
        lsn=lsn, op=OP_WRITE, txn=txn, data={"entity": entity}
    )


def test_double_terminal_reply_fails():
    reply = {
        "kind": "reply",
        "client": 1,
        "rid": 1,
        "ok": True,
        "code": None,
    }
    evidence = _evidence(events=[dict(reply), dict(reply)])
    verdict = _verdict(run_oracles(evidence), "replies_complete")
    assert not verdict.ok
    assert "2 terminal replies" in verdict.details[0]


def test_lost_response_fails_outside_crash():
    entry = {
        "client": 1,
        "rid": 1,
        "op": "commit",
        "txn": "t.1",
        "entity": None,
        "status": "pending",
        "outcome": None,
    }
    evidence = _evidence(requests={(1, 1): entry})
    assert not _verdict(run_oracles(evidence), "replies_complete").ok
    # The same pending request is tolerated when the run crashed.
    crashed = _evidence(requests={(1, 1): dict(entry)}, crashed=True)
    assert _verdict(run_oracles(crashed), "replies_complete").ok


def test_unacked_wal_write_fails_multiplicity():
    evidence = _evidence(
        records=[_wal_write(1, "t.1", "x")],
        recovery=_recovery([]),
    )
    verdict = _verdict(run_oracles(evidence), "write_multiplicity")
    assert not verdict.ok
    assert "1 WAL writes for 0 acked" in verdict.details[0]


def test_duplicated_wal_write_fails_multiplicity():
    entry = {
        "client": 1,
        "rid": 3,
        "op": "write",
        "txn": "t.1",
        "entity": "x",
        "status": "ok",
        "outcome": None,
    }
    evidence = _evidence(
        requests={(1, 3): entry},
        records=[_wal_write(1, "t.1", "x"), _wal_write(2, "t.1", "x")],
        recovery=_recovery([]),
    )
    assert not _verdict(run_oracles(evidence), "write_multiplicity").ok


def test_acked_commit_missing_from_recovery_fails_prefix():
    evidence = _evidence(
        acked_committed=["t.1"],
        recovery=_recovery(["t.2"]),
    )
    verdict = _verdict(run_oracles(evidence), "committed_prefix")
    assert not verdict.ok
    assert "t.1" in verdict.details[0]
    # A phantom recovered commit is also a violation on a clean run.
    assert any("t.2" in detail for detail in verdict.details)


def test_acked_order_must_be_subsequence():
    evidence = _evidence(
        acked_committed=["t.2", "t.1"],
        recovery=_recovery(["t.1", "t.2"]),
    )
    assert not _verdict(run_oracles(evidence), "committed_prefix").ok


def test_recovery_violations_fail():
    evidence = _evidence(
        recovery=_recovery([], verified=False, violations=["boom"]),
    )
    # The synthetic plan is in-memory; force the durable branch.
    evidence.plan.durable = True
    verdict = _verdict(run_oracles(evidence), "recovery_verified")
    assert not verdict.ok
    assert verdict.details == ["boom"]


def test_clean_synthetic_evidence_passes():
    results = run_oracles(_evidence())
    assert all(result.ok for result in results)


def _replica(index, applied, committed, verified=True, error=None):
    return {
        "replica": index,
        "applied_lsn": applied,
        "committed": list(committed),
        "verified": verified,
        "violations": [],
        "error": error,
    }


def _sample(replica, lsn, view, t=0.0):
    return {"t": t, "replica": replica, "applied_lsn": lsn, "view": view}


def test_acked_commit_missing_from_winner_fails_promotion():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 2, 1
    evidence = _evidence(
        plan=plan,
        acked_committed=["t.1", "t.2"],
        replicas=[
            _replica(0, 5, ["t.1"]),
            _replica(1, 9, ["t.1"]),  # winner, but t.2 is gone
        ],
    )
    verdict = _verdict(
        run_oracles(evidence), "acked_commits_survive_promotion"
    )
    assert not verdict.ok
    assert "t.2" in verdict.details[0]


def test_unverified_winner_fails_promotion():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 1, 1
    evidence = _evidence(
        plan=plan,
        replicas=[_replica(0, 9, [], verified=False)],
    )
    verdict = _verdict(
        run_oracles(evidence), "acked_commits_survive_promotion"
    )
    assert not verdict.ok
    assert "recover --verify" in verdict.details[0]


def test_promotion_oracle_skips_async_and_indeterminate():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 1, 0  # async shipping
    evidence = _evidence(plan=plan, replicas=[_replica(0, 3, [])])
    verdict = _verdict(
        run_oracles(evidence), "acked_commits_survive_promotion"
    )
    assert verdict.ok and verdict.skipped
    # Indeterminate commits carry no survival promise.
    plan.sync_replicas = 1
    evidence = _evidence(
        plan=plan,
        indeterminate_committed=["t.9"],
        replicas=[_replica(0, 3, [])],
    )
    verdict = _verdict(
        run_oracles(evidence), "acked_commits_survive_promotion"
    )
    assert verdict.ok


def test_backwards_applied_lsn_fails_prefix_consistency():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 1, 1
    evidence = _evidence(
        plan=plan,
        replicas=[_replica(0, 4, [])],
        follower_samples=[
            _sample(0, 4, {"x": 1}),
            _sample(0, 2, {"x": 1}, t=1.0),
        ],
    )
    verdict = _verdict(run_oracles(evidence), "prefix_consistency")
    assert not verdict.ok
    assert "backwards" in verdict.details[0]


def test_diverging_views_at_same_lsn_fail_prefix_consistency():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 2, 1
    evidence = _evidence(
        plan=plan,
        replicas=[_replica(0, 4, []), _replica(1, 4, [])],
        follower_samples=[
            _sample(0, 4, {"x": 1}),
            _sample(1, 4, {"x": 2}, t=1.0),
        ],
    )
    verdict = _verdict(run_oracles(evidence), "prefix_consistency")
    assert not verdict.ok
    assert "disagree" in verdict.details[0]


def test_non_nesting_commit_orders_fail_prefix_consistency():
    plan = generate_plan(1, durable=True)
    plan.replicas, plan.sync_replicas = 2, 1
    evidence = _evidence(
        plan=plan,
        replicas=[
            _replica(0, 4, ["t.1"]),
            _replica(1, 9, ["t.2", "t.1"]),
        ],
    )
    verdict = _verdict(run_oracles(evidence), "prefix_consistency")
    assert not verdict.ok
    assert "prefix" in verdict.details[0]


def test_indeterminate_commit_accepted_without_ack():
    # committed_prefix must not flag a recovered commit whose reply
    # was "durable locally, ack unknown".
    plan = generate_plan(1, durable=True)
    evidence = _evidence(
        plan=plan,
        acked_committed=["t.1"],
        indeterminate_committed=["t.2"],
        recovery=_recovery(["t.1", "t.2"]),
    )
    verdict = _verdict(run_oracles(evidence), "committed_prefix")
    assert verdict.ok, verdict.details


def _sharded_plan(**kw):
    kw.setdefault("durable", True)
    kw.setdefault("crash", False)
    return generate_plan(1, shards=4, **kw)


def _shard_recovery(shards, resolutions=()):
    return SimpleNamespace(
        shards={
            index: _recovery(committed)
            for index, committed in shards.items()
        },
        resolutions=list(resolutions),
        verified=True,
    )


def test_split_brain_fails_cross_shard_atomicity():
    # gid sh1.2 spans shards 1 and 3; only shard 1 committed it.
    evidence = _evidence(
        plan=_sharded_plan(),
        acked_committed=["sh1.2"],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery({1: ["sh1.2"], 3: []}),
    )
    verdict = _verdict(run_oracles(evidence), "cross_shard_atomicity")
    assert not verdict.ok
    assert "split-brain" in verdict.details[0]


def test_acked_cross_commit_lost_everywhere_fails_atomicity():
    evidence = _evidence(
        plan=_sharded_plan(),
        acked_committed=["sh1.2"],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery({1: [], 3: []}),
    )
    verdict = _verdict(run_oracles(evidence), "cross_shard_atomicity")
    assert not verdict.ok
    assert "not committed" in verdict.details[0]


def test_unacked_cross_commit_fails_atomicity_on_clean_run():
    evidence = _evidence(
        plan=_sharded_plan(),
        acked_committed=[],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery({1: ["sh1.2"], 3: ["sh3.5"]}),
    )
    verdict = _verdict(run_oracles(evidence), "cross_shard_atomicity")
    assert not verdict.ok
    assert "without an acknowledged commit" in verdict.details[0]
    # The same fates are legitimate when the commit was in flight at
    # a crash.
    crashed = _evidence(
        plan=_sharded_plan(),
        acked_committed=[],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery({1: ["sh1.2"], 3: ["sh3.5"]}),
        crashed=True,
        requests={
            (1, 9): {
                "client": 1,
                "rid": 9,
                "op": "commit",
                "txn": "sh1.2",
                "entity": None,
                "status": "pending",
                "outcome": None,
            }
        },
    )
    assert _verdict(run_oracles(crashed), "cross_shard_atomicity").ok


def test_sharded_prefix_is_membership_only_for_cross_branches():
    # Shard 3's recovered order has the cross-shard branch sh3.5
    # *after* the later single-shard commit sh3.9 — legitimate,
    # because 2PC fan-out order is schedule-dependent.  The
    # single-shard commit still has to respect ack order.
    evidence = _evidence(
        plan=_sharded_plan(),
        acked_committed=["sh1.2", "sh3.9"],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery(
            {1: ["sh1.2"], 3: ["sh3.9", "sh3.5"]}
        ),
    )
    assert _verdict(run_oracles(evidence), "committed_prefix").ok
    # But a cross-shard branch missing entirely still fails.
    missing = _evidence(
        plan=_sharded_plan(),
        acked_committed=["sh1.2", "sh3.9"],
        branch_map={"sh1.2": "sh1.2", "sh3.5": "sh1.2"},
        shard_recovery=_shard_recovery({1: ["sh1.2"], 3: ["sh3.9"]}),
    )
    verdict = _verdict(run_oracles(missing), "committed_prefix")
    assert not verdict.ok
    assert "sh3.5" in verdict.details[0]
