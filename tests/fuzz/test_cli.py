"""The ``repro fuzz`` command: exit codes and reproducer replay."""

from __future__ import annotations

import json

from repro.cli import main
from repro.fuzz import generate_plan, save_reproducer


def test_fuzz_clean_corpus_exits_zero(tmp_path, capsys):
    report = tmp_path / "corpus.json"
    code = main(
        [
            "fuzz",
            "--seed", "1",
            "--runs", "5",
            "--out", "",
            "--report", str(report),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "5/5 passed" in out
    payload = json.loads(report.read_text())
    assert payload["exit_code"] == 0
    assert payload["passed"] == 5


def test_fuzz_replay_missing_file_is_harness_error(capsys):
    code = main(["fuzz", "replay", "/nonexistent/repro.json"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_fuzz_replay_unreproduced_failure_exits_one(tmp_path, capsys):
    # A reproducer claiming a failure the fixed server does not have.
    path = tmp_path / "repro.json"
    save_reproducer(path, generate_plan(1), ("committed_prefix",))
    code = main(["fuzz", "replay", str(path)])
    assert code == 1
    assert "did NOT reproduce" in capsys.readouterr().out


def test_fuzz_replay_clean_expectation_exits_zero(tmp_path, capsys):
    # No expected failure recorded: replay succeeds iff the run is ok.
    path = tmp_path / "repro.json"
    save_reproducer(path, generate_plan(1), ())
    code = main(["fuzz", "replay", str(path)])
    assert code == 0
