"""The virtual-clock event loop: no wall time, stalls are detected."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.fuzz import FuzzDeadlockError, run_virtual
from repro.sim import VirtualClock


def test_sleep_advances_virtual_clock_not_wall_clock():
    clock = VirtualClock()

    async def body():
        await asyncio.sleep(500.0)
        return asyncio.get_running_loop().time()

    wall_start = time.monotonic()
    loop_time = run_virtual(body(), clock=clock)
    wall_elapsed = time.monotonic() - wall_start
    assert clock.now >= 500.0
    assert loop_time == clock.now
    assert wall_elapsed < 5.0  # 500 virtual seconds, instant wall time


def test_concurrent_sleeps_interleave_deterministically():
    order: list[str] = []

    async def sleeper(name: str, delay: float):
        await asyncio.sleep(delay)
        order.append(name)

    async def body():
        await asyncio.gather(
            sleeper("slow", 3.0),
            sleeper("fast", 1.0),
            sleeper("mid", 2.0),
        )

    run_virtual(body())
    assert order == ["fast", "mid", "slow"]


def test_stalled_loop_raises_deadlock_error():
    async def body():
        await asyncio.get_running_loop().create_future()  # never set

    with pytest.raises(FuzzDeadlockError):
        run_virtual(body())


def test_negative_advance_impossible():
    clock = VirtualClock()
    clock.advance(1.5)
    assert clock.now == 1.5
    assert clock() == 1.5
    with pytest.raises(Exception):
        clock.advance(-0.1)
