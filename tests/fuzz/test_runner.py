"""End-to-end runs: bit-for-bit determinism and a clean mini-corpus."""

from __future__ import annotations

import json

from repro.fuzz import (
    execute_plan,
    generate_plan,
    run_corpus,
    run_seed,
)


def _report_bytes(plan):
    return json.dumps(execute_plan(plan).report, sort_keys=True)


def test_same_plan_same_report_bytes():
    # Seeds picked to cover in-memory, durable, and strict variants.
    for seed in (1, 2, 3):
        plan = generate_plan(seed)
        assert _report_bytes(plan) == _report_bytes(plan), (
            f"seed {seed} is not deterministic"
        )


def test_crash_run_is_deterministic_and_collects_recovery():
    # Scan a few seeds for one whose armed crash point actually fires;
    # the sweep itself is deterministic, so the found seed is stable.
    crashed_seed = None
    for seed in range(1, 41):
        result = run_seed(seed, crash=True, durable=True)
        if result.report["crashed"]:
            crashed_seed = seed
            break
    assert crashed_seed is not None, "no seed in 1..40 fired its crash"
    first = run_seed(crashed_seed, crash=True, durable=True)
    second = run_seed(crashed_seed, crash=True, durable=True)
    assert json.dumps(first.report, sort_keys=True) == json.dumps(
        second.report, sort_keys=True
    )
    assert first.report["crash"]["point"]
    assert first.evidence.recovery is not None
    assert first.ok, f"crash-run oracles failed: {first.failed_oracles}"


def test_mini_corpus_passes_all_oracles():
    result = run_corpus(1, 25, out_dir=None, shrink=False)
    assert result.exit_code == 0, result.report()
    assert result.passed == 25
    assert not result.failures and not result.harness_errors


def test_report_shape():
    result = run_seed(4)
    report = result.report
    for key in (
        "fuzz_version",
        "seed",
        "plan_digest",
        "config",
        "counts",
        "oracles",
        "schedule",
        "virtual_duration",
        "ok",
    ):
        assert key in report
    assert report["seed"] == 4
    assert report["counts"]["requests"] > 0
    # Virtual timestamps only: the transcript must be monotone in t.
    times = [event["t"] for event in report["schedule"]]
    assert times == sorted(times)


def _first_seed(predicate, stop=120):
    for seed in range(stop):
        plan = generate_plan(seed)
        if predicate(plan):
            return seed, plan
    raise AssertionError("no matching seed in range")


class TestReplicatedRuns:
    def test_replicated_run_is_deterministic_and_clean(self):
        _seed, plan = _first_seed(
            lambda p: p.replicas and not p.crash_point
        )
        first = execute_plan(plan)
        second = execute_plan(plan)
        assert json.dumps(first.report, sort_keys=True) == json.dumps(
            second.report, sort_keys=True
        )
        assert first.ok, first.failed_oracles
        entries = first.evidence.replicas
        assert entries and len(entries) == plan.replicas
        for entry in entries:
            assert entry["error"] is None
            assert entry["verified"] is True

    def test_clean_replicated_run_converges(self):
        # After the partitions heal and the final catch-up, every
        # replica has applied the full durable history.
        _seed, plan = _first_seed(
            lambda p: p.replicas and not p.crash_point
        )
        result = execute_plan(plan)
        applied = {
            entry["applied_lsn"] for entry in result.evidence.replicas
        }
        assert len(applied) == 1
        assert result.evidence.follower_samples is not None

    def test_crashed_replicated_run_passes_promotion_oracle(self):
        _seed, plan = _first_seed(
            lambda p: p.replicas and p.crash_point
        )
        result = execute_plan(plan)
        assert result.ok, result.failed_oracles
        verdicts = result.report["oracles"]
        assert "acked_commits_survive_promotion" in verdicts
        assert "prefix_consistency" in verdicts

    def test_partition_can_produce_indeterminate_commits(self):
        # Somewhere in the seed stream a partition overlaps a sync
        # commit long enough to blow its request deadline; the client
        # is told "indeterminate" and the oracles accept the commit
        # in the recovered history without an ack.
        for seed in range(200):
            plan = generate_plan(seed)
            if not plan.replicas:
                continue
            result = execute_plan(plan)
            assert result.ok, (seed, result.failed_oracles)
            if result.evidence.indeterminate_committed:
                report = result.report
                assert report["counts"]["commits_indeterminate"] > 0
                return
        raise AssertionError(
            "no seed in 0..199 produced an indeterminate commit"
        )


class TestShardedRuns:
    def test_sharded_run_is_deterministic(self):
        plan = generate_plan(2, shards=4, durable=True, crash=False)
        assert plan.shards == 4
        assert _report_bytes(plan) == _report_bytes(plan)

    def test_clean_cross_shard_run_passes_all_oracles(self):
        # Seed 2 at 4 shards commits transactions spanning shards 1
        # and 3 (the fuzz entities hash x->3, y->1, z->3).
        result = execute_plan(
            generate_plan(2, shards=4, durable=True, crash=False)
        )
        assert result.ok, result.failed_oracles
        report = result.report
        assert report["config"]["shards"] == 4
        assert report["acked_committed"]
        assert set(report["shard_recovered_committed"]) == {
            "0", "1", "2", "3",
        }
        verdict = report["oracles"]["cross_shard_atomicity"]
        assert verdict["ok"]
        assert not any(
            "no cross-shard" in detail for detail in verdict["details"]
        ), "expected the atomicity oracle to engage, not skip"
        # Cross-shard branch names were captured for the oracles.
        assert result.evidence.branch_map

    def test_crashed_sharded_run_recovers_and_verifies(self):
        result = execute_plan(
            generate_plan(1, shards=4, durable=True, crash=True)
        )
        report = result.report
        assert report["crashed"]
        assert result.ok, result.failed_oracles
        assert result.evidence.shard_recovery is not None
        assert result.evidence.shard_recovery.verified

    def test_crash_mid_2pc_resolves_in_doubt_branches(self):
        # Seed 14's crash fires between PREPARE and the coordinator's
        # decision record: recovery must resolve every prepared branch
        # by presumed abort, and the atomicity oracle must agree the
        # outcome is all-or-nothing.
        result = execute_plan(
            generate_plan(14, shards=4, durable=True, crash=True)
        )
        report = result.report
        assert report["crashed"]
        assert result.ok, result.failed_oracles
        resolutions = report["shard_resolutions"]
        assert resolutions, "expected in-doubt 2PC branches"
        gids = {entry["gid"] for entry in resolutions}
        for gid in gids:
            decisions = {
                entry["decision"]
                for entry in resolutions
                if entry["gid"] == gid
            }
            assert len(decisions) == 1, (
                f"split decision for {gid}: {resolutions}"
            )

    def test_in_memory_sharded_run_verifies_live_managers(self):
        result = execute_plan(generate_plan(1, shards=4, durable=False))
        assert result.ok, result.failed_oracles
        assert result.evidence.shard_managers is not None
        assert len(result.evidence.shard_managers) == 4
        assert result.report["oracles"]["protocol_verify"]["ok"]

    def test_mini_sharded_corpus_is_clean(self):
        result = run_corpus(
            1,
            12,
            out_dir=None,
            shrink=False,
            plan_overrides={"shards": 4},
        )
        assert result.exit_code == 0, result.report()
        assert result.passed == 12
