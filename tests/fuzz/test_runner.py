"""End-to-end runs: bit-for-bit determinism and a clean mini-corpus."""

from __future__ import annotations

import json

from repro.fuzz import (
    execute_plan,
    generate_plan,
    run_corpus,
    run_seed,
)


def _report_bytes(plan):
    return json.dumps(execute_plan(plan).report, sort_keys=True)


def test_same_plan_same_report_bytes():
    # Seeds picked to cover in-memory, durable, and strict variants.
    for seed in (1, 2, 3):
        plan = generate_plan(seed)
        assert _report_bytes(plan) == _report_bytes(plan), (
            f"seed {seed} is not deterministic"
        )


def test_crash_run_is_deterministic_and_collects_recovery():
    # Scan a few seeds for one whose armed crash point actually fires;
    # the sweep itself is deterministic, so the found seed is stable.
    crashed_seed = None
    for seed in range(1, 41):
        result = run_seed(seed, crash=True, durable=True)
        if result.report["crashed"]:
            crashed_seed = seed
            break
    assert crashed_seed is not None, "no seed in 1..40 fired its crash"
    first = run_seed(crashed_seed, crash=True, durable=True)
    second = run_seed(crashed_seed, crash=True, durable=True)
    assert json.dumps(first.report, sort_keys=True) == json.dumps(
        second.report, sort_keys=True
    )
    assert first.report["crash"]["point"]
    assert first.evidence.recovery is not None
    assert first.ok, f"crash-run oracles failed: {first.failed_oracles}"


def test_mini_corpus_passes_all_oracles():
    result = run_corpus(1, 25, out_dir=None, shrink=False)
    assert result.exit_code == 0, result.report()
    assert result.passed == 25
    assert not result.failures and not result.harness_errors


def test_report_shape():
    result = run_seed(4)
    report = result.report
    for key in (
        "fuzz_version",
        "seed",
        "plan_digest",
        "config",
        "counts",
        "oracles",
        "schedule",
        "virtual_duration",
        "ok",
    ):
        assert key in report
    assert report["seed"] == 4
    assert report["counts"]["requests"] > 0
    # Virtual timestamps only: the transcript must be monotone in t.
    times = [event["t"] for event in report["schedule"]]
    assert times == sorted(times)
