"""Shrinking: unit behavior plus the injected-regression end-to-end.

The E2E test is the fuzzer's acceptance check: break the server on
purpose (acknowledge commits without committing), run a small corpus,
and require that the bug is caught, shrunk to a handful of operations,
written as a reproducer, and replayable.
"""

from __future__ import annotations

from repro.fuzz import (
    execute_plan,
    generate_plan,
    replay_file,
    run_corpus,
    shrink_plan,
)
from repro.server.protocol import ok_response
from repro.server.session import CommandDispatcher


def test_shrink_preserves_predicate_and_reduces():
    plan = generate_plan(3)

    def has_commit(candidate):
        return any(
            op[0] == "commit"
            for client in candidate.clients
            for txn in client.txns
            for op in txn.ops
        )

    assert has_commit(plan)
    small, runs = shrink_plan(plan, has_commit)
    assert has_commit(small)
    assert small.op_count < plan.op_count
    assert runs > 0
    # 1-minimal: exactly one client, one txn, whose only op commits.
    assert len(small.clients) == 1
    assert len(small.clients[0].txns) == 1
    assert [op[0] for op in small.clients[0].txns[0].ops] == ["commit"]


def test_shrink_respects_run_budget():
    plan = generate_plan(3)
    calls = []

    def never(candidate):
        calls.append(1)
        return False

    small, runs = shrink_plan(plan, never, max_runs=5)
    assert runs == 5 and len(calls) == 5
    assert small.canonical_json() == plan.canonical_json()


def _ack_without_commit(self, command):
    """The injected regression: a commit acked but never performed."""
    name = self._owned_txn(command)
    ok, reason = self._tm.can_commit(name)
    if not ok and "predecessor" in reason:
        return self._park(command, name, self._commit_waiters, None)
    if not ok:
        return ok_response(
            command.request_id, outcome="failed", reason=reason
        )
    self._count("server.txns.committed")
    return ok_response(command.request_id, outcome="committed")


def test_injected_regression_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    monkeypatch.setattr(
        CommandDispatcher, "_op_commit", _ack_without_commit
    )
    out_dir = tmp_path / "fuzz-failures"
    result = run_corpus(1, 10, out_dir=out_dir, shrink=True)
    assert result.exit_code == 1
    assert result.failures, "lost-commit bug not caught in 10 seeds"
    for failure in result.failures:
        assert "committed_prefix" in failure.failed_oracles
        assert failure.op_count_after <= 6, (
            f"seed {failure.seed} only shrank to "
            f"{failure.op_count_after} ops"
        )
        assert failure.op_count_after <= failure.op_count_before

    # While the bug is still in place the reproducer must fire...
    reproducer = result.failures[0].reproducer
    rerun, matches = replay_file(reproducer)
    assert matches and not rerun.ok

    # ...and once the bug is fixed (patch undone) it must go quiet.
    monkeypatch.undo()
    rerun, matches = replay_file(reproducer)
    assert not matches
    assert rerun.ok, rerun.failed_oracles


def test_shrunk_reproducer_is_deterministic(tmp_path, monkeypatch):
    monkeypatch.setattr(
        CommandDispatcher, "_op_commit", _ack_without_commit
    )
    result = run_corpus(2, 2, out_dir=None, shrink=True)
    assert result.failures
    seed = result.failures[0].seed
    plan = generate_plan(seed)
    first = execute_plan(plan).failed_oracles
    second = execute_plan(plan).failed_oracles
    assert first == second
