"""Tests for the SAT ↔ version-correctness reductions."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DatabaseState,
    Domain,
    Predicate,
    Schema,
    UniqueState,
)
from repro.sat import (
    CNFFormula,
    DPLLSolver,
    brute_force_solve,
    random_formula,
    sat_to_version_correctness,
    solve_candidate_selection,
    version_correctness_to_sat,
)


class TestForwardReduction:
    def test_structure_follows_the_proof(self):
        instance = sat_to_version_correctness(
            CNFFormula.parse("a | ~b")
        )
        # Step 1: E = U.
        assert set(instance.schema.names) == {"a", "b"}
        # Step 2: the two uniform states.
        values = {
            tuple(sorted(dict(state).items()))
            for state in instance.db_state
        }
        assert values == {
            (("a", 0), ("b", 0)),
            (("a", 1), ("b", 1)),
        }
        # Step 3: I_t = C (one conjunct per clause).
        assert len(instance.input_constraint) == 1

    def test_literal_translation(self):
        instance = sat_to_version_correctness(CNFFormula.parse("~b"))
        witness = instance.solve_direct()
        assert witness is not None
        assert witness["b"] == 0

    def test_variable_free_formula(self):
        instance = sat_to_version_correctness(CNFFormula([]))
        assert instance.is_satisfiable


class TestBackwardEncoding:
    def test_multi_valued_versions(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 9))
        base = UniqueState(schema, {"x": 1, "y": 5})
        db_state = (
            DatabaseState.single(base)
            .add(base.replace(x=3))
            .add(base.replace(x=7, y=2))
        )
        predicate = Predicate.parse("x > 2 & (y = 2 | x = 3)")
        encoding = version_correctness_to_sat(db_state, predicate)
        model = DPLLSolver().solve(encoding.formula)
        assert model is not None
        witness = encoding.decode(model)
        assert predicate.evaluate(witness)
        assert db_state.contains_version_state(dict(witness))

    def test_unsatisfiable_instance(self):
        schema = Schema.of("x", domain=Domain.interval(0, 9))
        db_state = DatabaseState.single(UniqueState(schema, {"x": 1}))
        encoding = version_correctness_to_sat(
            db_state, Predicate.parse("x > 5")
        )
        assert DPLLSolver().solve(encoding.formula) is None

    def test_two_entity_atoms(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 9))
        base = UniqueState(schema, {"x": 1, "y": 5})
        db_state = DatabaseState.single(base).add(base.replace(x=6))
        predicate = Predicate.parse("x > y")
        encoding = version_correctness_to_sat(db_state, predicate)
        model = DPLLSolver().solve(encoding.formula)
        assert model is not None
        witness = encoding.decode(model)
        assert witness["x"] == 6 and witness["y"] == 5

    def test_decode_is_total(self):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 9))
        db_state = DatabaseState.single(
            UniqueState(schema, {"x": 1, "y": 5})
        )
        encoding = version_correctness_to_sat(
            db_state, Predicate.parse("x = 1")
        )
        model = DPLLSolver().solve(encoding.formula)
        witness = encoding.decode(model)
        assert set(witness) == {"x", "y"}


class TestCandidateSelection:
    def test_basic_selection(self):
        chosen = solve_candidate_selection(
            {"x": [0, 2, 4], "y": [1, 3]},
            Predicate.parse("x > 1 & (y = 3 | x = 4)"),
        )
        assert chosen is not None
        assert chosen["x"] in (2, 4)
        assert chosen["y"] == 3 or chosen["x"] == 4

    def test_infeasible(self):
        assert (
            solve_candidate_selection(
                {"x": [0, 1]}, Predicate.parse("x > 5")
            )
            is None
        )

    def test_agrees_with_backtracking(self):
        candidates = {"a": [0, 1, 2], "b": [0, 2], "c": [1, 3]}
        for text in [
            "a = b",
            "a < b & b < c",
            "(a = 2 | b = 0) & c > 2",
            "a > b & b > c",
        ]:
            predicate = Predicate.parse(text)
            via_sat = solve_candidate_selection(candidates, predicate)
            direct = predicate.find_satisfying_assignment(candidates)
            assert (via_sat is None) == (direct is None), text
            if via_sat is not None:
                assert predicate.evaluate(via_sat)


@settings(max_examples=50, deadline=None)
@given(
    num_vars=st.integers(min_value=1, max_value=4),
    num_clauses=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_roundtrip_sat_to_versions_to_sat(num_vars, num_clauses, seed):
    """Property: SAT → versions → SAT preserves satisfiability."""
    formula = random_formula(num_vars, num_clauses, seed=seed)
    instance = sat_to_version_correctness(formula)
    encoding = version_correctness_to_sat(
        instance.db_state, instance.input_constraint
    )
    answer = DPLLSolver().solve(encoding.formula) is not None
    assert answer == (brute_force_solve(formula) is not None)
