"""Unit tests for CNF formulas."""

from __future__ import annotations

import pytest

from repro.sat import CNFFormula, Literal, SatClause, SatError, lit
from repro.sat.cnf import random_formula


class TestLiteral:
    def test_negation(self):
        a = lit("a")
        assert (-a).negated
        assert -(-a) == a

    def test_evaluate(self):
        assert lit("a").evaluate({"a": True})
        assert (-lit("a")).evaluate({"a": False})

    def test_empty_name_rejected(self):
        with pytest.raises(SatError):
            Literal("")

    def test_str(self):
        assert str(lit("a")) == "a"
        assert str(-lit("a")) == "¬a"


class TestClause:
    def test_evaluate_disjunction(self):
        clause = SatClause.of(lit("a"), -lit("b"))
        assert clause.evaluate({"a": False, "b": False})
        assert not clause.evaluate({"a": False, "b": True})

    def test_variables(self):
        assert SatClause.of(lit("a"), -lit("b")).variables == {"a", "b"}

    def test_tautology(self):
        assert SatClause.of(lit("a"), -lit("a")).is_tautology()
        assert not SatClause.of(lit("a"), lit("b")).is_tautology()

    def test_empty_rejected(self):
        with pytest.raises(SatError):
            SatClause(frozenset())


class TestFormula:
    def test_parse(self):
        formula = CNFFormula.parse("a | ~b & b | c")
        assert len(formula) == 2
        assert formula.variables == {"a", "b", "c"}

    def test_parse_errors(self):
        with pytest.raises(SatError):
            CNFFormula.parse("a & & b")
        with pytest.raises(SatError):
            CNFFormula.parse("a | ~ & b")

    def test_evaluate(self):
        formula = CNFFormula.parse("a | b & ~a | b")
        assert formula.evaluate({"a": True, "b": True})
        assert not formula.evaluate({"a": True, "b": False})

    def test_empty_formula_is_true(self):
        assert CNFFormula([]).evaluate({})

    def test_simplify_removes_satisfied_clauses(self):
        formula = CNFFormula.parse("a | b & c")
        simplified = formula.simplify({"a": True})
        assert simplified is not None
        assert len(simplified) == 1

    def test_simplify_detects_conflict(self):
        formula = CNFFormula.parse("a")
        assert formula.simplify({"a": False}) is None

    def test_simplify_strips_false_literals(self):
        formula = CNFFormula.parse("a | b")
        simplified = formula.simplify({"a": False})
        assert simplified is not None
        assert simplified.clauses[0].variables == {"b"}


class TestRandomFormula:
    def test_deterministic_with_seed(self):
        a = random_formula(4, 6, seed=42)
        b = random_formula(4, 6, seed=42)
        assert str(a) == str(b)

    def test_shape(self):
        formula = random_formula(5, 7, clause_width=3, seed=1)
        assert len(formula) == 7
        assert all(len(clause) <= 3 for clause in formula)

    def test_width_capped_by_variables(self):
        formula = random_formula(2, 3, clause_width=5, seed=1)
        assert all(len(clause) <= 2 for clause in formula)

    def test_no_variables_rejected(self):
        with pytest.raises(SatError):
            random_formula(0, 1)
