"""Tests for the DPLL solver, checked against brute force."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CNFFormula,
    DPLLSolver,
    brute_force_solve,
    random_formula,
    solve,
)


class TestBasics:
    def test_empty_formula(self):
        assert solve(CNFFormula([])) == {}

    def test_single_unit(self):
        model = solve(CNFFormula.parse("a"))
        assert model == {"a": True}

    def test_negated_unit(self):
        assert solve(CNFFormula.parse("~a")) == {"a": False}

    def test_contradiction(self):
        assert solve(CNFFormula.parse("a & ~a")) is None

    def test_model_is_total(self):
        formula = CNFFormula.parse("a | b | c")
        model = solve(formula)
        assert model is not None
        assert set(model) == {"a", "b", "c"}
        assert formula.evaluate(model)

    def test_unit_propagation_chains(self):
        # a forces b forces c.
        formula = CNFFormula.parse("a & ~a | b & ~b | c")
        model = solve(formula)
        assert model == {"a": True, "b": True, "c": True}

    def test_pure_literal_elimination(self):
        solver = DPLLSolver()
        model = solver.solve(CNFFormula.parse("a | b & a | c"))
        assert model is not None
        assert model["a"] is True  # a occurs only positively
        assert solver.stats.pure_eliminations >= 1

    def test_stats_reset_between_runs(self):
        solver = DPLLSolver()
        solver.solve(CNFFormula.parse("a | b & ~a | ~b"))
        first = solver.stats.as_dict()
        solver.solve(CNFFormula.parse("a"))
        assert solver.stats.as_dict() != first or first == {
            "decisions": 0,
            "unit_propagations": 1,
            "pure_eliminations": 0,
            "backtracks": 0,
        }


class TestKnownInstances:
    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1 and p2 both in hole, but not both.
        formula = CNFFormula.parse("p1 & p2 & ~p1 | ~p2")
        assert solve(formula) is None

    def test_implication_chain(self):
        clauses = " & ".join(f"~v{i} | v{i+1}" for i in range(10))
        formula = CNFFormula.parse(f"v0 & {clauses}")
        model = solve(formula)
        assert model is not None
        assert all(model[f"v{i}"] for i in range(11))


@settings(max_examples=120, deadline=None)
@given(
    num_vars=st.integers(min_value=1, max_value=6),
    num_clauses=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_dpll_agrees_with_brute_force(num_vars, num_clauses, seed):
    """Property: DPLL and exhaustive enumeration agree on SAT/UNSAT,
    and every DPLL model actually satisfies the formula."""
    formula = random_formula(num_vars, num_clauses, seed=seed)
    dpll = solve(formula)
    brute = brute_force_solve(formula)
    assert (dpll is None) == (brute is None)
    if dpll is not None:
        assert formula.evaluate(dpll)
