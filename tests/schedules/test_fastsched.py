"""Differential tests: the array-encoded fast path vs the object oracle.

Every structure :mod:`repro.schedules.fastsched` computes must equal
what the direct transcription of the definitions computes — on the
paper's examples, on seeded random workloads, and on hypothesis-
generated schedules.  The object implementations stay callable
precisely so these tests can hold the two paths against each other.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classes.conflict import (
    conflict_graph,
    conflict_graph_reference,
)
from repro.schedules import (
    CommittedSchedule,
    FastSchedule,
    Schedule,
    avoids_cascading_aborts,
    fast_of,
    fast_recovery_profile,
    is_recoverable,
    is_strict,
    random_schedule,
    recovery_profile,
)
from repro.schedules.fastsched import (
    fast_avoids_cascading_aborts,
    fast_is_recoverable,
    fast_is_strict,
)

_EXAMPLES = [
    "r1(x) w1(x) r2(x) w2(y)",
    "r1(x) r2(x) w1(x) w2(x)",
    "w1(x) r2(x) w2(y) r1(y)",
    "r1(x) w2(x) r1(x) w1(y) i3(y) w3(x)",
    "w1(x) w1(x) r1(x) r1(x)",  # repeated identical steps
    "r1(x)",
    "i1(x) i2(x) r3(x) w3(y)",
]


def _schedules() -> list[Schedule]:
    schedules = [Schedule.parse(text) for text in _EXAMPLES]
    for seed in range(12):
        schedules.append(
            random_schedule(
                3 + seed % 3,
                4,
                ["x", "y", "z"],
                write_ratio=0.4 + 0.05 * (seed % 5),
                seed=seed,
            )
        )
    return schedules


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["1", "2", "3", "4"]),
        st.sampled_from(["r", "w", "i"]),
        st.sampled_from(["x", "y", "z"]),
    ),
    min_size=1,
    max_size=16,
)


def _parse(ops: list[tuple[str, str, str]]) -> Schedule:
    return Schedule.parse(
        " ".join(f"{kind}{txn}({entity})" for txn, kind, entity in ops)
    )


class TestConflictStructures:
    def test_pairs_match_reference(self):
        for schedule in _schedules():
            fast = FastSchedule.from_schedule(schedule)
            assert fast.conflict_pairs() == list(
                schedule.conflict_pairs_reference()
            ), str(schedule)

    def test_public_pairs_are_the_fast_pairs(self):
        schedule = Schedule.parse(_EXAMPLES[3])
        assert list(schedule.conflict_pairs()) == list(
            schedule.conflict_pairs_reference()
        )

    def test_graph_matches_reference(self):
        for schedule in _schedules():
            assert conflict_graph(schedule) == conflict_graph_reference(
                schedule
            ), str(schedule)

    def test_fingerprint_matches_object_definition(self):
        for schedule in _schedules():
            fast = fast_of(schedule)
            numbers = schedule.occurrence_numbers()
            expected = frozenset(
                (
                    schedule[i],
                    schedule[j],
                    numbers[i],
                    numbers[j],
                )
                for i, j in schedule.conflict_pairs_reference()
            )
            assert fast.conflict_fingerprint() == expected
            assert schedule.conflict_fingerprint() == expected

    @given(ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_pairs_and_graph_property(self, ops):
        schedule = _parse(ops)
        fast = FastSchedule.from_schedule(schedule)
        assert fast.conflict_pairs() == list(
            schedule.conflict_pairs_reference()
        )
        assert fast.conflict_graph() == conflict_graph_reference(schedule)


class TestStandardModelSemantics:
    def test_occurrence_numbers(self):
        for schedule in _schedules():
            counts = {}
            expected = []
            for op in schedule:
                expected.append(counts.get(op, 0))
                counts[op] = expected[-1] + 1
            assert list(schedule.occurrence_numbers()) == expected

    def test_final_writers(self):
        for schedule in _schedules():
            fast = fast_of(schedule)
            assert fast.final_writers() == schedule.final_writers()

    def test_interning_orders_match_object_model(self):
        schedule = Schedule.parse("r2(y) w1(x) r2(x) w3(z)")
        fast = fast_of(schedule)
        assert fast.txns == schedule.transactions
        assert set(fast.entities) == set(schedule.entities)

    def test_operation_round_trip(self):
        for schedule in _schedules():
            fast = fast_of(schedule)
            for index, op in enumerate(schedule):
                assert fast.operation(index) == op


class TestRecoveryPredicates:
    def _committed(self, schedule: Schedule, seed: int) -> CommittedSchedule:
        order = list(schedule.transactions)
        random.Random(seed).shuffle(order)
        return CommittedSchedule(schedule, tuple(order))

    def test_fast_predicates_match_oracle(self):
        for index, schedule in enumerate(_schedules()):
            for seed in range(4):
                committed = self._committed(schedule, seed * 31 + index)
                assert fast_is_recoverable(committed) == is_recoverable(
                    committed
                ), str(schedule)
                assert fast_avoids_cascading_aborts(
                    committed
                ) == avoids_cascading_aborts(committed), str(schedule)
                assert fast_is_strict(committed) == is_strict(
                    committed
                ), str(schedule)

    def test_profile_is_the_fast_profile(self):
        schedule = Schedule.parse("w1(x) r2(x) w2(y)")
        order = tuple(schedule.transactions)
        committed = CommittedSchedule(schedule, order)
        assert recovery_profile(schedule, order) == fast_recovery_profile(
            committed
        )
        assert recovery_profile(schedule, order) == {
            "RC": is_recoverable(committed),
            "ACA": avoids_cascading_aborts(committed),
            "ST": is_strict(committed),
        }

    @given(ops_strategy, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=200, deadline=None)
    def test_predicates_property(self, ops, seed):
        schedule = _parse(ops)
        committed = self._committed(schedule, seed)
        assert fast_is_recoverable(committed) == is_recoverable(committed)
        assert fast_avoids_cascading_aborts(
            committed
        ) == avoids_cascading_aborts(committed)
        assert fast_is_strict(committed) == is_strict(committed)


class TestMemoization:
    def test_fast_of_is_cached_per_schedule(self):
        schedule = Schedule.parse("r1(x) w2(x)")
        assert fast_of(schedule) is fast_of(schedule)

    def test_derived_arrays_cached(self):
        fast = fast_of(Schedule.parse("r1(x) w2(x) r3(y)"))
        assert fast.conflict_pairs() is fast.conflict_pairs()
        assert fast.occurrence_numbers() is fast.occurrence_numbers()
        assert fast.conflict_graph_ids() is fast.conflict_graph_ids()
