"""Tests for the recoverability hierarchy RC/ACA/ST (§1's remark)."""

from __future__ import annotations

import pytest

from repro.classes import is_view_serializable
from repro.errors import ScheduleError
from repro.schedules import Schedule
from repro.schedules.recovery import (
    CommittedSchedule,
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
    recovery_profile,
)


def _cs(text: str, order: str) -> CommittedSchedule:
    return CommittedSchedule(
        Schedule.parse(text), tuple(order.split())
    )


class TestRecoverable:
    def test_reader_commits_after_writer(self):
        committed = _cs("w1(x) r2(x)", "1 2")
        assert is_recoverable(committed)

    def test_reader_commits_before_writer(self):
        committed = _cs("w1(x) r2(x)", "2 1")
        assert not is_recoverable(committed)

    def test_initial_reads_always_fine(self):
        assert is_recoverable(_cs("r1(x) r2(x)", "2 1"))

    def test_own_writes_always_fine(self):
        assert is_recoverable(_cs("w1(x) r1(x)", "1"))


class TestACA:
    def test_reading_from_finished_committed_writer(self):
        # Writer's last op precedes the read, and it commits first.
        assert avoids_cascading_aborts(_cs("w1(x) r2(x)", "1 2"))

    def test_reading_from_active_writer_cascades(self):
        # Writer still has operations after the read.
        committed = _cs("w1(x) r2(x) w1(y)", "1 2")
        assert is_recoverable(committed)
        assert not avoids_cascading_aborts(committed)

    def test_aca_implies_rc(self):
        for text, order in [
            ("w1(x) r2(x)", "1 2"),
            ("w1(x) r2(x) w1(y)", "1 2"),
            ("w1(x) w2(x) r3(x)", "1 2 3"),
        ]:
            committed = _cs(text, order)
            if avoids_cascading_aborts(committed):
                assert is_recoverable(committed)


class TestStrict:
    def test_overwriting_uncommitted_write_not_strict(self):
        committed = _cs("w1(x) w2(x) r1(y)", "1 2")
        assert not is_strict(committed)

    def test_clean_handover_is_strict(self):
        assert is_strict(_cs("w1(x) r1(x) w2(x)", "1 2"))

    def test_st_implies_aca(self):
        for text, order in [
            ("w1(x) r1(x) w2(x)", "1 2"),
            ("w1(x) w2(x) r1(y)", "1 2"),
            ("w1(x) r2(x) w1(y)", "1 2"),
            ("r1(x) r2(x)", "1 2"),
        ]:
            committed = _cs(text, order)
            if is_strict(committed):
                assert avoids_cascading_aborts(committed)


class TestThePapersPoint:
    def test_serializable_but_not_recoverable(self):
        # §1: serializability alone permits recovery hazards.  This
        # schedule is view serializable (t1, t2) yet t2 read t1's
        # uncommitted write and commits first.
        schedule = Schedule.parse("w1(x) r2(x) w2(y)")
        assert is_view_serializable(schedule)
        profile = recovery_profile(schedule, ["2", "1"])
        assert not profile["RC"]

    def test_profile_shape(self):
        profile = recovery_profile(
            Schedule.parse("w1(x) r2(x)"), ["1", "2"]
        )
        assert set(profile) == {"RC", "ACA", "ST"}

    def test_commit_order_validated(self):
        with pytest.raises(ScheduleError):
            CommittedSchedule(Schedule.parse("r1(x)"), ("1", "2"))
        with pytest.raises(ScheduleError):
            CommittedSchedule(Schedule.parse("r1(x) r2(x)"), ("1",))
