"""Unit tests for schedules: parsing, semantics, equivalences."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.schedules import R, Schedule, W


class TestParsing:
    def test_parse_basic(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(y)")
        assert schedule.operations == (R("1", "x"), W("1", "x"), R("2", "y"))

    def test_parse_with_commas_and_whitespace(self):
        schedule = Schedule.parse("  r1(x),w2( y ) ")
        assert len(schedule) == 2
        assert schedule[1] == W("2", "y")

    def test_parse_multichar_names(self):
        schedule = Schedule.parse("rT10(alpha_3) wT10(alpha_3)")
        assert schedule.transactions == ("T10",)

    def test_round_trip(self):
        text = "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        assert str(Schedule.parse(text)) == text

    @pytest.mark.parametrize("bad", ["", "x1(x)", "r1[x]", "r1(x) junk"])
    def test_parse_errors(self, bad):
        with pytest.raises(ScheduleError):
            Schedule.parse(bad)


class TestStructure:
    def test_transactions_in_first_appearance_order(self):
        schedule = Schedule.parse("r2(x) r1(x) w2(x)")
        assert schedule.transactions == ("2", "1")

    def test_entities(self):
        assert Schedule.parse("r1(x) w1(y)").entities == {"x", "y"}

    def test_program_and_programs(self):
        schedule = Schedule.parse("r1(x) r2(y) w1(x)")
        assert schedule.program("1") == (R("1", "x"), W("1", "x"))
        assert set(schedule.programs()) == {"1", "2"}

    def test_is_serial(self):
        assert Schedule.parse("r1(x) w1(x) r2(x)").is_serial()
        assert not Schedule.parse("r1(x) r2(x) w1(x)").is_serial()

    def test_serial_builder(self):
        programs = Schedule.parse("r1(x) w1(x) r2(x)").programs()
        serial = Schedule.serial(programs, ["2", "1"])
        assert str(serial) == "r2(x) r1(x) w1(x)"

    def test_serial_builder_order_mismatch(self):
        programs = Schedule.parse("r1(x) r2(x)").programs()
        with pytest.raises(ScheduleError):
            Schedule.serial(programs, ["1"])

    def test_hash_and_equality(self):
        a = Schedule.parse("r1(x) w1(x)")
        b = Schedule.parse("r1(x) w1(x)")
        assert a == b and hash(a) == hash(b)
        assert a != Schedule.parse("w1(x) r1(x)")


class TestStandardModelSemantics:
    def test_reads_from_initial(self):
        schedule = Schedule.parse("r1(x) w2(x) r1(y)")
        assert schedule.reads_from() == [(0, None), (2, None)]

    def test_reads_from_last_writer(self):
        schedule = Schedule.parse("w1(x) w2(x) r3(x)")
        assert schedule.reads_from() == [(2, "2")]

    def test_reads_own_write(self):
        schedule = Schedule.parse("w1(x) r1(x)")
        assert schedule.reads_from() == [(1, "1")]

    def test_read_sources_with_occurrences(self):
        schedule = Schedule.parse("r1(x) w2(x) r1(x)")
        sources = schedule.read_sources()
        assert sources[("1", "x", 0)] is None
        assert sources[("1", "x", 1)] == "2"

    def test_final_writers(self):
        schedule = Schedule.parse("w1(x) w2(x) w1(y)")
        assert schedule.final_writers() == {"x": "2", "y": "1"}


class TestViewEquivalence:
    def test_serial_orders_differ(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(x)")
        programs = schedule.programs()
        assert schedule.view_equivalent(
            Schedule.serial(programs, ["1", "2"])
        )
        assert not schedule.view_equivalent(
            Schedule.serial(programs, ["2", "1"])
        )

    def test_different_programs_never_equivalent(self):
        assert not Schedule.parse("r1(x)").view_equivalent(
            Schedule.parse("w1(x)")
        )

    def test_final_writer_matters(self):
        # Same reads (none), different surviving version.
        a = Schedule.parse("w1(x) w2(x)")
        b = Schedule.parse("w2(x) w1(x)")
        assert not a.view_equivalent(b)


class TestConflicts:
    def test_conflict_pairs(self):
        schedule = Schedule.parse("r1(x) w2(x) r2(y)")
        assert list(schedule.conflict_pairs()) == [(0, 1)]

    def test_conflict_equivalence(self):
        a = Schedule.parse("r1(x) r2(y) w1(x)")
        b = Schedule.parse("r2(y) r1(x) w1(x)")  # swap non-conflicting
        assert a.conflict_equivalent(b)
        c = Schedule.parse("r1(x) w2(x)")
        d = Schedule.parse("w2(x) r1(x)")
        assert not c.conflict_equivalent(d)

    def test_occurrence_numbers_match_prefix_rescan(self):
        # The one-pass computation must agree with the definition:
        # numbers[i] == how many earlier steps are identical to step i.
        schedule = Schedule.parse(
            "r1(x) w1(x) r1(x) w2(x) r1(x) w1(x) r2(y) w2(x)"
        )
        numbers = schedule.occurrence_numbers()
        ops = schedule.operations
        assert len(numbers) == len(ops)
        for i, op in enumerate(ops):
            assert numbers[i] == sum(
                1 for earlier in ops[:i] if earlier == op
            ), i

    def test_conflict_equivalence_with_repeated_operations(self):
        # Occurrence numbers keep the two w1(x) writes distinguishable.
        a = Schedule.parse("w1(x) r2(y) w2(x) w1(x)")
        b = Schedule.parse("r2(y) w1(x) w2(x) w1(x)")
        assert a.conflict_equivalent(b)
        c = Schedule.parse("w1(x) w1(x) r2(y) w2(x)")
        assert not a.conflict_equivalent(c)


class TestMemoAndPickling:
    def test_memo_caches_derived_structures(self):
        schedule = Schedule.parse("r1(x) w1(x) r2(x)")
        assert schedule.read_sources() is schedule.read_sources()
        assert schedule.programs() is schedule.programs()
        assert schedule.final_writers() is schedule.final_writers()

    def test_pickle_round_trip_drops_memo(self):
        import pickle

        schedule = Schedule.parse("r1(x) w1(x) r2(x)")
        schedule.read_sources()  # populate the memo
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule and hash(clone) == hash(schedule)
        assert clone.read_sources() == schedule.read_sources()


class TestProjections:
    def test_project_entities_examples_3a_3b(self):
        # Example 1's schedule projected per conjunct (paper §4.2).
        schedule = Schedule.parse(
            "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
        )
        x_proj = schedule.project_entities({"x"})
        y_proj = schedule.project_entities({"y"})
        assert str(x_proj) == "r1(x) w1(x) r2(x)"
        assert str(y_proj) == "r2(y) w2(y) r1(y) w1(y)"
        assert x_proj.is_serial() and y_proj.is_serial()

    def test_empty_projection_is_none(self):
        assert Schedule.parse("r1(x)").project_entities({"q"}) is None

    def test_project_transactions(self):
        schedule = Schedule.parse("r1(x) r2(x) w1(x)")
        projected = schedule.project_transactions({"1"})
        assert str(projected) == "r1(x) w1(x)"


class TestSerializations:
    def test_count_is_factorial(self):
        schedule = Schedule.parse("r1(x) r2(x) r3(x)")
        assert sum(1 for _ in schedule.serializations()) == 6

    def test_each_is_serial_with_same_programs(self):
        schedule = Schedule.parse("r1(x) r2(y) w1(x) w2(y)")
        for order, serial in schedule.serializations():
            assert serial.is_serial()
            assert serial.programs() == schedule.programs()
