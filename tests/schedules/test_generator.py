"""Tests for workload/schedule generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.schedules import (
    Schedule,
    interleaving_count,
    interleavings,
    random_interleaving,
    random_programs,
    random_schedule,
)


class TestRandomPrograms:
    def test_deterministic_with_seed(self):
        a = random_programs(3, 4, ["x", "y"], seed=7)
        b = random_programs(3, 4, ["x", "y"], seed=7)
        assert a == b

    def test_shape(self):
        programs = random_programs(3, 4, ["x", "y"], seed=1)
        assert set(programs) == {"1", "2", "3"}
        assert all(len(ops) == 4 for ops in programs.values())

    def test_write_ratio_extremes(self):
        all_reads = random_programs(2, 5, ["x"], write_ratio=0.0, seed=1)
        assert all(
            op.is_read for ops in all_reads.values() for op in ops
        )
        all_writes = random_programs(2, 5, ["x"], write_ratio=1.0, seed=1)
        assert all(
            op.is_write for ops in all_writes.values() for op in ops
        )

    def test_validation(self):
        with pytest.raises(ScheduleError):
            random_programs(0, 1, ["x"])
        with pytest.raises(ScheduleError):
            random_programs(1, 1, [])


class TestRandomInterleaving:
    def test_preserves_program_order(self):
        programs = random_programs(3, 4, ["x", "y"], seed=3)
        schedule = random_interleaving(programs, seed=4)
        for txn, ops in programs.items():
            assert schedule.program(txn) == tuple(ops)

    def test_random_schedule_convenience(self):
        schedule = random_schedule(2, 3, ["x", "y"], seed=5)
        assert isinstance(schedule, Schedule)
        assert len(schedule) == 6


class TestInterleavings:
    def test_count_matches_multinomial(self):
        programs = {
            "1": Schedule.parse("r1(x) w1(x)").program("1"),
            "2": Schedule.parse("r2(y)").program("2"),
        }
        expected = interleaving_count(programs)
        assert expected == 3  # C(3,1)
        assert sum(1 for _ in interleavings(programs)) == expected

    def test_all_distinct_and_order_preserving(self):
        programs = Schedule.parse("r1(x) w1(x) r2(x) w2(x)").programs()
        seen = set()
        for schedule in interleavings(programs):
            assert schedule not in seen
            seen.add(schedule)
            for txn, ops in programs.items():
                assert schedule.program(txn) == tuple(ops)
        assert len(seen) == interleaving_count(programs)

    @settings(max_examples=20, deadline=None)
    @given(
        first=st.integers(min_value=1, max_value=3),
        second=st.integers(min_value=1, max_value=3),
    )
    def test_count_property(self, first, second):
        programs = random_programs(1, first, ["x"], seed=1)
        programs.update(
            {
                "2": random_programs(1, second, ["y"], seed=2)[
                    "1"
                ]
            }
        )
        # Fix txn ids on the borrowed program.
        from repro.schedules import Operation

        programs["2"] = tuple(
            Operation("2", op.kind, op.entity) for op in programs["2"]
        )
        assert (
            sum(1 for _ in interleavings(programs))
            == interleaving_count(programs)
        )
