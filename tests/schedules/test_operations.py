"""Unit tests for read/write operations and conflicts."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.schedules import Operation, OpType, R, W


class TestConstruction:
    def test_shorthand(self):
        op = R("1", "x")
        assert op.txn == "1"
        assert op.kind is OpType.READ
        assert op.entity == "x"
        assert W("2", "y").is_write

    def test_str(self):
        assert str(R("1", "x")) == "r1(x)"
        assert str(W("2", "y")) == "w2(y)"

    def test_validation(self):
        with pytest.raises(ScheduleError):
            Operation("", OpType.READ, "x")
        with pytest.raises(ScheduleError):
            Operation("1", OpType.READ, "")


class TestConflicts:
    def test_read_read_no_conflict(self):
        assert not R("1", "x").conflicts_with(R("2", "x"))

    def test_read_write_conflict(self):
        assert R("1", "x").conflicts_with(W("2", "x"))
        assert W("1", "x").conflicts_with(R("2", "x"))

    def test_write_write_conflict(self):
        assert W("1", "x").conflicts_with(W("2", "x"))

    def test_same_transaction_never_conflicts(self):
        assert not R("1", "x").conflicts_with(W("1", "x"))

    def test_different_entities_never_conflict(self):
        assert not W("1", "x").conflicts_with(W("2", "y"))
