"""Unit tests for read/write operations and conflicts."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.schedules import Operation, OpType, R, W


class TestConstruction:
    def test_shorthand(self):
        op = R("1", "x")
        assert op.txn == "1"
        assert op.kind is OpType.READ
        assert op.entity == "x"
        assert W("2", "y").is_write

    def test_str(self):
        assert str(R("1", "x")) == "r1(x)"
        assert str(W("2", "y")) == "w2(y)"

    def test_validation(self):
        with pytest.raises(ScheduleError):
            Operation("", OpType.READ, "x")
        with pytest.raises(ScheduleError):
            Operation("1", OpType.READ, "")


class TestConflicts:
    def test_read_read_no_conflict(self):
        assert not R("1", "x").conflicts_with(R("2", "x"))

    def test_read_write_conflict(self):
        assert R("1", "x").conflicts_with(W("2", "x"))
        assert W("1", "x").conflicts_with(R("2", "x"))

    def test_write_write_conflict(self):
        assert W("1", "x").conflicts_with(W("2", "x"))

    def test_same_transaction_never_conflicts(self):
        assert not R("1", "x").conflicts_with(W("1", "x"))

    def test_different_entities_never_conflict(self):
        assert not W("1", "x").conflicts_with(W("2", "y"))


class TestSlotsAndHashing:
    """Operations are slotted; the cached hash must stay invisible."""

    def test_no_instance_dict(self):
        assert not hasattr(R("1", "x"), "__dict__")

    def test_equality_ignores_cached_hash(self):
        a, b = R("1", "x"), R("1", "x")
        assert a == b and a is not b
        assert hash(a) == hash(b) == hash(("1", OpType.READ, "x"))
        assert a != W("1", "x")

    def test_ordering_still_by_triple(self):
        assert R("1", "x") < W("2", "x")
        assert sorted([W("2", "y"), R("1", "x")])[0] == R("1", "x")

    def test_pickle_round_trip(self):
        # The census ships operations across worker processes; frozen
        # slotted dataclasses must survive the trip with their hash.
        import pickle

        op = W("3", "z")
        clone = pickle.loads(pickle.dumps(op))
        assert clone == op and hash(clone) == hash(op)

    def test_deepcopy_round_trip(self):
        import copy

        op = R("2", "y")
        clone = copy.deepcopy(op)
        assert clone == op and hash(clone) == hash(op)

    def test_usable_as_dict_key(self):
        counts = {R("1", "x"): 1}
        counts[R("1", "x")] = counts[R("1", "x")] + 1
        assert counts == {R("1", "x"): 2}
