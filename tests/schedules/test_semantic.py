"""Tests for semantic (increment-aware) conflicts (§2.3)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classes import is_conflict_serializable
from repro.schedules import I, R, Schedule, W
from repro.schedules.semantic import (
    is_semantically_conflict_serializable,
    semantic_conflict,
    semantic_conflict_graph,
    semantic_serialization_order,
)


class TestParsingAndOps:
    def test_parse_increment(self):
        schedule = Schedule.parse("i1(x) r2(x)")
        assert schedule[0].is_increment
        assert schedule[0].is_write  # classical view

    def test_str_roundtrip(self):
        schedule = Schedule.parse("i1(x) w2(y) r1(y)")
        assert Schedule.parse(str(schedule)) == schedule

    def test_shorthand(self):
        assert str(I("1", "x")) == "i1(x)"


class TestSemanticConflict:
    def test_increments_commute(self):
        assert not semantic_conflict(I("1", "x"), I("2", "x"))

    def test_increment_conflicts_with_read_and_write(self):
        assert semantic_conflict(I("1", "x"), R("2", "x"))
        assert semantic_conflict(I("1", "x"), W("2", "x"))

    def test_reads_still_commute(self):
        assert not semantic_conflict(R("1", "x"), R("2", "x"))

    def test_classical_pairs_unchanged(self):
        assert semantic_conflict(R("1", "x"), W("2", "x"))
        assert semantic_conflict(W("1", "x"), W("2", "x"))

    def test_same_txn_or_entity_never_conflicts(self):
        assert not semantic_conflict(I("1", "x"), I("1", "x"))
        assert not semantic_conflict(I("1", "x"), W("2", "y"))


class TestSemanticSerializability:
    def test_interleaved_increments_classically_bad(self):
        # Two counter bumps wrapped around each other: a classical ww
        # cycle, semantically a non-event.
        schedule = Schedule.parse("i1(x) i2(x) i2(y) i1(y)")
        assert not is_conflict_serializable(schedule)
        assert is_semantically_conflict_serializable(schedule)

    def test_read_pins_the_order(self):
        # A read between the increments re-creates a genuine conflict.
        schedule = Schedule.parse("i1(x) r2(x) i1(y) i2(y) w1(y)")
        graph = semantic_conflict_graph(schedule)
        assert "2" in graph["1"] and "1" in graph["2"]
        assert not is_semantically_conflict_serializable(schedule)

    def test_witness_order(self):
        schedule = Schedule.parse("i1(x) i2(x) r3(x)")
        order = semantic_serialization_order(schedule)
        assert order is not None
        assert order[-1] == "3"  # the reader follows both increments

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_semantic_csr_contains_classical_csr(self, seed):
        """Property: dropping increment/increment conflicts only grows
        the class."""
        import random

        rng = random.Random(seed)
        ops = []
        for __ in range(rng.randint(2, 8)):
            txn = str(rng.randint(1, 3))
            entity = rng.choice(["x", "y"])
            kind = rng.choice([R, W, I])
            ops.append(kind(txn, entity))
        schedule = Schedule(ops)
        if is_conflict_serializable(schedule):
            assert is_semantically_conflict_serializable(schedule)
