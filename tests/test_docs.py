"""Guards: the documentation references real, importable symbols."""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

DOCS_ROOT = pathlib.Path(__file__).parent.parent

_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)")


def _documented_modules(name: str) -> set[str]:
    text = (DOCS_ROOT / name).read_text(encoding="utf-8")
    modules = set()
    for match in _MODULE_RE.finditer(text):
        dotted = match.group(1)
        # Trim trailing attribute parts until something imports.
        modules.add(dotted)
    return modules


@pytest.mark.parametrize(
    "doc",
    [
        "README.md",
        "DESIGN.md",
        "docs/paper_map.md",
        "docs/performance.md",
        "docs/protocol.md",
        "docs/observability.md",
        "docs/server.md",
        "docs/replication.md",
        "docs/simulation.md",
    ],
)
def test_referenced_modules_exist(doc):
    for dotted in _documented_modules(doc):
        parts = dotted.split(".")
        # The reference may be module.attr or module.Class.method:
        # peel from the right until an import succeeds, then resolve
        # the remainder as attributes.
        for split in range(len(parts), 0, -1):
            module_name = ".".join(parts[:split])
            try:
                module = importlib.import_module(module_name)
            except ImportError:
                continue
            obj = module
            ok = True
            for attr in parts[split:]:
                if not hasattr(obj, attr):
                    ok = False
                    break
                obj = getattr(obj, attr)
            assert ok, f"{doc}: {dotted} has missing attribute path"
            break
        else:
            raise AssertionError(f"{doc}: cannot import {dotted}")


def test_experiment_ids_consistent():
    """Every experiment id in DESIGN's index appears in EXPERIMENTS."""
    design = (DOCS_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    experiments = (DOCS_ROOT / "EXPERIMENTS.md").read_text(
        encoding="utf-8"
    )
    index_ids = set(
        re.findall(r"^\| (E\d|F\d|L\d|T\d|P\d|D\d|R\d|M\d) \|",
                   design, re.MULTILINE)
    )
    assert index_ids, "DESIGN.md experiment index not found"
    for exp_id in sorted(index_ids):
        assert f"## {exp_id} " in experiments or f"{exp_id} —" in (
            experiments
        ), f"{exp_id} missing from EXPERIMENTS.md"


def test_examples_listed_in_readme_exist():
    readme = (DOCS_ROOT / "README.md").read_text(encoding="utf-8")
    for name in re.findall(r"`([a-z_]+\.py)`", readme):
        if name in ("setup.py",):
            continue
        assert (DOCS_ROOT / "examples" / name).exists(), name
