"""Tests for the virtual event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(5.0, "late")
        queue.schedule(1.0, "early")
        assert queue.pop().payload == "early"
        assert queue.now == 1.0
        assert queue.pop().payload == "late"
        assert queue.now == 5.0

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        queue.schedule_at(3.0, "x")
        event = queue.pop()
        assert event.time == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, "x")

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule_at(1.0, "y")

    def test_empty_pop(self):
        assert EventQueue().pop() is None

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, "x")
        assert queue and len(queue) == 1

    def test_relative_delay_accumulates(self):
        queue = EventQueue()
        queue.schedule(2.0, "a")
        queue.pop()
        queue.schedule(3.0, "b")
        event = queue.pop()
        assert event.time == 5.0
