"""Scale tests: the simulator and protocol at larger configurations."""

from __future__ import annotations

import pytest

from repro.sim import (
    DEFAULT_SCHEDULERS,
    cad_workload,
    oltp_workload,
    run_one,
)


class TestProtocolAtScale:
    def test_sixteen_designers_all_commit(self):
        workload = cad_workload(
            num_designers=16,
            num_modules=4,
            entities_per_module=4,
            accesses_per_txn=8,
            think_time=50.0,
            cooperation_probability=0.4,
            seed=11,
        )
        metrics = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=2
        )
        assert metrics.committed_count == 16
        assert metrics.gave_up_count == 0
        # Still no lock-wait pathology at scale.
        assert metrics.total_wait_time < metrics.makespan

    def test_heavy_contention_single_module(self):
        workload = cad_workload(
            num_designers=10,
            num_modules=1,
            entities_per_module=3,
            accesses_per_txn=5,
            think_time=40.0,
            seed=13,
        )
        metrics = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=2
        )
        assert metrics.committed_count == 10
        assert metrics.gave_up_count == 0

    def test_determinism_at_scale(self):
        workload = cad_workload(num_designers=12, seed=17)
        first = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=4
        )
        second = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=4
        )
        assert first.summary_row() == second.summary_row()


class TestBaselinesAtScale:
    @pytest.mark.parametrize(
        "name", ["s2pl", "mvto", "pw2pl", "conservative-to"]
    )
    def test_everything_terminates(self, name):
        workload = oltp_workload(num_transactions=30, seed=19)
        metrics = run_one(DEFAULT_SCHEDULERS[name], workload, seed=2)
        assert (
            metrics.committed_count + metrics.gave_up_count == 30
        )
        assert metrics.events_processed < 100_000
