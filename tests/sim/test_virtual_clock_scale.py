"""DES-scale behavior of the virtual asyncio loop.

The cluster simulator schedules hundreds of timers (client think
times, pump polls, partition windows, park deadlines) on one
:class:`VirtualClockLoop`.  These tests pin the properties the DES
leans on: timer storms fire in deadline order, same-deadline timers
keep FIFO creation order, and the whole schedule is bit-identical
across runs.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.fuzz.loop import FuzzDeadlockError, run_virtual
from repro.sim import VirtualClock


class TestTimerStorms:
    def test_hundreds_of_timers_fire_in_deadline_order(self):
        clock = VirtualClock()
        fired: list[tuple[float, int]] = []

        async def one(index: int, delay: float):
            await asyncio.sleep(delay)
            fired.append((clock.now, index))

        async def main():
            delays = [
                ((index * 7919) % 400) / 100.0 for index in range(400)
            ]
            await asyncio.gather(
                *(one(i, d) for i, d in enumerate(delays))
            )

        run_virtual(main(), clock)
        assert len(fired) == 400
        times = [t for t, _ in fired]
        assert times == sorted(times)

    def test_same_deadline_order_is_stable_across_runs(self):
        # asyncio breaks same-deadline ties by heap order, not FIFO —
        # what the DES needs is that the tie-break is *deterministic*.
        def run_once() -> list[int]:
            clock = VirtualClock()
            fired: list[int] = []

            async def one(index: int):
                await asyncio.sleep(1.0)
                fired.append(index)

            async def main():
                tasks = [
                    asyncio.ensure_future(one(index))
                    for index in range(300)
                ]
                await asyncio.gather(*tasks)

            run_virtual(main(), clock)
            return fired

        first = run_once()
        assert sorted(first) == list(range(300))
        assert first == run_once()

    def test_schedule_is_bit_identical_across_runs(self):
        def run_once() -> list[tuple[float, int]]:
            clock = VirtualClock()
            log: list[tuple[float, int]] = []

            async def worker(index: int):
                for step in range(5):
                    await asyncio.sleep(
                        ((index * 31 + step * 17) % 97) / 50.0
                    )
                    log.append((clock.now, index))

            async def main():
                await asyncio.gather(
                    *(worker(index) for index in range(50))
                )

            run_virtual(main(), clock)
            return log

        assert run_once() == run_once()

    def test_no_wall_time_passes(self):
        import time

        clock = VirtualClock()

        async def main():
            await asyncio.sleep(3600.0)

        start = time.monotonic()
        run_virtual(main(), clock)
        assert clock.now >= 3600.0
        assert time.monotonic() - start < 5.0


class TestDeadlockDetection:
    def test_unwakeable_wait_raises_instead_of_hanging(self):
        async def main():
            await asyncio.Event().wait()

        with pytest.raises(FuzzDeadlockError):
            run_virtual(main())

    def test_timer_rescues_a_pending_wait(self):
        clock = VirtualClock()

        async def main():
            event = asyncio.Event()

            async def setter():
                await asyncio.sleep(2.0)
                event.set()

            task = asyncio.ensure_future(setter())
            await event.wait()
            await task
            return clock.now

        assert run_virtual(main(), clock) >= 2.0
