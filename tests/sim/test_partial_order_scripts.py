"""Tests for ≺SR-style unordered step groups in the simulator."""

from __future__ import annotations

import pytest

from repro.baselines import (
    KorthSpeegleScheduler,
    StrictTwoPhaseLocking,
)
from repro.core import Domain, Predicate, Schema
from repro.errors import SimulationError
from repro.sim import (
    Read,
    SimulationEngine,
    TransactionScript,
    Workload,
    Write,
)
from repro.sim.workload import Unordered
from repro.storage import Database


def _workload(scripts) -> Workload:
    schema = Schema.of("x", "y", "z", domain=Domain.interval(0, 1000))

    def factory() -> Database:
        return Database(
            schema,
            Predicate.parse("x >= 0 & y >= 0 & z >= 0"),
            {"x": 1, "y": 2, "z": 3},
        )

    return Workload("po", scripts, factory)


class TestUnorderedConstruction:
    def test_requires_accesses(self):
        with pytest.raises(SimulationError):
            Unordered(())
        from repro.sim import Think

        with pytest.raises(SimulationError):
            Unordered((Think(1.0),))

    def test_flat_accesses_include_group_members(self):
        script = TransactionScript(
            "A",
            [Read("x"), Unordered((Write("y", 1), Read("z")))],
        )
        entities = {step.entity for step in script.flat_accesses()}
        assert entities == {"x", "y", "z"}
        assert script.read_entities == {"x", "z"}
        assert script.write_entities == {"y"}


class TestExecutionSemantics:
    def test_group_completes_all_members(self):
        scripts = [
            TransactionScript(
                "A",
                [Unordered((Write("x", 5), Write("y", 6), Read("z")))],
            )
        ]
        workload = _workload(scripts)
        db = workload.fresh_database()
        metrics = SimulationEngine(
            StrictTwoPhaseLocking(db), workload
        ).run()
        assert metrics.committed_count == 1
        assert db.store.latest("x").value == 5
        assert db.store.latest("y").value == 6

    def test_blocked_member_is_deferred_not_parked(self):
        # B holds x with a long write; A's group does y first and only
        # waits the tail end for x.
        scripts = [
            TransactionScript(
                "B", [Write("x", 9, duration=30.0)], arrival=0.0
            ),
            TransactionScript(
                "A",
                [
                    Unordered(
                        (
                            Write("x", 5, duration=1.0),
                            Write("y", 6, duration=20.0),
                        )
                    )
                ],
                arrival=1.0,
            ),
        ]
        workload = _workload(scripts)
        flexible = SimulationEngine(
            StrictTwoPhaseLocking(workload.fresh_database()), workload
        ).run()

        sequential_scripts = [
            scripts[0],
            TransactionScript(
                "A",
                [
                    Write("x", 5, duration=1.0),
                    Write("y", 6, duration=20.0),
                ],
                arrival=1.0,
            ),
        ]
        workload2 = _workload(sequential_scripts)
        sequential = SimulationEngine(
            StrictTwoPhaseLocking(workload2.fresh_database()), workload2
        ).run()

        assert flexible.committed_count == 2
        assert sequential.committed_count == 2
        # The ≺SR gain: overlapping y-work with the x wait.
        assert (
            flexible.total_wait_time < sequential.total_wait_time
        )
        assert flexible.makespan <= sequential.makespan

    def test_groups_work_with_split_write_scheduler(self):
        scripts = [
            TransactionScript(
                "A",
                [Unordered((Write("x", 5), Read("y")))],
            ),
            TransactionScript(
                "B",
                [Unordered((Write("y", 7), Read("x")))],
                arrival=0.5,
            ),
        ]
        workload = _workload(scripts)
        scheduler = KorthSpeegleScheduler(workload.fresh_database())
        metrics = SimulationEngine(scheduler, workload).run()
        assert metrics.committed_count == 2
        tm = scheduler.manager
        assert tm.verify_parent_based(tm.root) == []
        assert tm.verify_correctness(tm.root) == []

    def test_symmetric_contention_still_completes(self):
        # Both want both items with long writes: a genuine deadlock
        # under 2PL; detection + restart must converge.
        scripts = [
            TransactionScript(
                "A",
                [
                    Unordered(
                        (
                            Write("x", 5, duration=20.0),
                            Write("y", 6, duration=20.0),
                        )
                    )
                ],
            ),
            TransactionScript(
                "B",
                [
                    Unordered(
                        (
                            Write("x", 7, duration=20.0),
                            Write("y", 8, duration=20.0),
                        )
                    )
                ],
                arrival=1.0,
            ),
        ]
        workload = _workload(scripts)
        metrics = SimulationEngine(
            StrictTwoPhaseLocking(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 2
