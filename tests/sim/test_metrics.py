"""Unit tests for run metrics aggregation."""

from __future__ import annotations

from repro.obs import MetricsRegistry
from repro.sim import RunMetrics, TxnMetrics


class TestTxnMetrics:
    def test_latency(self):
        txn = TxnMetrics("A", arrival=10.0, commit_time=35.0)
        assert txn.committed
        assert txn.latency == 25.0

    def test_uncommitted_has_no_latency(self):
        txn = TxnMetrics("A")
        assert not txn.committed
        assert txn.latency is None


class TestRunMetrics:
    def _metrics(self) -> RunMetrics:
        run = RunMetrics("test-sched", "test-wl")
        a = run.txn("A")
        a.arrival = 0.0
        a.commit_time = 10.0
        a.waits = 2
        a.wait_time = 3.0
        b = run.txn("B")
        b.arrival = 1.0
        b.commit_time = 21.0
        b.restarts = 1
        b.wasted_time = 4.0
        c = run.txn("C")
        c.gave_up = True
        run.makespan = 25.0
        return run

    def test_txn_is_idempotent(self):
        run = RunMetrics("s", "w")
        assert run.txn("A") is run.txn("A")

    def test_aggregates(self):
        run = self._metrics()
        assert run.committed_count == 2
        assert run.gave_up_count == 1
        assert run.total_waits == 2
        assert run.total_wait_time == 3.0
        assert run.total_restarts == 1
        assert run.total_wasted_time == 4.0
        assert run.mean_latency == 15.0  # (10 + 20) / 2
        assert run.max_wait == 3.0
        assert run.throughput == 2 / 25.0

    def test_zero_makespan_throughput(self):
        run = RunMetrics("s", "w")
        assert run.throughput == 0.0
        assert run.mean_latency == 0.0
        assert run.max_wait == 0.0

    def test_empty_run_percentiles(self):
        run = RunMetrics("s", "w")
        assert run.latency_percentile(50) == 0.0
        assert run.wait_percentile(99) == 0.0

    def test_all_gave_up(self):
        run = RunMetrics("s", "w")
        for name in ("A", "B"):
            run.txn(name).gave_up = True
        run.makespan = 5.0
        assert run.committed_count == 0
        assert run.mean_latency == 0.0
        assert run.throughput == 0.0
        assert run.latency_percentile(95) == 0.0

    def test_summary_row_columns(self):
        row = self._metrics().summary_row()
        assert row["scheduler"] == "test-sched"
        assert row["committed"] == 2
        assert set(row) == {
            "scheduler",
            "committed",
            "gave_up",
            "waits",
            "wait_time",
            "restarts",
            "wasted_time",
            "makespan",
            "mean_latency",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "wait_p50",
            "wait_p95",
            "wait_p99",
        }

    def test_summary_row_percentiles_from_txn_fallback(self):
        # No record_* calls were made, so the registry histograms are
        # empty; percentiles fall back to per-transaction aggregates.
        row = self._metrics().summary_row()
        assert row["latency_p50"] == 10.0
        assert row["latency_p99"] == 20.0
        assert row["wait_p50"] == 3.0

    def test_record_methods_feed_registry(self):
        run = RunMetrics("s", "w")
        run.record_wait("A")
        run.record_wait_time("A", 2.0)
        run.record_wait("B")
        run.record_wait_time("B", 6.0)
        run.record_commit("A", commit_time=10.0)
        run.record_commit("B", commit_time=30.0)
        run.record_restart("C", wasted=1.5)
        run.record_gave_up("C")
        assert isinstance(run.registry, MetricsRegistry)
        assert run.total_waits == 2
        assert run.total_restarts == 1
        assert run.gave_up_count == 1
        assert run.latency_percentile(50) == 10.0
        assert run.latency_percentile(99) == 30.0
        assert run.wait_percentile(50) == 2.0
        assert run.wait_percentile(99) == 6.0
