"""Unit tests for run metrics aggregation."""

from __future__ import annotations

from repro.sim import RunMetrics, TxnMetrics


class TestTxnMetrics:
    def test_latency(self):
        txn = TxnMetrics("A", arrival=10.0, commit_time=35.0)
        assert txn.committed
        assert txn.latency == 25.0

    def test_uncommitted_has_no_latency(self):
        txn = TxnMetrics("A")
        assert not txn.committed
        assert txn.latency is None


class TestRunMetrics:
    def _metrics(self) -> RunMetrics:
        run = RunMetrics("test-sched", "test-wl")
        a = run.txn("A")
        a.arrival = 0.0
        a.commit_time = 10.0
        a.waits = 2
        a.wait_time = 3.0
        b = run.txn("B")
        b.arrival = 1.0
        b.commit_time = 21.0
        b.restarts = 1
        b.wasted_time = 4.0
        c = run.txn("C")
        c.gave_up = True
        run.makespan = 25.0
        return run

    def test_txn_is_idempotent(self):
        run = RunMetrics("s", "w")
        assert run.txn("A") is run.txn("A")

    def test_aggregates(self):
        run = self._metrics()
        assert run.committed_count == 2
        assert run.gave_up_count == 1
        assert run.total_waits == 2
        assert run.total_wait_time == 3.0
        assert run.total_restarts == 1
        assert run.total_wasted_time == 4.0
        assert run.mean_latency == 15.0  # (10 + 20) / 2
        assert run.max_wait == 3.0
        assert run.throughput == 2 / 25.0

    def test_zero_makespan_throughput(self):
        run = RunMetrics("s", "w")
        assert run.throughput == 0.0
        assert run.mean_latency == 0.0
        assert run.max_wait == 0.0

    def test_summary_row_columns(self):
        row = self._metrics().summary_row()
        assert row["scheduler"] == "test-sched"
        assert row["committed"] == 2
        assert set(row) == {
            "scheduler",
            "committed",
            "gave_up",
            "waits",
            "wait_time",
            "restarts",
            "wasted_time",
            "makespan",
            "mean_latency",
        }
