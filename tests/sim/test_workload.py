"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Read, Write, cad_workload, oltp_workload


class TestCadWorkload:
    def test_deterministic_with_seed(self):
        a = cad_workload(num_designers=4, seed=9)
        b = cad_workload(num_designers=4, seed=9)
        assert [s.txn_id for s in a.scripts] == [
            s.txn_id for s in b.scripts
        ]
        assert [len(s.steps) for s in a.scripts] == [
            len(s.steps) for s in b.scripts
        ]

    def test_structure(self):
        workload = cad_workload(
            num_designers=5, accesses_per_txn=4, seed=1
        )
        assert len(workload.scripts) == 5
        for script in workload.scripts:
            accesses = [
                step
                for step in script.steps
                if isinstance(step, (Read, Write))
            ]
            assert len(accesses) == 4

    def test_think_time_dominates(self):
        workload = cad_workload(
            num_designers=3, think_time=100.0, seed=2
        )
        for script in workload.scripts:
            assert script.total_think >= 100.0

    def test_predecessor_edges_reference_earlier_designers(self):
        workload = cad_workload(
            num_designers=10, cooperation_probability=1.0, seed=3
        )
        ids = [script.txn_id for script in workload.scripts]
        for index, script in enumerate(workload.scripts):
            for predecessor in script.predecessors:
                assert predecessor in ids[:index]

    def test_fresh_database_per_call(self):
        workload = cad_workload(num_designers=2, seed=4)
        first = workload.fresh_database()
        second = workload.fresh_database()
        assert first is not second
        first.write("m0_e0", 99, "txn")
        assert second.store.values_of("m0_e0") == {1}

    def test_database_objects_are_modules(self):
        workload = cad_workload(
            num_designers=2,
            num_modules=3,
            entities_per_module=2,
            seed=5,
        )
        db = workload.fresh_database()
        module_objects = [obj for obj in db.objects() if len(obj) > 1]
        assert len(module_objects) == 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            cad_workload(num_designers=0)


class TestOltpWorkload:
    def test_no_think_time(self):
        workload = oltp_workload(num_transactions=5, seed=1)
        for script in workload.scripts:
            assert script.total_think == 0.0

    def test_txn_ids_renamed(self):
        workload = oltp_workload(num_transactions=3, seed=1)
        assert all(
            script.txn_id.startswith("T") for script in workload.scripts
        )

    def test_no_cooperation_edges(self):
        workload = oltp_workload(num_transactions=8, seed=2)
        assert all(not s.predecessors for s in workload.scripts)


class TestKeyDistribution:
    @staticmethod
    def _accesses(workload):
        return [
            access.entity
            for script in workload.scripts
            for access in script.flat_accesses()
        ]

    def test_uniform_is_the_historical_stream(self):
        # ``key_dist="uniform"`` must be byte-identical to the default:
        # old seeds keep replaying the exact same access sequence.
        default = cad_workload(num_designers=6, seed=3)
        explicit = cad_workload(
            num_designers=6, seed=3, key_dist="uniform"
        )
        assert self._accesses(default) == self._accesses(explicit)
        assert default.key_dist == explicit.key_dist == "uniform"

    def test_zipf_concentrates_on_low_ranks(self):
        zipf = cad_workload(
            num_designers=12,
            accesses_per_txn=8,
            entities_per_module=6,
            seed=3,
            key_dist="zipf",
        )
        assert zipf.key_dist == "zipf"
        counts = {}
        for entity in self._accesses(zipf):
            rank = int(entity.rpartition("_e")[2])
            counts[rank] = counts.get(rank, 0) + 1
        # rank 0 (the hot entity of every module) dominates the tail
        assert counts[0] > counts[max(counts)]
        assert counts[0] >= max(
            count for rank, count in counts.items() if rank > 0
        )

    def test_zipf_is_seeded(self):
        a = cad_workload(num_designers=5, seed=7, key_dist="zipf")
        b = cad_workload(num_designers=5, seed=7, key_dist="zipf")
        assert self._accesses(a) == self._accesses(b)

    def test_oltp_passes_the_knob_through(self):
        workload = oltp_workload(num_transactions=4, key_dist="zipf")
        assert workload.key_dist == "zipf"

    def test_unknown_distribution_rejected(self):
        with pytest.raises(SimulationError, match="key distribution"):
            cad_workload(num_designers=2, key_dist="pareto")


class TestScriptProperties:
    def test_read_write_entity_sets(self):
        workload = cad_workload(num_designers=3, seed=6)
        for script in workload.scripts:
            reads = {
                step.entity
                for step in script.steps
                if isinstance(step, Read)
            }
            assert script.read_entities == reads

    def test_write_value_resolution(self):
        step = Write("x", lambda ctx: ctx["y"] + 1)
        assert step.resolve({"y": 4}) == 5
        assert Write("x", 9).resolve({}) == 9
