"""Tests for the scheduler-comparison harness (experiment P1)."""

from __future__ import annotations

import pytest

from repro.sim import (
    DEFAULT_SCHEDULERS,
    cad_workload,
    compare_schedulers,
    metrics_table,
    oltp_workload,
    run_one,
)


@pytest.fixture(scope="module")
def cad_results():
    workload = cad_workload(num_designers=5, think_time=80.0, seed=3)
    return compare_schedulers(workload, seed=1)


class TestComparison:
    def test_all_schedulers_present(self, cad_results):
        assert set(cad_results) == set(DEFAULT_SCHEDULERS)

    def test_everyone_commits_everything(self, cad_results):
        for name, metrics in cad_results.items():
            assert metrics.committed_count == 5, name
            assert metrics.gave_up_count == 0, name

    def test_paper_shape_no_lock_waits_for_protocol(self, cad_results):
        # Section 2.4's first goal: reduce number and duration of waits.
        ks = cad_results["korth-speegle"]
        s2pl = cad_results["s2pl"]
        assert ks.total_wait_time <= s2pl.total_wait_time

    def test_paper_shape_fewer_aborts_than_to(self, cad_results):
        # Second goal: reduce the number and effect of aborts.
        ks = cad_results["korth-speegle"]
        to = cad_results["to"]
        assert ks.total_restarts <= to.total_restarts
        assert ks.total_wasted_time <= to.total_wasted_time

    def test_beats_serial_makespan(self, cad_results):
        assert (
            cad_results["korth-speegle"].makespan
            < cad_results["serial"].makespan
        )

    def test_table_rendering(self, cad_results):
        table = metrics_table(cad_results)
        assert "korth-speegle" in table
        assert "makespan" in table


class TestOltpAgreement:
    def test_all_protocols_fine_on_short_transactions(self):
        workload = oltp_workload(num_transactions=10, seed=5)
        results = compare_schedulers(workload, seed=1)
        for name, metrics in results.items():
            assert metrics.committed_count == 10, name


class TestRunOne:
    def test_isolated_database_per_run(self):
        workload = cad_workload(num_designers=3, seed=7)
        first = run_one(DEFAULT_SCHEDULERS["s2pl"], workload, seed=1)
        second = run_one(DEFAULT_SCHEDULERS["s2pl"], workload, seed=1)
        # Deterministic: same metrics both times.
        assert first.summary_row() == second.summary_row()
