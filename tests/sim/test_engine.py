"""Tests for the discrete-event simulation engine."""

from __future__ import annotations


from repro.baselines import (
    KorthSpeegleScheduler,
    SerialExecution,
    StrictTwoPhaseLocking,
    TimestampOrdering,
)
from repro.core import Domain, Entity, Predicate, Schema
from repro.sim import (
    Read,
    SimulationEngine,
    Think,
    TransactionScript,
    Workload,
    Write,
)
from repro.storage import Database


def _tiny_workload(scripts) -> Workload:
    schema = Schema(
        [Entity(name, Domain.interval(0, 1000)) for name in ("x", "y")]
    )

    def factory() -> Database:
        return Database(
            schema, Predicate.parse("x >= 0 & y >= 0"), {"x": 1, "y": 2}
        )

    return Workload("tiny", scripts, factory)


class TestBasicRuns:
    def test_single_transaction_commits(self):
        workload = _tiny_workload(
            [
                TransactionScript(
                    "A",
                    [Think(5.0), Read("x"), Write("y", 9, duration=2.0)],
                )
            ]
        )
        metrics = SimulationEngine(
            StrictTwoPhaseLocking(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 1
        txn = metrics.transactions["A"]
        assert txn.committed
        assert txn.restarts == 0
        assert metrics.makespan >= 7.0

    def test_wait_accounting_under_2pl(self):
        # B needs x while A holds it across a long think.
        scripts = [
            TransactionScript(
                "A", [Write("x", 5), Think(50.0), Read("y")], arrival=0.0
            ),
            TransactionScript("B", [Read("x")], arrival=1.0),
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            StrictTwoPhaseLocking(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 2
        b = metrics.transactions["B"]
        assert b.waits >= 1
        assert b.wait_time >= 45.0

    def test_restart_accounting_under_to(self):
        # B (younger) writes x, then A (older) reads x: late -> abort.
        scripts = [
            TransactionScript(
                "A", [Think(10.0), Read("x")], arrival=0.0
            ),
            TransactionScript("B", [Write("x", 5)], arrival=1.0),
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            TimestampOrdering(workload.fresh_database()),
            workload,
        ).run()
        assert metrics.committed_count == 2
        assert metrics.transactions["A"].restarts >= 1
        assert metrics.total_wasted_time > 0

    def test_give_up_after_max_restarts(self):
        # A transaction that aborts forever: a TO reader behind a
        # perpetually-younger writer would eventually succeed, so force
        # failure with max_restarts=0 instead.
        scripts = [
            TransactionScript("A", [Think(10.0), Read("x")]),
            TransactionScript("B", [Write("x", 5)], arrival=1.0),
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            TimestampOrdering(workload.fresh_database()),
            workload,
            max_restarts=0,
        ).run()
        a = metrics.transactions["A"]
        assert a.gave_up
        assert not a.committed

    def test_serial_runs_everything(self):
        scripts = [
            TransactionScript(f"T{i}", [Read("x"), Write("y", i)])
            for i in range(5)
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            SerialExecution(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 5


class TestKorthSpeegleRuns:
    def test_split_write_window(self):
        # Reader arrives during the writer's 10-unit write window.
        scripts = [
            TransactionScript(
                "W", [Write("x", 5, duration=10.0)], arrival=0.0
            ),
            TransactionScript(
                "R", [Think(5.0), Read("x")], arrival=0.0
            ),
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            KorthSpeegleScheduler(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 2
        reader = metrics.transactions["R"]
        # Blocked for at most the tail of the write window, not for
        # the writer's whole lifetime.
        assert reader.wait_time <= 10.0

    def test_cooperation_edge_ordering(self):
        scripts = [
            TransactionScript("A", [Write("x", 5)], arrival=0.0),
            TransactionScript(
                "B",
                [Read("x")],
                arrival=0.0,
                predecessors=("A",),
            ),
        ]
        workload = _tiny_workload(scripts)
        metrics = SimulationEngine(
            KorthSpeegleScheduler(workload.fresh_database()), workload
        ).run()
        assert metrics.committed_count == 2

    def test_protocol_run_is_verifiably_correct(self):
        scripts = [
            TransactionScript(
                "A", [Read("x"), Write("x", 7)], arrival=0.0
            ),
            TransactionScript(
                "B", [Read("y"), Write("y", 8)], arrival=1.0
            ),
        ]
        workload = _tiny_workload(scripts)
        scheduler = KorthSpeegleScheduler(workload.fresh_database())
        metrics = SimulationEngine(scheduler, workload).run()
        assert metrics.committed_count == 2
        tm = scheduler.manager
        assert tm.verify_parent_based(tm.root) == []
        assert tm.verify_correctness(tm.root) == []
