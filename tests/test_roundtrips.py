"""Hypothesis round-trip properties for the textual surfaces."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Atom, Clause, Predicate, parse
from repro.schedules import Operation, OpType, Schedule

_entities = st.sampled_from(["x", "y", "z", "alpha_3", "m0_e1"])
_txns = st.sampled_from(["1", "2", "3", "T10", "t.0.1"])


@st.composite
def _operations(draw):
    return Operation(
        draw(_txns),
        draw(st.sampled_from([OpType.READ, OpType.WRITE])),
        draw(_entities),
    )


@settings(max_examples=100, deadline=None)
@given(ops=st.lists(_operations(), min_size=1, max_size=12))
def test_schedule_parse_roundtrip(ops):
    """str(schedule) reparses to the identical schedule."""
    schedule = Schedule(ops)
    assert Schedule.parse(str(schedule)) == schedule


@st.composite
def _atoms(draw):
    lhs = draw(
        st.one_of(_entities, st.integers(min_value=-20, max_value=20))
    )
    rhs = draw(
        st.one_of(_entities, st.integers(min_value=-20, max_value=20))
    )
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    return Atom.of(lhs, op, rhs)


@st.composite
def _predicates(draw):
    clauses = []
    for __ in range(draw(st.integers(min_value=1, max_value=4))):
        atoms = tuple(
            draw(_atoms())
            for __ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        clauses.append(Clause(atoms))
    return Predicate(clauses)


@settings(max_examples=100, deadline=None)
@given(predicate=_predicates())
def test_predicate_parse_roundtrip(predicate):
    """str(predicate) reparses to an equal predicate."""
    assert parse(str(predicate)) == predicate


@settings(max_examples=60, deadline=None)
@given(predicate=_predicates(), data=st.data())
def test_predicate_evaluation_stable_through_roundtrip(predicate, data):
    """Round-tripping never changes a predicate's truth value."""
    state = {
        name: data.draw(st.integers(min_value=-20, max_value=20))
        for name in predicate.entities()
    }
    reparsed = parse(str(predicate))
    assert predicate.evaluate(state) == reparsed.evaluate(state)
