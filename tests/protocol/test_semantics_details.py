"""Fine-grained protocol semantics the paper's prose pins down."""

from __future__ import annotations

import pytest

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import (
    GreedyLatestSelector,
    Outcome,
    SatSelector,
    TransactionManager,
    TxnPhase,
)
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0"),
        {"x": 10, "y": 20},
    )


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


class TestReadSemantics:
    def test_reads_serve_the_assigned_input_state(self, db):
        """A transaction is a mapping from its *input* version state:
        reads return the assigned version even after an own write."""
        tm = TransactionManager(db)
        txn = tm.define(tm.root, _spec("x >= 0"), {"x"})
        tm.validate(txn)
        assert tm.read(txn, "x").value == 10
        tm.write(txn, "x", 500)
        # The read still sees the input state, not the own write…
        assert tm.read(txn, "x").value == 10
        # …while the world view (used for O_t) sees the write.
        assert tm.view(txn)["x"] == 500

    def test_abort_due_to_read_lock_on_item_it_writes(self, db):
        """The paper's parenthetical: a transaction can abort because
        of its read lock on a data item it is itself writing."""
        tm = TransactionManager(db)
        pred = tm.define(tm.root, _spec(), {"x"})
        both = tm.define(
            tm.root, _spec("x >= 0"), {"x"}, predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(both)
        tm.read(both, "x")  # R lock on x…
        tm.begin_write(both, "x")  # …while also writing it
        result = tm.write(pred, "x", 42)
        assert both in result.aborted


class TestDeepNesting:
    def test_view_composes_through_levels(self, db):
        tm = TransactionManager(db)
        top = tm.define(tm.root, _spec(), {"x", "y"})
        tm.validate(top)
        mid = tm.define(top, _spec(), {"x", "y"})
        tm.validate(mid)
        leaf_x = tm.define(mid, _spec(), {"x"})
        leaf_y = tm.define(mid, _spec(), {"y"})
        tm.validate(leaf_x)
        tm.validate(leaf_y)
        tm.write(leaf_x, "x", 111)
        tm.write(leaf_y, "y", 222)
        tm.commit(leaf_x)
        # Only leaf_x's write has been released to mid so far.
        assert tm.view(mid)["x"] == 111
        assert tm.view(top)["x"] == 10  # not yet released to top
        tm.commit(leaf_y)
        tm.commit(mid)
        assert tm.view(top) == {"x": 111, "y": 222}
        tm.commit(top)
        assert tm.view(tm.root) == {"x": 111, "y": 222}

    def test_output_condition_at_each_level(self, db):
        tm = TransactionManager(db)
        top = tm.define(
            tm.root, _spec("true", "x = 5 & y = 6"), {"x", "y"}
        )
        tm.validate(top)
        first = tm.define(top, _spec("true", "x = 5"), {"x"})
        second = tm.define(top, _spec("true", "y = 6"), {"y"})
        tm.validate(first)
        tm.validate(second)
        tm.write(first, "x", 5)
        tm.write(second, "y", 6)
        assert tm.commit(first).outcome is Outcome.OK
        assert tm.commit(second).outcome is Outcome.OK
        assert tm.commit(top).outcome is Outcome.OK


class TestAlternativeSelectorsEndToEnd:
    @pytest.mark.parametrize(
        "selector_class", [SatSelector, GreedyLatestSelector]
    )
    def test_full_session(self, db, selector_class):
        tm = TransactionManager(db, selector=selector_class())
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 900)
        picky = tm.define(
            tm.root, _spec("x <= 100 & y >= 0"), set()
        )
        assert tm.validate(picky).outcome is Outcome.OK
        assert tm.assigned_versions(picky)["x"].value == 10
        tm.commit(writer)
        assert tm.read(picky, "x").value == 10
        assert tm.commit(picky).outcome is Outcome.OK
        assert tm.verify_correctness(tm.root) == []


class TestAbortedPredecessorRule:
    def test_successor_commits_past_aborted_predecessor(self, db):
        tm = TransactionManager(db)
        pred = tm.define(tm.root, _spec(), {"x"})
        succ = tm.define(
            tm.root, _spec("y >= 0"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(succ)
        tm.read(succ, "y")
        tm.abort(pred)
        # The aborted predecessor no longer gates the commit.
        assert tm.phase(succ) is TxnPhase.VALIDATED
        assert tm.commit(succ).outcome is Outcome.OK
