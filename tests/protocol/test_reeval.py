"""Tests for Figure 4's re-evaluation decision logic."""

from __future__ import annotations

import pytest

from repro.core import PartialOrder
from repro.protocol import ReevalDecision, figure4_decision


@pytest.fixture
def order():
    # Siblings t.0 < t.1 < t.2 plus incomparable t.3.
    return PartialOrder(
        ["t.0", "t.1", "t.2", "t.3"],
        [("t.0", "t.1"), ("t.1", "t.2")],
    )


class TestFigure4:
    def test_non_siblings_untouched(self, order):
        decision = figure4_decision(
            "t.0", "q.1", None, order, holder_has_read=False
        )
        assert decision is ReevalDecision.NONE

    def test_writer_not_predecessor(self, order):
        # t.3 is incomparable to t.1: its writes do not invalidate.
        decision = figure4_decision(
            "t.3", "t.1", None, order, holder_has_read=True
        )
        assert decision is ReevalDecision.NONE

    def test_successor_write_ignored(self, order):
        # t.2 writes; t.1 precedes it, so t.1 keeps its older world.
        decision = figure4_decision(
            "t.2", "t.1", None, order, holder_has_read=True
        )
        assert decision is ReevalDecision.NONE

    def test_stale_parent_version_reassigned(self, order):
        # Holder read the parent's (initial) version; a predecessor
        # writes: must re-assign while still validating.
        decision = figure4_decision(
            "t.0", "t.1", None, order, holder_has_read=False
        )
        assert decision is ReevalDecision.REASSIGN

    def test_stale_parent_version_after_read_aborts(self, order):
        decision = figure4_decision(
            "t.0", "t.1", None, order, holder_has_read=True
        )
        assert decision is ReevalDecision.ABORT

    def test_fresher_predecessor_version_kept(self, order):
        # Holder reads t.1's version; t.0 (which precedes t.1) writes.
        # The assigned author succeeds the writer: no action.
        decision = figure4_decision(
            "t.0", "t.2", "t.1", order, holder_has_read=True
        )
        assert decision is ReevalDecision.NONE

    def test_stale_predecessor_version_detected(self, order):
        # Holder reads t.0's version; t.1 (between t.0 and t.2) writes.
        decision = figure4_decision(
            "t.1", "t.2", "t.0", order, holder_has_read=False
        )
        assert decision is ReevalDecision.REASSIGN

    def test_rewrite_by_same_author_supersedes(self, order):
        # Documented extension: the writer replaces its own earlier
        # version; holders of the old one must move to the final state.
        decision = figure4_decision(
            "t.0", "t.1", "t.0", order, holder_has_read=False
        )
        assert decision is ReevalDecision.REASSIGN

    def test_writer_is_holder_noop(self, order):
        decision = figure4_decision(
            "t.1", "t.1", None, order, holder_has_read=True
        )
        assert decision is ReevalDecision.NONE
