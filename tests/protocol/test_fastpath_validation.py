"""Differential property tests: bitmask validation vs the object path.

The manager's live path computes §5.1 D-sets through the
:class:`~repro.protocol.fastpath.ParentIndex` bitmask encoding
(``fast_validation=True``); the direct transcription of the three
exclusion rules (``_compute_d_sets_object`` →
:func:`~repro.protocol.validation.compute_d_set`) remains as the
oracle.  These tests drive two managers in lockstep through identical
seeded command sequences — including write-triggered cascading aborts
and predecessor chains — and require byte-for-byte agreement on every
outcome, and they hold the two D-set computations against each other
on the very same manager state.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Domain, Predicate, Schema, Spec
from repro.errors import ProtocolError
from repro.protocol import Outcome, TransactionManager, TxnPhase

from repro.storage import Database

ENTITIES = ("x", "y", "z")


def _database() -> Database:
    schema = Schema.of(*ENTITIES, domain=Domain.interval(0, 10_000))
    constraint = Predicate.parse(
        " & ".join(f"{name} >= 0" for name in ENTITIES)
    )
    return Database(schema, constraint, {name: 1 for name in ENTITIES})


def _managers() -> tuple[TransactionManager, TransactionManager]:
    fast = TransactionManager(_database())
    slow = TransactionManager(_database())
    assert fast.fast_validation  # the live default
    slow.fast_validation = False
    return fast, slow


def _snapshot(tm: TransactionManager) -> dict:
    state: dict = {"versions": {}, "txns": {}}
    for entity in ENTITIES:
        state["versions"][entity] = [
            (v.entity, v.author, v.sequence, v.value)
            for v in tm.database.store.versions(entity)
        ]
    for txn in tm.children_of(tm.root):
        record = tm.record(txn)
        state["txns"][txn] = (
            tm.phase(txn),
            dict(record.assigned),
            dict(record.writes),
            record.abort_reason,
        )
    return state


def _lockstep(fast, slow, step):
    """Apply one closure to both managers; outcomes must agree."""
    results = []
    for tm in (fast, slow):
        try:
            results.append(("ok", step(tm)))
        except ProtocolError as error:
            results.append(("err", str(error)))
    assert results[0] == results[1], results
    assert _snapshot(fast) == _snapshot(slow)
    return results[0]


def _dsets_agree(tm: TransactionManager, txn: str) -> None:
    """The two D-set computations agree on identical manager state."""
    record = tm.record(txn)
    fast_sets = tm._compute_d_sets(record)
    object_sets = tm._compute_d_sets_object(record)
    assert fast_sets == object_sets, (txn, fast_sets, object_sets)


actions = st.lists(
    st.tuples(
        st.sampled_from(["define", "read", "write", "commit", "abort"]),
        st.integers(min_value=0, max_value=2**20),
    ),
    min_size=8,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(actions=actions, seed=st.integers(min_value=0, max_value=10_000))
def test_fast_and_object_validation_agree(actions, seed):
    rng = random.Random(seed)
    fast, slow = _managers()
    live: list[str] = []

    for action, draw in actions:
        pick = random.Random(draw)
        if action == "define" or not live:
            reads = pick.sample(ENTITIES, pick.randint(1, 2))
            writes = set(pick.sample(ENTITIES, pick.randint(0, 2)))
            constraint = " & ".join(f"{e} >= 0" for e in reads)
            candidates = [
                t
                for t in live
                if fast.phase(t)
                in (TxnPhase.VALIDATED, TxnPhase.COMMITTED)
            ]
            predecessors = (
                [pick.choice(candidates)]
                if candidates and pick.random() < 0.4
                else []
            )
            spec = Spec(Predicate.parse(constraint), Predicate.true())

            def define_and_validate(tm):
                txn = tm.define(
                    tm.root, spec, writes, predecessors=predecessors
                )
                result = tm.validate(txn)
                return (txn, result.outcome, dict(tm.record(txn).assigned))

            kind, value = _lockstep(fast, slow, define_and_validate)
            if kind == "ok" and value[1] is Outcome.OK:
                live.append(value[0])
                _dsets_agree(fast, value[0])
                _dsets_agree(slow, value[0])
        else:
            txn = pick.choice(live)
            if fast.phase(txn) is not TxnPhase.VALIDATED:
                continue
            record = fast.record(txn)
            if action == "read" and record.input_set:
                item = pick.choice(sorted(record.input_set))
                _lockstep(fast, slow, lambda tm: tm.read(txn, item).value)
            elif action == "write" and record.update_set:
                item = pick.choice(sorted(record.update_set))
                value = pick.randint(0, 10_000)

                def write(tm):
                    result = tm.write(txn, item, value)
                    # Cascading aborts must fall identically.
                    return tuple(result.aborted)

                _lockstep(fast, slow, write)
            elif action == "commit":
                _lockstep(
                    fast, slow, lambda tm: tm.commit(txn).outcome
                )
            elif action == "abort":
                _lockstep(
                    fast, slow, lambda tm: tuple(tm.abort(txn))
                )
    rng.shuffle(live)
    for txn in live:  # drain both the same way
        if fast.phase(txn) is TxnPhase.VALIDATED:
            _lockstep(fast, slow, lambda tm: tm.commit(txn).outcome)
    assert _snapshot(fast) == _snapshot(slow)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_d_sets_agree_under_aborted_and_intervening_updaters(seed):
    """Rule-3 and predecessor-rule shapes, checked on one manager.

    Builds chains with explicit predecessor edges, live and aborted
    intervening updaters, then compares the bitmask D-sets with the
    rule-by-rule oracle for every still-active child.
    """
    rng = random.Random(seed)
    tm = TransactionManager(_database())
    validated: list[str] = []
    for _ in range(8):
        writes = set(rng.sample(ENTITIES, rng.randint(1, 2)))
        predecessors = (
            rng.sample(validated, rng.randint(0, min(2, len(validated))))
            if validated
            else []
        )
        txn = tm.define(
            tm.root,
            Spec(Predicate.parse("x >= 0"), Predicate.true()),
            writes,
            predecessors=predecessors,
        )
        if tm.validate(txn).outcome is not Outcome.OK:
            continue
        validated.append(txn)
        roll = rng.random()
        if roll < 0.3:
            for entity in sorted(tm.record(txn).update_set):
                tm.write(txn, entity, rng.randint(0, 100))
            tm.commit(txn)
        elif roll < 0.5:
            tm.abort(txn)
            validated.remove(txn)
        for peer in validated:
            if tm.phase(peer) is TxnPhase.VALIDATED:
                fast_sets = tm._compute_d_sets(tm.record(peer))
                object_sets = tm._compute_d_sets_object(tm.record(peer))
                assert fast_sets == object_sets, (peer, seed)
