"""Integration tests for the Section-5 transaction manager."""

from __future__ import annotations

import pytest

from repro.core import Domain, Predicate, Schema, Spec
from repro.errors import LockProtocolError, ProtocolError
from repro.protocol import (
    EventKind,
    Outcome,
    TransactionManager,
    TxnPhase,
)
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", "z", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0 & z >= 0"),
        {"x": 10, "y": 20, "z": 30},
    )


@pytest.fixture
def tm(db):
    return TransactionManager(db)


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


class TestDefinition:
    def test_names_follow_the_paper(self, tm):
        first = tm.define(tm.root, _spec(), {"x"})
        second = tm.define(tm.root, _spec(), {"y"})
        assert first == "t.0"
        assert second == "t.1"

    def test_cycle_in_partial_order_rejected(self, tm):
        a = tm.define(tm.root, _spec(), {"x"})
        b = tm.define(tm.root, _spec(), {"y"}, predecessors=[a])
        with pytest.raises(ProtocolError):
            # c before a but after b would close the cycle a<b<c<a.
            tm.define(
                tm.root, _spec(), {"z"},
                predecessors=[b], successors=[a],
            )

    def test_unknown_sibling_rejected(self, tm):
        with pytest.raises(ProtocolError):
            tm.define(tm.root, _spec(), {"x"}, predecessors=["t.9"])

    def test_unknown_entity_rejected(self, tm):
        with pytest.raises(ProtocolError):
            tm.define(tm.root, _spec(), {"nope"})

    def test_placement_before_committed_reader_prohibited(self, tm):
        reader = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(reader)
        tm.read(reader, "x")
        assert tm.commit(reader).outcome is Outcome.OK
        # New transaction updating x, placed before the committed
        # reader of x: the paper prohibits this construction.
        with pytest.raises(ProtocolError, match="committed"):
            tm.define(
                tm.root, _spec(), {"x"}, successors=[reader]
            )

    def test_placement_before_committed_nonreader_allowed(self, tm):
        other = tm.define(tm.root, _spec("y >= 0"), set())
        tm.validate(other)
        tm.commit(other)
        name = tm.define(tm.root, _spec(), {"x"}, successors=[other])
        assert name == "t.1"

    def test_data_accessor_cannot_nest(self, tm):
        leaf = tm.define(tm.root, _spec("x >= 0"), {"x"})
        tm.validate(leaf)
        tm.read(leaf, "x")
        with pytest.raises(ProtocolError, match="data accesses"):
            tm.define(leaf, _spec(), {"y"})

    def test_nester_cannot_access_data(self, tm):
        parent = tm.define(tm.root, _spec("x >= 0"), {"x", "y"})
        tm.validate(parent)
        tm.define(parent, _spec(), {"y"})
        with pytest.raises(ProtocolError, match="subtransactions"):
            tm.read(parent, "x")


class TestValidation:
    def test_assigns_versions_satisfying_input(self, tm):
        txn = tm.define(tm.root, _spec("x >= 5"), set())
        result = tm.validate(txn)
        assert result.outcome is Outcome.OK
        assert tm.assigned_versions(txn)["x"].value >= 5
        assert tm.phase(txn) is TxnPhase.VALIDATED

    def test_unsatisfiable_input_aborts(self, tm):
        txn = tm.define(tm.root, _spec("x >= 500"), set())
        result = tm.validate(txn)
        assert result.outcome is Outcome.FAILED
        assert tm.phase(txn) is TxnPhase.ABORTED

    def test_blocked_by_in_flight_write(self, tm):
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.begin_write(writer, "x")
        reader = tm.define(tm.root, _spec("x >= 0"), set())
        result = tm.validate(reader)
        assert result.outcome is Outcome.BLOCKED
        assert result.blocked_on == "x"
        # Completing the write unblocks and validation then succeeds.
        write_result = tm.end_write(writer, "x", 99)
        assert reader in write_result.unblocked
        assert tm.validate(reader).outcome is Outcome.OK

    def test_validate_twice_rejected(self, tm):
        txn = tm.define(tm.root, _spec(), set())
        tm.validate(txn)
        with pytest.raises(ProtocolError):
            tm.validate(txn)

    def test_sibling_version_visible_after_write(self, tm):
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 500)
        # A fresh sibling needing x >= 500 can only use writer's version.
        reader = tm.define(tm.root, _spec("x >= 500"), set())
        assert tm.validate(reader).outcome is Outcome.OK
        assert tm.assigned_versions(reader)["x"].author == writer


class TestExecution:
    def test_read_requires_validation(self, tm):
        txn = tm.define(tm.root, _spec("x >= 0"), set())
        with pytest.raises(ProtocolError):
            tm.read(txn, "x")

    def test_read_outside_input_set_rejected(self, tm):
        txn = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(txn)
        with pytest.raises(LockProtocolError):
            tm.read(txn, "y")  # no R_v lock on y

    def test_write_outside_update_set_rejected(self, tm):
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        with pytest.raises(ProtocolError, match="update set"):
            tm.begin_write(txn, "y")

    def test_read_returns_assigned_version(self, tm):
        txn = tm.define(tm.root, _spec("y >= 0"), set())
        tm.validate(txn)
        assert tm.read(txn, "y").value == 20

    def test_concurrent_sibling_writes_allowed(self, tm):
        a = tm.define(tm.root, _spec(), {"x"})
        b = tm.define(tm.root, _spec(), {"x"})
        tm.validate(a)
        tm.validate(b)
        tm.begin_write(a, "x")
        tm.begin_write(b, "x")  # never blocks
        tm.end_write(a, "x", 1)
        tm.end_write(b, "x", 2)
        assert tm.database.store.values_of("x") == {10, 1, 2}

    def test_reader_blocks_only_during_write(self, tm):
        writer = tm.define(tm.root, _spec(), {"y"})
        reader = tm.define(tm.root, _spec("y >= 0"), set())
        tm.validate(writer)
        tm.validate(reader)
        tm.begin_write(writer, "y")
        blocked = tm.read(reader, "y")
        assert blocked.outcome is Outcome.BLOCKED
        result = tm.end_write(writer, "y", 77)
        assert reader in result.unblocked
        assert tm.read(reader, "y").outcome is Outcome.OK


class TestReevalIntegration:
    def test_predecessor_write_reassigns_validating_successor(self, tm):
        pred = tm.define(tm.root, _spec(), {"x"})
        succ = tm.define(
            tm.root, _spec("x >= 0"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(succ)
        result = tm.write(pred, "x", 42)
        assert succ in result.reassigned
        assert tm.assigned_versions(succ)["x"].value == 42

    def test_predecessor_write_aborts_reader_successor(self, tm):
        pred = tm.define(tm.root, _spec(), {"x"})
        succ = tm.define(
            tm.root, _spec("x >= 0"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(succ)
        tm.read(succ, "x")  # reads the stale initial version
        result = tm.write(pred, "x", 42)
        assert succ in result.aborted
        assert tm.phase(succ) is TxnPhase.ABORTED
        reasons = [
            event
            for event in tm.log.of_kind(EventKind.ABORT)
            if event.txn == succ
        ]
        assert "partial-order invalidation" in reasons[0].details["reason"]

    def test_incomparable_sibling_write_is_harmless(self, tm):
        a = tm.define(tm.root, _spec(), {"x"})
        b = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(a)
        tm.validate(b)
        tm.read(b, "x")
        result = tm.write(a, "x", 42)
        assert b not in result.aborted
        assert tm.phase(b) is TxnPhase.VALIDATED

    def test_reassignment_failure_aborts(self, tm):
        pred = tm.define(tm.root, _spec(), {"x"})
        # Successor insists on the initial value, which the
        # predecessor's new version supersedes.
        succ = tm.define(
            tm.root, _spec("x = 10"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(succ)
        result = tm.write(pred, "x", 42)
        assert succ in result.aborted


class TestTermination:
    def test_commit_requires_predecessors(self, tm):
        a = tm.define(tm.root, _spec(), set())
        b = tm.define(tm.root, _spec(), set(), predecessors=[a])
        tm.validate(a)
        tm.validate(b)
        result = tm.commit(b)
        assert result.outcome is Outcome.FAILED
        assert "predecessor" in result.reason
        tm.commit(a)
        assert tm.commit(b).outcome is Outcome.OK

    def test_commit_requires_children_terminated(self, tm):
        parent = tm.define(tm.root, _spec(), {"x"})
        tm.validate(parent)
        child = tm.define(parent, _spec(), {"x"})
        result = tm.commit(parent)
        assert result.outcome is Outcome.FAILED
        assert "subtransaction" in result.reason
        tm.validate(child)
        tm.commit(child)
        assert tm.commit(parent).outcome is Outcome.OK

    def test_commit_requires_output_condition(self, tm):
        txn = tm.define(tm.root, _spec("true", "x = 777"), {"x"})
        tm.validate(txn)
        result = tm.commit(txn)
        assert result.outcome is Outcome.FAILED
        assert "output" in result.reason
        tm.write(txn, "x", 777)
        assert tm.commit(txn).outcome is Outcome.OK

    def test_commit_releases_writes_to_parent_world(self, tm):
        parent = tm.define(tm.root, _spec(), {"x"})
        tm.validate(parent)
        child = tm.define(parent, _spec(), {"x"})
        tm.validate(child)
        tm.write(child, "x", 111)
        tm.commit(child)
        tm.commit(parent)
        assert tm.view(tm.root)["x"] == 111

    def test_abort_cascades_to_readers(self, tm):
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 42)
        reader = tm.define(tm.root, _spec("x = 42"), set())
        tm.validate(reader)
        tm.read(reader, "x")
        aborted = tm.abort(writer)
        assert set(aborted) == {writer, reader}
        assert tm.phase(reader) is TxnPhase.ABORTED

    def test_abort_reassigns_validating_dependents(self, tm):
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 42)
        other = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(other)
        # `other` may have been assigned the 42-version; the abort
        # must leave it on a surviving version.
        tm.abort(writer)
        assert tm.phase(other) is TxnPhase.VALIDATED
        assert tm.assigned_versions(other)["x"].value == 10

    def test_abort_expunges_versions(self, tm):
        writer = tm.define(tm.root, _spec(), {"x"})
        tm.validate(writer)
        tm.write(writer, "x", 42)
        tm.abort(writer)
        assert tm.database.store.values_of("x") == {10}

    def test_abort_subtree(self, tm):
        parent = tm.define(tm.root, _spec(), {"x"})
        tm.validate(parent)
        child = tm.define(parent, _spec(), {"x"})
        tm.validate(child)
        tm.write(child, "x", 5)
        aborted = tm.abort(parent)
        assert set(aborted) == {parent, child}
        assert tm.database.store.values_of("x") == {10}


class TestVerification:
    def test_clean_run_verifies(self, tm):
        a = tm.define(tm.root, _spec("x >= 0", "x >= 0"), {"x"})
        b = tm.define(
            tm.root,
            _spec("x >= 0 & y >= 0", "y >= 0"),
            {"y"},
            predecessors=[a],
        )
        tm.validate(a)
        tm.validate(b)
        tm.read(a, "x")
        tm.write(a, "x", 15)
        tm.commit(a)
        tm.read(b, "x")
        tm.read(b, "y")
        tm.write(b, "y", 25)
        tm.commit(b)
        tm.commit(tm.root)
        assert tm.verify_parent_based(tm.root) == []
        assert tm.verify_correctness(tm.root) == []
