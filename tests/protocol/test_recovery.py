"""Tests for relative-commit undo (§5.1's alternative option)."""

from __future__ import annotations

import pytest

from repro.core import Domain, Predicate, Schema, Spec
from repro.errors import ProtocolError
from repro.protocol import (
    EventKind,
    Outcome,
    TransactionManager,
    TxnPhase,
)
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0"),
        {"x": 10, "y": 20},
    )


@pytest.fixture
def tm(db):
    return TransactionManager(db)


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


class TestUndoRelativeCommit:
    def test_undo_withdraws_released_writes(self, tm):
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        tm.write(txn, "x", 99)
        tm.commit(txn)
        assert tm.view(tm.root)["x"] == 99
        result = tm.undo_relative_commit(txn)
        assert result.outcome is Outcome.OK
        assert tm.phase(txn) is TxnPhase.VALIDATED
        assert tm.view(tm.root)["x"] == 10  # withdrawn

    def test_recommit_after_undo(self, tm):
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        tm.write(txn, "x", 99)
        tm.commit(txn)
        tm.undo_relative_commit(txn)
        assert tm.commit(txn).outcome is Outcome.OK
        assert tm.view(tm.root)["x"] == 99

    def test_other_children_releases_survive(self, tm):
        a = tm.define(tm.root, _spec(), {"x"})
        b = tm.define(tm.root, _spec(), {"y"})
        for txn in (a, b):
            tm.validate(txn)
        tm.write(a, "x", 99)
        tm.write(b, "y", 88)
        tm.commit(a)
        tm.commit(b)
        tm.undo_relative_commit(a)
        view = tm.view(tm.root)
        assert view["x"] == 10
        assert view["y"] == 88  # b's release untouched

    def test_cannot_undo_uncommitted(self, tm):
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        result = tm.undo_relative_commit(txn)
        assert result.outcome is Outcome.FAILED

    def test_cannot_undo_after_parent_committed(self, tm):
        parent = tm.define(tm.root, _spec(), {"x"})
        tm.validate(parent)
        child = tm.define(parent, _spec(), {"x"})
        tm.validate(child)
        tm.write(child, "x", 99)
        tm.commit(child)
        tm.commit(parent)
        result = tm.undo_relative_commit(child)
        assert result.outcome is Outcome.FAILED
        assert "no longer relative" in result.reason

    def test_root_commit_is_absolute(self, tm):
        tm.commit(tm.root)
        result = tm.undo_relative_commit(tm.root)
        assert result.outcome is Outcome.FAILED

    def test_event_logged(self, tm):
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        tm.commit(txn)
        tm.undo_relative_commit(txn)
        assert tm.log.count(EventKind.UNDO_COMMIT) == 1


class TestDefineWithUndo:
    def test_prohibition_remains_the_default(self, tm):
        reader = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(reader)
        tm.read(reader, "x")
        tm.commit(reader)
        with pytest.raises(ProtocolError):
            tm.define(tm.root, _spec(), {"x"}, successors=[reader])

    def test_undo_option_allows_the_construction(self, tm):
        reader = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(reader)
        tm.read(reader, "x")
        tm.commit(reader)
        writer = tm.define(
            tm.root,
            _spec(),
            {"x"},
            successors=[reader],
            undo_committed_successors=True,
        )
        # The committed reader was rolled back to VALIDATED…
        assert tm.phase(reader) is TxnPhase.VALIDATED
        # …and the new transaction precedes it in the partial order.
        assert tm.order_of(tm.root).precedes(writer, reader)
        # The reader cannot recommit before its new predecessor.
        assert tm.commit(reader).outcome is Outcome.FAILED
        tm.validate(writer)
        tm.commit(writer)
        assert tm.commit(reader).outcome is Outcome.OK

    def test_undone_stale_reader_invalidated_by_new_predecessor(self, tm):
        # The safety property the undo path must keep: the undone
        # reader re-holds its read locks, so a write by the newly
        # placed predecessor triggers Figure-4 and aborts it.
        reader = tm.define(tm.root, _spec("x >= 0"), set())
        tm.validate(reader)
        tm.read(reader, "x")
        tm.commit(reader)
        writer = tm.define(
            tm.root,
            _spec(),
            {"x"},
            successors=[reader],
            undo_committed_successors=True,
        )
        tm.validate(writer)
        result = tm.write(writer, "x", 42)
        assert reader in result.aborted
        assert tm.phase(reader) is TxnPhase.ABORTED
