"""Tests for event-log serialization and redo replay."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import Outcome, TransactionManager, TxnPhase
from repro.protocol.replay import (
    histories_match,
    log_from_json,
    log_to_json,
    replay,
)
from repro.storage import Database

ENTITIES = ("x", "y", "z")


def _database() -> Database:
    schema = Schema.of(*ENTITIES, domain=Domain.interval(0, 10_000))
    constraint = Predicate.parse(
        " & ".join(f"{name} >= 0" for name in ENTITIES)
    )
    return Database(schema, constraint, {name: 1 for name in ENTITIES})


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


class TestSerialization:
    def test_roundtrip(self):
        tm = TransactionManager(_database())
        txn = tm.define(tm.root, _spec("x >= 0"), {"y"})
        tm.validate(txn)
        tm.read(txn, "x")
        tm.write(txn, "y", 42)
        tm.commit(txn)
        text = log_to_json(tm.log)
        events = log_from_json(text)
        assert len(events) == len(tm.log)
        kinds = [event.kind for event in events]
        assert kinds == [event.kind for event in tm.log]
        assert events[0].details["parent"] == tm.root

    def test_json_is_plain(self):
        tm = TransactionManager(_database())
        tm.define(tm.root, _spec(), set())
        import json

        parsed = json.loads(log_to_json(tm.log))
        assert isinstance(parsed, list)
        assert parsed[0]["kind"] == "define"


class TestReplay:
    def test_simple_session(self):
        tm = TransactionManager(_database())
        a = tm.define(tm.root, _spec("x >= 0"), {"x"})
        b = tm.define(
            tm.root, _spec("x >= 0 & y >= 0"), {"y"}, predecessors=[a]
        )
        tm.validate(a)
        tm.validate(b)
        tm.read(a, "x")
        tm.write(a, "x", 15)
        tm.commit(a)
        tm.read(b, "x")
        tm.write(b, "y", 25)
        tm.commit(b)
        rebuilt = replay(tm.log, _database())
        assert histories_match(tm, rebuilt)
        assert rebuilt.phase(a) is TxnPhase.COMMITTED
        assert rebuilt.phase(b) is TxnPhase.COMMITTED

    def test_session_with_reeval_abort(self):
        tm = TransactionManager(_database())
        pred = tm.define(tm.root, _spec(), {"x"})
        succ = tm.define(
            tm.root, _spec("x >= 0"), set(), predecessors=[pred]
        )
        tm.validate(pred)
        tm.validate(succ)
        tm.read(succ, "x")  # stale read
        tm.write(pred, "x", 42)  # re-eval aborts succ
        tm.commit(pred)
        rebuilt = replay(tm.log, _database())
        assert histories_match(tm, rebuilt)
        # The derived abort was regenerated, not replayed.
        assert rebuilt.phase(succ) is TxnPhase.ABORTED

    def test_session_with_undo(self):
        tm = TransactionManager(_database())
        txn = tm.define(tm.root, _spec(), {"x"})
        tm.validate(txn)
        tm.write(txn, "x", 99)
        tm.commit(txn)
        tm.undo_relative_commit(txn)
        rebuilt = replay(tm.log, _database())
        assert histories_match(tm, rebuilt)
        assert rebuilt.phase(txn) is TxnPhase.VALIDATED

    def test_replay_via_json(self):
        tm = TransactionManager(_database())
        txn = tm.define(tm.root, _spec("z >= 0"), {"z"})
        tm.validate(txn)
        tm.read(txn, "z")
        tm.write(txn, "z", 7)
        tm.commit(txn)
        events = log_from_json(log_to_json(tm.log))
        rebuilt = replay(events, _database())
        assert histories_match(tm, rebuilt)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_randomized_sessions_replay_identically(self, seed):
        rng = random.Random(seed)
        tm = TransactionManager(_database())
        live = []
        for __ in range(12):
            reads = rng.sample(ENTITIES, rng.randint(1, 2))
            writes = set(rng.sample(ENTITIES, rng.randint(0, 2)))
            predecessors = (
                [rng.choice(live)]
                if live and rng.random() < 0.4
                else []
            )
            predecessors = [
                p
                for p in predecessors
                if tm.phase(p) is not TxnPhase.ABORTED
            ]
            txn = tm.define(
                tm.root,
                _spec(" & ".join(f"{e} >= 0" for e in reads)),
                writes,
                predecessors=predecessors,
            )
            if tm.validate(txn).outcome is not Outcome.OK:
                continue
            live.append(txn)
            for entity in reads:
                if tm.phase(txn) is TxnPhase.VALIDATED:
                    tm.read(txn, entity)
            for entity in sorted(writes):
                if tm.phase(txn) is TxnPhase.VALIDATED:
                    tm.write(txn, entity, rng.randint(0, 10_000))
            if rng.random() < 0.5 and tm.phase(txn) is (
                TxnPhase.VALIDATED
            ):
                tm.commit(txn)
        for txn in live:
            if tm.phase(txn) is TxnPhase.VALIDATED:
                tm.commit(txn)
        rebuilt = replay(log_from_json(log_to_json(tm.log)), _database())
        assert histories_match(tm, rebuilt)
