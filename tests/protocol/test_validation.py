"""Tests for the validation phase: D-sets and version selection."""

from __future__ import annotations

import pytest

from repro.core import PartialOrder, Predicate
from repro.protocol import (
    BacktrackingSelector,
    GreedyLatestSelector,
    SatSelector,
    compute_d_set,
)
from repro.storage.version_store import Version


def _version(entity, value, author, seq):
    return Version(entity, value, author, seq)


PARENT_X = _version("x", 10, None, 0)


class TestDSetRules:
    def _order(self, pairs):
        return PartialOrder(["a", "b", "c", "t"], pairs)

    def test_rule1_successors_excluded(self):
        d_set = compute_d_set(
            "x",
            "t",
            ["a"],
            self._order([("t", "a")]),  # a succeeds t
            {"a": frozenset({"x"})},
            {"a": (_version("x", 5, "a", 1),)},
            PARENT_X,
        )
        assert d_set.members == frozenset()
        # Falls back to the parent's version.
        assert d_set.used_parent_version

    def test_rule2_non_updaters_excluded(self):
        d_set = compute_d_set(
            "x",
            "t",
            ["a"],
            self._order([]),
            {"a": frozenset({"y"})},  # a does not update x
            {"a": ()},
            PARENT_X,
        )
        assert d_set.members == frozenset()

    def test_rule3_intervening_updater_excludes(self):
        # a < b < t, both update x: a is masked by b.
        d_set = compute_d_set(
            "x",
            "t",
            ["a", "b"],
            self._order([("a", "b"), ("b", "t")]),
            {"a": frozenset({"x"}), "b": frozenset({"x"})},
            {
                "a": (_version("x", 5, "a", 1),),
                "b": (_version("x", 6, "b", 2),),
            },
            PARENT_X,
        )
        assert d_set.members == {"b"}

    def test_incomparable_siblings_included(self):
        d_set = compute_d_set(
            "x",
            "t",
            ["a", "b"],
            self._order([]),
            {"a": frozenset({"x"}), "b": frozenset({"x"})},
            {
                "a": (_version("x", 5, "a", 1),),
                "b": (_version("x", 6, "b", 2),),
            },
            PARENT_X,
        )
        assert d_set.members == {"a", "b"}
        # Parent version also allowed when no predecessor is in D.
        assert d_set.used_parent_version
        assert {v.value for v in d_set.candidates} == {5, 6, 10}

    def test_predecessor_restricts_to_its_versions(self):
        d_set = compute_d_set(
            "x",
            "t",
            ["a", "b"],
            self._order([("a", "t")]),  # a precedes t; b incomparable
            {"a": frozenset({"x"}), "b": frozenset({"x"})},
            {
                "a": (_version("x", 5, "a", 1),),
                "b": (_version("x", 6, "b", 2),),
            },
            PARENT_X,
        )
        assert d_set.predecessors == {"a"}
        assert {v.value for v in d_set.candidates} == {5}
        assert not d_set.used_parent_version

    def test_optimistic_unwritten_predecessor_falls_back_to_parent(self):
        # The predecessor has not yet written x: the protocol
        # optimistically hands out the parent's version (re-eval will
        # repair it later).
        d_set = compute_d_set(
            "x",
            "t",
            ["a"],
            self._order([("a", "t")]),
            {"a": frozenset({"x"})},
            {"a": ()},
            PARENT_X,
        )
        assert d_set.predecessors == {"a"}
        assert [v.value for v in d_set.candidates] == [10]
        assert d_set.used_parent_version


class TestSelectors:
    def _d_sets(self):
        from repro.protocol.validation import DSet

        return {
            "x": DSet(
                "x",
                frozenset(),
                frozenset(),
                (
                    _version("x", 1, "a", 1),
                    _version("x", 5, "b", 2),
                ),
                True,
            ),
            "y": DSet(
                "y",
                frozenset(),
                frozenset(),
                (
                    _version("y", 2, "a", 3),
                    _version("y", 9, "b", 4),
                ),
                True,
            ),
        }

    @pytest.mark.parametrize(
        "selector_class",
        [BacktrackingSelector, SatSelector, GreedyLatestSelector],
    )
    def test_selectors_find_satisfying_versions(self, selector_class):
        selector = selector_class()
        chosen = selector.select(
            self._d_sets(), Predicate.parse("x > 2 & y < 5")
        )
        assert chosen is not None
        assert chosen["x"].value == 5
        assert chosen["y"].value == 2

    @pytest.mark.parametrize(
        "selector_class",
        [BacktrackingSelector, SatSelector, GreedyLatestSelector],
    )
    def test_selectors_report_infeasible(self, selector_class):
        selector = selector_class()
        assert (
            selector.select(
                self._d_sets(), Predicate.parse("x > 99")
            )
            is None
        )

    @pytest.mark.parametrize(
        "selector_class",
        [BacktrackingSelector, SatSelector, GreedyLatestSelector],
    )
    def test_pinning_forces_versions(self, selector_class):
        pinned_version = _version("x", 7, "c", 9)
        selector = selector_class()
        chosen = selector.select(
            self._d_sets(),
            Predicate.parse("x > 2"),
            pinned={"x": pinned_version},
        )
        assert chosen is not None
        assert chosen["x"] is pinned_version

    def test_pinning_can_make_infeasible(self):
        pinned_version = _version("x", 0, "c", 9)
        selector = BacktrackingSelector()
        assert (
            selector.select(
                self._d_sets(),
                Predicate.parse("x > 2"),
                pinned={"x": pinned_version},
            )
            is None
        )

    def test_greedy_probe_statistics(self):
        selector = GreedyLatestSelector()
        # Latest versions are x=5, y=9: satisfies x > 2.
        selector.select(self._d_sets(), Predicate.parse("x > 2"))
        assert selector.probe_hits == 1
        # Needs older y: probe misses, fallback succeeds.
        selector.select(self._d_sets(), Predicate.parse("y < 5"))
        assert selector.probe_misses == 1

    def test_value_tie_prefers_newest_version(self):
        from repro.protocol.validation import DSet

        d_sets = {
            "x": DSet(
                "x",
                frozenset(),
                frozenset(),
                (
                    _version("x", 5, "old", 1),
                    _version("x", 5, "new", 2),
                ),
                False,
            )
        }
        chosen = BacktrackingSelector().select(
            d_sets, Predicate.parse("x = 5")
        )
        assert chosen["x"].author == "new"
