"""Tests for the protocol event log."""

from __future__ import annotations

from repro.protocol import Event, EventKind, EventLog


class TestEventLog:
    def test_record_and_iterate(self):
        log = EventLog()
        log.record(EventKind.DEFINE, "t.0", parent="t")
        log.record(EventKind.COMMIT, "t.0")
        assert len(log) == 2
        kinds = [event.kind for event in log]
        assert kinds == [EventKind.DEFINE, EventKind.COMMIT]

    def test_of_kind(self):
        log = EventLog()
        log.record(EventKind.READ, "t.0", entity="x")
        log.record(EventKind.READ, "t.1", entity="y")
        log.record(EventKind.ABORT, "t.1")
        assert len(log.of_kind(EventKind.READ)) == 2
        assert log.count(EventKind.ABORT) == 1

    def test_for_txn(self):
        log = EventLog()
        log.record(EventKind.READ, "t.0", entity="x")
        log.record(EventKind.READ, "t.1", entity="y")
        assert len(log.for_txn("t.0")) == 1

    def test_str_rendering(self):
        event = Event(EventKind.BLOCKED, "t.2", {"entity": "x"})
        assert str(event) == "[blocked] t.2 entity=x"

    def test_dump(self):
        log = EventLog()
        log.record(EventKind.DEFINE, "t.0")
        log.record(EventKind.VALIDATE, "t.0", ok=True)
        dump = log.dump()
        assert "[define] t.0" in dump
        assert dump.count("\n") == 1
