"""The commit-stability gate: acked commits must be crash-durable.

Recovery expunges versions authored by transactions in flight at the
crash and cascade-aborts their committed readers — so the dispatcher
must not acknowledge a commit while any version in its input
assignment has a live author.  :meth:`unstable_reads_from` is the
read-only query that gate asks.
"""

from __future__ import annotations

import pytest

from repro.core import Domain, Predicate, Schema, Spec
from repro.protocol import Outcome, TransactionManager
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0"),
        {"x": 10, "y": 20},
    )


@pytest.fixture
def tm(db):
    return TransactionManager(db)


def _spec(i="true", o="true"):
    return Spec(Predicate.parse(i), Predicate.parse(o))


def _writer(tm, entity="x", value=5):
    txn = tm.define(tm.root, _spec(o=f"{entity} >= 0"), {entity})
    assert tm.validate(txn).outcome is Outcome.OK
    assert tm.write(txn, entity, value).outcome is Outcome.OK
    return txn


def _reader_of(tm, entity="x"):
    txn = tm.define(
        tm.root, _spec(i=f"{entity} >= 0", o=f"{entity} >= 0"),
        {entity},
    )
    assert tm.validate(txn).outcome is Outcome.OK
    return txn


class TestUnstableReadsFrom:
    def test_initial_versions_are_stable(self, tm):
        reader = _reader_of(tm, "x")
        assert tm.unstable_reads_from(reader) is None

    def test_live_author_is_reported(self, tm):
        writer = _writer(tm, "x")
        reader = _reader_of(tm, "x")
        record = tm.record(reader)
        if all(
            version.author != writer
            for version in record.assigned.values()
        ):
            pytest.skip("selection did not pick the dirty version")
        assert tm.unstable_reads_from(reader) == writer

    def test_commit_of_the_author_stabilizes(self, tm):
        writer = _writer(tm, "x")
        reader = _reader_of(tm, "x")
        record = tm.record(reader)
        if all(
            version.author != writer
            for version in record.assigned.values()
        ):
            pytest.skip("selection did not pick the dirty version")
        assert tm.unstable_reads_from(reader) == writer
        assert tm.commit(writer).outcome is Outcome.OK
        assert tm.unstable_reads_from(reader) is None
        assert tm.commit(reader).outcome is Outcome.OK

    def test_own_versions_are_stable(self, tm):
        writer = _writer(tm, "x")
        assert tm.unstable_reads_from(writer) is None
        assert tm.commit(writer).outcome is Outcome.OK

    def test_gate_is_read_only(self, tm):
        writer = _writer(tm, "x")
        reader = _reader_of(tm, "x")
        before = tm.record(reader).phase
        tm.unstable_reads_from(reader)
        tm.unstable_reads_from(writer)
        assert tm.record(reader).phase is before

    def test_root_is_never_gated(self, tm):
        assert tm.unstable_reads_from(tm.root) is None
