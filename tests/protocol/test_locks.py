"""Tests for the Figure-3 lock manager."""

from __future__ import annotations

import pytest

from repro.errors import LockProtocolError
from repro.protocol import (
    LockMode,
    LockOutcome,
    LockTable,
    compatible,
    lock_compatibility_matrix,
)


class TestCompatibility:
    def test_figure3_matrix(self):
        matrix = lock_compatibility_matrix()
        # Read-side locks coexist with everything but an active write.
        assert matrix[("R_v", "R_v")] is True
        assert matrix[("R_v", "R")] is True
        assert matrix[("R", "R_v")] is True
        assert matrix[("R", "R")] is True
        # Writes are never blocked ("a write request can never fail").
        assert matrix[("R_v", "W")] is True
        assert matrix[("R", "W")] is True
        assert matrix[("W", "W")] is True
        # Readers block on an in-flight write.
        assert matrix[("W", "R_v")] is False
        assert matrix[("W", "R")] is False

    def test_compatible_function(self):
        assert not compatible(LockMode.W, LockMode.R)
        assert compatible(LockMode.W, LockMode.W)


class TestLockTable:
    def test_grant_and_holds(self):
        table = LockTable()
        assert (
            table.request("a", "x", LockMode.RV) is LockOutcome.GRANTED
        )
        assert table.holds("a", "x", LockMode.RV)

    def test_read_blocked_by_write(self):
        table = LockTable()
        table.request("w", "x", LockMode.W)
        assert (
            table.request("r", "x", LockMode.RV) is LockOutcome.BLOCKED
        )
        assert table.queued("x")[0].txn == "r"

    def test_own_write_does_not_block_own_read(self):
        table = LockTable()
        table.request("a", "x", LockMode.RV)
        table.request("a", "x", LockMode.W)
        assert (
            table.request("a", "x", LockMode.R) is LockOutcome.GRANTED
        )

    def test_write_never_blocked(self):
        table = LockTable()
        table.request("a", "x", LockMode.RV)
        table.request("b", "x", LockMode.R)
        table.request("c", "x", LockMode.W)
        assert (
            table.request("d", "x", LockMode.W) is LockOutcome.GRANTED
        )

    def test_upgrade_requires_rv(self):
        table = LockTable()
        with pytest.raises(LockProtocolError):
            table.upgrade_rv_to_r("a", "x")
        table.request("a", "x", LockMode.RV)
        assert table.upgrade_rv_to_r("a", "x") is LockOutcome.GRANTED

    def test_release_drains_fifo(self):
        table = LockTable()
        table.request("w", "x", LockMode.W)
        table.request("r1", "x", LockMode.RV)
        table.request("r2", "x", LockMode.RV)
        granted = table.release("w", "x", LockMode.W)
        assert [req.txn for req in granted] == ["r1", "r2"]
        assert table.holds("r1", "x", LockMode.RV)

    def test_release_unheld_lock_rejected(self):
        table = LockTable()
        with pytest.raises(LockProtocolError):
            table.release("a", "x", LockMode.W)

    def test_release_all(self):
        table = LockTable()
        table.request("a", "x", LockMode.RV)
        table.request("a", "y", LockMode.W)
        table.request("b", "y", LockMode.R)  # blocked
        granted = table.release_all("a")
        assert not table.holds("a", "x", LockMode.RV)
        assert any(req.txn == "b" for req in granted)

    def test_release_all_purges_queue_entries(self):
        table = LockTable()
        table.request("w", "x", LockMode.W)
        table.request("a", "x", LockMode.R)
        table.release_all("a")
        assert not table.queued("x")

    def test_read_side_holders(self):
        table = LockTable()
        table.request("a", "x", LockMode.RV)
        table.request("b", "x", LockMode.RV)
        table.upgrade_rv_to_r("b", "x")
        assert table.read_side_holders("x") == {"a", "b"}

    def test_locks_of(self):
        table = LockTable()
        table.request("a", "x", LockMode.RV)
        table.request("a", "y", LockMode.W)
        held = set(table.locks_of("a"))
        assert held == {("x", LockMode.RV), ("y", LockMode.W)}

    def test_queue_fifo_respects_remaining_writer(self):
        table = LockTable()
        table.request("w1", "x", LockMode.W)
        table.request("w2", "x", LockMode.W)
        table.request("r", "x", LockMode.R)
        # Releasing only w1 leaves w2's write in flight: r stays queued.
        granted = table.release("w1", "x", LockMode.W)
        assert granted == []
        granted = table.release("w2", "x", LockMode.W)
        assert [req.txn for req in granted] == ["r"]
