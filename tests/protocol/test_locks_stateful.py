"""Stateful property test for the lock table (Figure 3 invariants)."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import LockProtocolError
from repro.protocol import LockMode, LockTable, compatible

TXNS = ["a", "b", "c", "d"]
ENTITIES = ["x", "y"]


class LockTableMachine(RuleBasedStateMachine):
    """Random request/release traffic must preserve Figure 3."""

    def __init__(self) -> None:
        super().__init__()
        self.table = LockTable()

    @rule(
        txn=st.sampled_from(TXNS),
        entity=st.sampled_from(ENTITIES),
        mode=st.sampled_from(list(LockMode)),
    )
    def request(self, txn, entity, mode):
        self.table.request(txn, entity, mode)

    @rule(
        txn=st.sampled_from(TXNS),
        entity=st.sampled_from(ENTITIES),
        mode=st.sampled_from(list(LockMode)),
    )
    def release(self, txn, entity, mode):
        try:
            self.table.release(txn, entity, mode)
        except LockProtocolError:
            pass  # releasing an unheld lock is rejected, not corrupting

    @rule(txn=st.sampled_from(TXNS))
    def release_all(self, txn):
        self.table.release_all(txn)

    @invariant()
    def no_incompatible_grants(self):
        """No two *different* transactions hold incompatible locks."""
        for entity in ENTITIES:
            for held_mode in LockMode:
                holders = self.table.holders(entity, held_mode)
                for other_mode in LockMode:
                    others = self.table.holders(entity, other_mode)
                    for first in holders:
                        for second in others:
                            if first == second:
                                continue
                            assert compatible(
                                held_mode, other_mode
                            ) or compatible(other_mode, held_mode), (
                                entity,
                                held_mode,
                                other_mode,
                            )

    @invariant()
    def queued_requests_really_blocked(self):
        """Nothing sits in a queue while it could be granted."""
        for entity in ENTITIES:
            for request in self.table.queued(entity):
                blocked = False
                for held_mode in LockMode:
                    holders = self.table.holders(entity, held_mode) - {
                        request.txn
                    }
                    if holders and not compatible(
                        held_mode, request.mode
                    ):
                        blocked = True
                assert blocked, (entity, request)


LockTableMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestLockTableStateful = LockTableMachine.TestCase
