"""Randomized protocol driving with global invariants (L4/T2 fuzz).

A seeded driver issues random define/validate/read/write/commit/abort
sequences against the transaction manager and asserts, after every
step, the invariants the paper's proofs rest on:

* committed transactions verify as parent-based and correct;
* terminated transactions hold no locks;
* aborted authors have no surviving versions;
* the initial versions always survive;
* every assigned version is live in the store.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Domain, Predicate, Schema, Spec
from repro.errors import ProtocolError
from repro.protocol import Outcome, TransactionManager, TxnPhase
from repro.storage import Database

ENTITIES = ("x", "y", "z")


def _database() -> Database:
    schema = Schema.of(*ENTITIES, domain=Domain.interval(0, 10_000))
    constraint = Predicate.parse(
        " & ".join(f"{name} >= 0" for name in ENTITIES)
    )
    return Database(
        schema, constraint, {name: 1 for name in ENTITIES}
    )


def _check_invariants(tm: TransactionManager) -> None:
    assert tm.verify_parent_based(tm.root) == []
    assert tm.verify_correctness(tm.root) == []
    store = tm.database.store
    for entity in ENTITIES:
        versions = store.versions(entity)
        assert versions[0].author is None  # initial survives
        for version in versions:
            if version.author is None:
                continue
            author_phase = tm.phase(version.author)
            assert author_phase is not TxnPhase.ABORTED
    for txn in tm.children_of(tm.root):
        if tm.phase(txn) in (TxnPhase.COMMITTED, TxnPhase.ABORTED):
            assert tm.locks.locks_of(txn) == []
        record = tm.record(txn)
        if tm.phase(txn) is TxnPhase.VALIDATED:
            for item, version in record.assigned.items():
                live = store.versions(item)
                assert version in live, (txn, item, version)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_driving_preserves_invariants(seed):
    rng = random.Random(seed)
    tm = TransactionManager(_database())
    live: list[str] = []

    for _ in range(40):
        action = rng.choice(
            ["define", "read", "write", "commit", "abort"]
        )
        try:
            if action == "define" or not live:
                reads = rng.sample(ENTITIES, rng.randint(1, 2))
                writes = set(
                    rng.sample(ENTITIES, rng.randint(0, 2))
                )
                constraint = " & ".join(
                    f"{e} >= 0" for e in reads
                )
                candidates = [
                    t
                    for t in live
                    if tm.phase(t)
                    in (TxnPhase.VALIDATED, TxnPhase.COMMITTED)
                ]
                predecessors = (
                    [rng.choice(candidates)]
                    if candidates and rng.random() < 0.4
                    else []
                )
                txn = tm.define(
                    tm.root,
                    Spec(
                        Predicate.parse(constraint),
                        Predicate.true(),
                    ),
                    writes,
                    predecessors=predecessors,
                )
                if tm.validate(txn).outcome is Outcome.OK:
                    live.append(txn)
            else:
                txn = rng.choice(live)
                phase = tm.phase(txn)
                if phase is not TxnPhase.VALIDATED:
                    continue
                record = tm.record(txn)
                if action == "read" and record.input_set:
                    tm.read(txn, rng.choice(sorted(record.input_set)))
                elif action == "write" and record.update_set:
                    tm.write(
                        txn,
                        rng.choice(sorted(record.update_set)),
                        rng.randint(0, 10_000),
                    )
                elif action == "commit":
                    tm.commit(txn)
                elif action == "abort":
                    tm.abort(txn)
        except ProtocolError:
            pass  # illegal step attempted; the TM refused — fine
        _check_invariants(tm)

    # Drain: try to commit everything still validated.
    for _ in range(3):
        for txn in live:
            if tm.phase(txn) is TxnPhase.VALIDATED:
                tm.commit(txn)
    _check_invariants(tm)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_no_step_corrupts_the_store(seed):
    """The store's version counts only move by the protocol's rules."""
    rng = random.Random(seed)
    tm = TransactionManager(_database())
    store = tm.database.store
    baseline = store.total_versions()
    writes_done = 0
    expunged_authors: set[str] = set()

    txns = []
    for index in range(6):
        txn = tm.define(
            tm.root,
            Spec(Predicate.parse("x >= 0"), Predicate.true()),
            set(rng.sample(ENTITIES, rng.randint(1, 2))),
        )
        if tm.validate(txn).outcome is Outcome.OK:
            txns.append(txn)
    for txn in txns:
        record = tm.record(txn)
        for entity in sorted(record.update_set):
            if tm.phase(txn) is not TxnPhase.VALIDATED:
                break
            result = tm.write(txn, entity, rng.randint(0, 100))
            writes_done += 1
            for victim in result.aborted:
                expunged_authors.add(victim)
    alive_writes = sum(
        1
        for version in store
        if version.author is not None
        and version.author not in expunged_authors
    )
    assert store.total_versions() == baseline + alive_writes
