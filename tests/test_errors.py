"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.DomainError,
            errors.UnknownEntityError,
            errors.PredicateError,
            errors.PredicateParseError,
            errors.UnboundEntityError,
            errors.TransactionError,
            errors.InvalidNameError,
            errors.NestingError,
            errors.ExecutionError,
            errors.PartialOrderViolation,
            errors.ScheduleError,
            errors.ProtocolError,
            errors.LockProtocolError,
            errors.ValidationFailure,
            errors.SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_domain_error_is_schema_error(self):
        assert issubclass(errors.DomainError, errors.SchemaError)

    def test_parse_error_is_predicate_error(self):
        assert issubclass(
            errors.PredicateParseError, errors.PredicateError
        )

    def test_lock_error_is_protocol_error(self):
        assert issubclass(
            errors.LockProtocolError, errors.ProtocolError
        )


class TestTransactionAborted:
    def test_attributes(self):
        exc = errors.TransactionAborted("t.3", "deadlock")
        assert exc.transaction == "t.3"
        assert exc.reason == "deadlock"
        assert "t.3" in str(exc)
        assert "deadlock" in str(exc)

    def test_catchable_as_protocol_error(self):
        with pytest.raises(errors.ProtocolError):
            raise errors.TransactionAborted("t.1", "x")

    def test_one_except_clause_catches_everything(self):
        for exc in (
            errors.SchemaError("x"),
            errors.TransactionAborted("t", "r"),
            errors.SimulationError("y"),
        ):
            with pytest.raises(errors.ReproError):
                raise exc
