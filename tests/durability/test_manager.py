"""DurableTransactionManager tests: logging, checkpoint cadence, parity."""

from __future__ import annotations

import pytest

from repro.durability import DurableTransactionManager, recover
from repro.durability.records import (
    OP_ABORT,
    OP_REASSIGN,
    OP_UNDO_COMMIT,
    OP_WRITE,
)
from repro.durability.snapshot import CheckpointStore
from repro.durability.wal import scan_wal
from repro.errors import RecoveryError
from repro.protocol.scheduler import Outcome, TransactionManager
from repro.protocol.validation import GreedyLatestSelector

from .conftest import make_database, run_leaf, spec


class TestLiveParity:
    def test_behaves_like_the_in_memory_manager(self, fresh_manager):
        reference = TransactionManager(make_database())
        for manager in (fresh_manager, reference):
            run_leaf(manager, "x", 11)
            run_leaf(manager, "y", 22)
            name = run_leaf(manager, "z", 33, commit=False)
            manager.abort(name)
        assert fresh_manager.view(fresh_manager.root) == reference.view(
            reference.root
        )

    def test_recovered_equals_live(self, wal_dir, fresh_manager):
        run_leaf(fresh_manager, "x", 11)
        doomed = run_leaf(fresh_manager, "y", 22, commit=False)
        fresh_manager.abort(doomed)
        run_leaf(fresh_manager, "y", 44)
        live_view = dict(fresh_manager.view(fresh_manager.root))
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.manager.view(result.manager.root) == live_view

    def test_fresh_open_requires_database_factory(self, wal_dir):
        with pytest.raises(RecoveryError, match="no database factory"):
            DurableTransactionManager.open(wal_dir)


class TestLoggedOperations:
    def test_write_logged_before_store_issues_stamp(
        self, wal_dir, fresh_manager
    ):
        run_leaf(fresh_manager, "x", 11)
        fresh_manager.flush()
        writes = [
            record
            for record in scan_wal(wal_dir).records
            if record.op == OP_WRITE
        ]
        assert len(writes) == 1
        version = fresh_manager.record("t.0").writes["x"]
        assert writes[0].data["sequence"] == version.sequence

    def test_rejected_write_is_not_logged(self, wal_dir, fresh_manager):
        name = fresh_manager.define(
            fresh_manager.root, spec("x >= 0"), ["x"]
        )
        assert fresh_manager.validate(name).outcome is Outcome.OK
        assert fresh_manager.read(name, "x").outcome is Outcome.OK
        assert fresh_manager.begin_write(name, "x").outcome is Outcome.OK
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            fresh_manager.end_write(name, "x", 10_000)  # out of domain
        fresh_manager.flush()
        assert not [
            record
            for record in scan_wal(wal_dir).records
            if record.op == OP_WRITE
        ]

    def test_abort_logs_full_cascade(self, wal_dir):
        manager, _ = DurableTransactionManager.open(
            wal_dir, make_database, selector=GreedyLatestSelector()
        )
        author = run_leaf(manager, "x", 10, commit=False)
        reader = manager.define(
            manager.root, spec("x >= 0 & y >= 0"), ["y"]
        )
        assert manager.validate(reader).outcome is Outcome.OK
        assert manager.read(reader, "x").outcome is Outcome.OK
        names = manager.abort(author)
        assert set(names) == {author, reader}
        manager.flush()
        aborts = [
            record
            for record in scan_wal(wal_dir).records
            if record.op == OP_ABORT
        ]
        logged = {
            name
            for record in aborts
            for name in record.data["aborted"]
        }
        assert logged == {author, reader}
        # The author's record carries the expunged x-version.
        assert any(record.data["expunged"] for record in aborts)
        manager.close()

    def test_cascade_reassignments_logged_and_replayable(self, wal_dir):
        manager, _ = DurableTransactionManager.open(
            wal_dir, make_database, selector=GreedyLatestSelector()
        )
        author = run_leaf(manager, "x", 10, commit=False)
        bystander = manager.define(
            manager.root, spec("x >= 0"), ["x"]
        )
        assert manager.validate(bystander).outcome is Outcome.OK
        assert (
            manager.record(bystander).assigned["x"].author == author
        )
        manager.abort(author)  # bystander re-selects, not yet read
        assert manager.record(bystander).assigned["x"].author is None
        reassigns = [
            record
            for record in scan_wal(wal_dir).records
            if record.op == OP_REASSIGN and record.txn == bystander
        ]
        assert reassigns
        result = recover(wal_dir)
        assert result.verified, result.violations
        recovered = result.manager.record(bystander)
        assert recovered.assigned["x"].author is None

    def test_undo_relative_commit_logged(self, wal_dir, fresh_manager):
        parent = fresh_manager.define(
            fresh_manager.root, spec("x >= 0"), ["x"]
        )
        assert fresh_manager.validate(parent).outcome is Outcome.OK
        child = run_leaf(fresh_manager, "x", 33, parent=parent)
        undone = fresh_manager.undo_relative_commit(child)
        assert undone.outcome is Outcome.OK
        fresh_manager.flush()
        assert [
            record.txn
            for record in scan_wal(wal_dir).records
            if record.op == OP_UNDO_COMMIT
        ] == [child]


class TestCheckpointCadence:
    def test_checkpoint_every_triggers_automatically(self, wal_dir):
        manager, _ = DurableTransactionManager.open(
            wal_dir, make_database, checkpoint_every=5
        )
        store = CheckpointStore(wal_dir)
        bootstrap = len(store.checkpoints())
        run_leaf(manager, "x", 11)  # 5 records: define..commit
        assert len(store.checkpoints()) == bootstrap + 1
        manager.close(checkpoint=False)

    def test_zero_means_manual_only(self, wal_dir, fresh_manager):
        store = CheckpointStore(wal_dir)
        bootstrap = len(store.checkpoints())
        for value in (11, 22, 33):
            run_leaf(fresh_manager, "x", value)
        assert len(store.checkpoints()) == bootstrap

    def test_retention_drops_covered_segments(self, wal_dir):
        manager, _ = DurableTransactionManager.open(
            wal_dir, make_database, checkpoint_every=5, retain=2
        )
        for value in range(10):
            run_leaf(manager, "x", value)
        store = CheckpointStore(wal_dir)
        assert len(store.checkpoints()) == 2
        oldest = store.oldest_retained_lsn()
        # Every surviving record is reachable from a retained
        # checkpoint; nothing older is kept around.
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.checkpoint_lsn >= oldest
        manager.close(checkpoint=False)

    def test_close_checkpoints_by_default(self, wal_dir):
        manager, _ = DurableTransactionManager.open(
            wal_dir, make_database
        )
        store = CheckpointStore(wal_dir)
        before = len(store.checkpoints())
        run_leaf(manager, "x", 11)
        manager.close()
        assert len(store.checkpoints()) == before + 1
        result = recover(wal_dir)
        assert result.records_replayed == 0  # checkpoint covers all
        assert result.verified, result.violations
