"""Shutdown with a pending group-commit window: nothing lost or doubled.

With a large ``flush_interval`` the WAL batches fsyncs; records a
client was already acknowledged for can still be sitting in the
group-commit window when ``close()`` runs.  The shutdown checkpoint
must flush that window exactly once — recovery after a clean close has
to see every committed transaction exactly once, in order.
"""

from __future__ import annotations

from repro.durability import DurableTransactionManager, recover
from repro.durability.records import OP_COMMIT
from repro.durability.wal import scan_wal

from .conftest import make_database, run_leaf


def test_close_flushes_pending_group_commit_window(wal_dir):
    manager, recovery = DurableTransactionManager.open(
        wal_dir, make_database, flush_interval=3600.0
    )
    assert recovery is None
    names = [run_leaf(manager, "x", value) for value in (7, 9, 11)]
    # The window is still open: the commits are appended (os.write)
    # but not yet fsynced by the periodic flusher.
    assert manager.wal.pending_records > 0
    manager.close()
    assert manager.wal.closed

    result = recover(wal_dir, verify=True)
    assert result.verified, result.violations
    assert list(result.committed) == names

    commit_records = [
        record
        for record in scan_wal(wal_dir).records
        if record.op == OP_COMMIT and record.txn in set(names)
    ]
    assert len(commit_records) == len(names)  # exactly once each
    assert [record.txn for record in commit_records] == names


def test_close_with_checkpoint_pending_window_round_trips(wal_dir):
    # Same shape but with checkpoints on: the shutdown checkpoint and
    # the window flush must not duplicate or reorder commits.
    manager, recovery = DurableTransactionManager.open(
        wal_dir,
        make_database,
        flush_interval=3600.0,
        checkpoint_every=4,
        retain=99,
    )
    assert recovery is None
    names = [run_leaf(manager, "y", value) for value in (2, 4, 6, 8)]
    manager.close()

    result = recover(wal_dir, verify=True)
    assert result.verified, result.violations
    assert list(result.committed) == names

    reopened, recovery = DurableTransactionManager.open(
        wal_dir, make_database, flush_interval=3600.0
    )
    assert recovery is not None and recovery.verified
    assert list(recovery.committed) == names
    reopened.close()
