"""Acceptance sweep: every crash point, both survival models.

For EVERY registered :data:`CRASH_POINTS` entry, a crash followed by
recovery must yield exactly the committed prefix — no committed write
lost, no uncommitted write visible — and the recovered state must
satisfy the consistency predicate (both enforced by the recovery
pass's own verification, asserted here via ``recovery.verified``).

The one permissible loss is the transaction whose *own* commit append
was still in flight when the crash hit: its client never received an
acknowledgment.  ``kill`` mode may lose it only to a torn record
(``wal.mid_record``); ``powerloss`` also to an unflushed one
(``wal.before_flush``).
"""

from __future__ import annotations

import pytest

from repro.durability import simulate_crash
from repro.durability.crashpoints import CRASH_POINTS
from repro.durability.harness import MODES

from .conftest import make_database, run_leaf

#: Crash points at which the not-yet-acknowledged commit may vanish.
LOSS_OK = {
    "kill": {"wal.mid_record"},
    "powerloss": {"wal.mid_record", "wal.before_flush"},
}


def workload(manager):
    for index, (entity, value) in enumerate(
        [("x", 11), ("y", 22), ("z", 33), ("x", 44), ("y", 55), ("z", 66)]
    ):
        run_leaf(manager, entity, value)
    run_leaf(manager, "z", 77, commit=False)  # caught in flight


def sweep_one(tmp_path, crash_point, mode, at_hit=1):
    out = simulate_crash(
        tmp_path,
        make_database,
        workload,
        crash_point=crash_point,
        at_hit=at_hit,
        mode=mode,
        flush_interval=0.0,  # sync commit: fsync per durable op
        checkpoint_every=8,  # several checkpoints mid-workload
    )
    assert out.error is None, f"workload died of {out.error!r}"
    assert out.fired, f"{crash_point} never fired in this workload"
    assert out.recovery.verified, out.recovery.violations

    pre = set(out.pre_crash_committed)
    recovered = set(out.recovery.committed)
    survivors_or_dead = recovered | set(out.recovery.undo.all_dead)

    # No phantom commit: recovery never invents a commit the live
    # manager had not performed.
    assert recovered <= pre

    # No committed write lost, except the single unacknowledged one.
    missing = pre - survivors_or_dead
    if crash_point in LOSS_OK[mode]:
        assert len(missing) <= 1, missing
    else:
        assert missing == set(), missing

    # No uncommitted write visible: every recovered version belongs to
    # a (still-)committed author or is an initial version.
    txns = out.recovery.state.txns
    for version in out.recovery.manager.database.store:
        if version.author is None:
            continue
        assert txns[version.author].phase == "committed", version

    # The recovered world view is the committed prefix's view.
    view = out.recovery.manager.view(out.recovery.manager.root)
    assert out.recovery.manager.database.constraint.evaluate(view)
    return out


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("crash_point", CRASH_POINTS)
class TestEveryCrashPoint:
    def test_first_hit(self, tmp_path, crash_point, mode):
        sweep_one(tmp_path, crash_point, mode, at_hit=1)

    def test_third_hit(self, tmp_path, crash_point, mode):
        sweep_one(tmp_path, crash_point, mode, at_hit=3)


class TestSweepDetails:
    def test_kill_mode_keeps_all_acknowledged_commits(self, tmp_path):
        out = sweep_one(tmp_path, "checkpoint.after_rename", "kill")
        assert set(out.recovery.committed) | set(
            out.recovery.undo.all_dead
        ) >= set(out.pre_crash_committed)

    def test_powerloss_is_a_prefix_of_kill(self, tmp_path):
        kill = sweep_one(tmp_path / "kill", "wal.before_flush", "kill")
        power = sweep_one(
            tmp_path / "power", "wal.before_flush", "powerloss"
        )
        assert set(power.recovery.committed) <= set(
            kill.recovery.committed
        )

    def test_unknown_point_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown crash point"):
            simulate_crash(
                tmp_path,
                make_database,
                workload,
                crash_point="wal.nonsense",
            )

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown crash mode"):
            simulate_crash(
                tmp_path,
                make_database,
                workload,
                crash_point="wal.mid_record",
                mode="meteor",
            )
