"""Segmented WAL tests: append/scan, torn tails, group commit."""

from __future__ import annotations

import pytest

from repro.durability.records import WalRecord
from repro.durability.wal import (
    WriteAheadLog,
    cleanup_segments,
    list_segments,
    scan_wal,
    segment_name,
    truncate_torn_tail,
)
from repro.errors import DurabilityError


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def append_n(wal: WriteAheadLog, count: int, op: str = "read") -> None:
    for index in range(count):
        wal.append(op, f"t.{index}", {"entity": "x"})


class TestAppendScan:
    def test_round_trip(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        first = wal.append("define", "t.0", {"parent": "t"})
        second = wal.append("commit", "t.0", {"released": {"x": 1}})
        wal.close()
        scan = scan_wal(wal_dir)
        assert scan.records == [first, second]
        assert scan.torn is None
        assert scan.last_lsn == 2

    def test_bytes_reach_os_before_append_returns(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.append("read", "t.0", {"entity": "x"})
        # No close, no flush — a SIGKILL from here must lose nothing.
        assert len(scan_wal(wal_dir).records) == 1

    def test_lsns_are_contiguous_from_next_lsn(self, wal_dir):
        wal = WriteAheadLog(wal_dir, next_lsn=40)
        append_n(wal, 3)
        wal.close()
        assert [r.lsn for r in scan_wal(wal_dir).records] == [40, 41, 42]

    def test_rotation_starts_new_segment(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 2)
        wal.rotate()
        append_n(wal, 1)
        wal.close()
        segments = list_segments(wal_dir)
        assert [p.name for p in segments] == [
            segment_name(1),
            segment_name(3),
        ]
        assert [r.lsn for r in scan_wal(wal_dir).records] == [1, 2, 3]

    def test_reopening_existing_nonempty_segment_refused(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 1)
        wal.close()
        with pytest.raises(DurabilityError, match="already exists"):
            WriteAheadLog(wal_dir, next_lsn=1)

    def test_append_after_close_refused(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.close()
        assert wal.closed
        with pytest.raises(DurabilityError, match="closed"):
            wal.append("read", "t.0", {})


class TestTornTail:
    def _torn_dir(self, wal_dir, keep_records: int = 2):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, keep_records)
        wal.close()
        path = list_segments(wal_dir)[-1]
        with open(path, "ab") as handle:
            handle.write(b'{"lsn": 99, "op": "re')  # torn mid-append
        return path

    def test_torn_tail_detected_and_truncated(self, wal_dir):
        path = self._torn_dir(wal_dir)
        scan = scan_wal(wal_dir)
        assert scan.torn is not None and scan.torn[0] == path
        assert len(scan.records) == 2
        assert truncate_torn_tail(scan)
        rescan = scan_wal(wal_dir)
        assert rescan.torn is None and len(rescan.records) == 2

    def test_unterminated_valid_record_is_torn(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 1)
        wal.close()
        path = list_segments(wal_dir)[-1]
        line = WalRecord(2, "read", "t.1", {"entity": "x"}).encode()
        with open(path, "ab") as handle:
            handle.write(line.rstrip(b"\n"))  # no trailing newline
        scan = scan_wal(wal_dir)
        assert scan.torn is not None
        assert "newline" in (scan.torn_reason or "")

    def test_mid_log_corruption_raises(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 3)
        wal.close()
        path = list_segments(wal_dir)[-1]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"broken": true}\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(DurabilityError, match="followed by a valid"):
            scan_wal(wal_dir)

    def test_corruption_in_older_segment_raises(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 2)
        wal.rotate()
        append_n(wal, 1)
        wal.close()
        old = list_segments(wal_dir)[0]
        old.write_bytes(old.read_bytes()[:-10] + b"garbage!!\n")
        with pytest.raises(DurabilityError, match="mid-log"):
            scan_wal(wal_dir)

    def test_lsn_gap_raises(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 2)
        wal.close()
        path = list_segments(wal_dir)[-1]
        skipper = WalRecord(4, "read", "t.9", {"entity": "x"})
        with open(path, "ab") as handle:
            handle.write(skipper.encode())
        with pytest.raises(DurabilityError, match="discontinuity"):
            scan_wal(wal_dir)


class TestGroupCommit:
    def test_sync_mode_flushes_durable_ops_immediately(self, wal_dir):
        wal = WriteAheadLog(wal_dir, flush_interval=0.0)
        wal.append("read", "t.0", {"entity": "x"})
        assert wal.pending_records == 1
        wal.append("commit", "t.0", {"released": {}})
        assert wal.pending_records == 0  # fsync covered both
        wal.close()

    def test_durable_op_arms_deadline(self, wal_dir):
        clock = FakeClock()
        wal = WriteAheadLog(
            wal_dir, flush_interval=0.5, clock=clock
        )
        wal.append("read", "t.0", {"entity": "x"})
        assert wal.flush_due is None  # non-durable ops never arm
        wal.append("commit", "t.0", {"released": {}})
        assert wal.flush_due == pytest.approx(clock.now + 0.5)
        assert wal.maybe_flush() == 0  # deadline not reached
        clock.advance(0.6)
        assert wal.maybe_flush() == 2  # one fsync, both records
        assert wal.flush_due is None
        wal.close()

    def test_second_commit_does_not_push_deadline_out(self, wal_dir):
        clock = FakeClock()
        wal = WriteAheadLog(
            wal_dir, flush_interval=0.5, clock=clock
        )
        wal.append("commit", "t.0", {"released": {}})
        due = wal.flush_due
        clock.advance(0.3)
        wal.append("commit", "t.1", {"released": {}})
        assert wal.flush_due == due
        wal.close()

    def test_durable_lengths_track_fsynced_bytes(self, wal_dir):
        clock = FakeClock()
        wal = WriteAheadLog(
            wal_dir, flush_interval=5.0, clock=clock
        )
        name = segment_name(1)
        assert wal.durable_lengths()[name] == 0
        wal.append("commit", "t.0", {"released": {}})
        assert wal.durable_lengths()[name] == 0  # written, not fsynced
        wal.flush()
        flushed = wal.durable_lengths()[name]
        assert flushed == wal.current_segment.stat().st_size
        wal.append("commit", "t.1", {"released": {}})
        assert wal.durable_lengths()[name] == flushed  # unflushed tail
        wal.close()

    def test_rotated_segments_are_fully_durable(self, wal_dir):
        clock = FakeClock()
        wal = WriteAheadLog(
            wal_dir, flush_interval=5.0, clock=clock
        )
        wal.append("commit", "t.0", {"released": {}})
        wal.rotate()
        lengths = wal.durable_lengths()
        old = segment_name(1)
        assert lengths[old] == (wal_dir / old).stat().st_size
        wal.close()


class TestCleanup:
    def test_cleanup_drops_fully_covered_segments(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 2)  # lsn 1-2 in wal-1
        wal.rotate()
        append_n(wal, 2)  # lsn 3-4 in wal-3
        wal.rotate()
        append_n(wal, 1)  # lsn 5 in wal-5
        wal.close()
        removed = cleanup_segments(wal_dir, safe_lsn=2)
        assert [p.name for p in removed] == [segment_name(1)]
        assert [p.name for p in list_segments(wal_dir)] == [
            segment_name(3),
            segment_name(5),
        ]

    def test_cleanup_never_deletes_newest_segment(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        append_n(wal, 2)
        wal.close()
        assert cleanup_segments(wal_dir, safe_lsn=10) == []
        assert len(list_segments(wal_dir)) == 1
