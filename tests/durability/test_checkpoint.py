"""Checkpoint store tests: atomic publication, retention, fallback."""

from __future__ import annotations

import json

import pytest

from repro.durability.snapshot import (
    CheckpointStore,
    checkpoint_lsn,
    checkpoint_name,
)
from repro.errors import DurabilityError

STATE_A = {"initial": {"x": 1}, "marker": "a"}
STATE_B = {"initial": {"x": 2}, "marker": "b"}


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write(STATE_A, last_lsn=7)
        assert path.name == checkpoint_name(7)
        assert store.load_newest() == (STATE_A, 7)

    def test_newest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(STATE_A, last_lsn=7)
        store.write(STATE_B, last_lsn=19)
        assert store.load_newest() == (STATE_B, 19)

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_newest() is None

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(DurabilityError, match="retain"):
            CheckpointStore(tmp_path, retain=0)


class TestCorruptFallback:
    def test_falls_back_past_corrupt_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(STATE_A, last_lsn=7)
        newest = store.write(STATE_B, last_lsn=19)
        newest.write_bytes(newest.read_bytes()[:-20])
        assert store.load_newest() == (STATE_A, 7)

    def test_tampered_state_fails_sha(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(STATE_A, last_lsn=7)
        path = store.write(STATE_B, last_lsn=19)
        payload = json.loads(path.read_bytes())
        payload["state"]["initial"]["x"] = 999
        path.write_text(json.dumps(payload))
        assert store.load_newest() == (STATE_A, 7)

    def test_renamed_checkpoint_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write(STATE_A, last_lsn=7)
        # A checkpoint whose filename LSN disagrees with its payload is
        # not trusted (rename games must not change history).
        path.rename(tmp_path / checkpoint_name(99))
        assert store.load_newest() is None

    def test_all_corrupt_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for lsn in (3, 9):
            store.write(STATE_A, last_lsn=lsn)
        for path in store.checkpoints():
            path.write_text("not json at all")
        assert store.load_newest() is None


class TestRetention:
    def test_prunes_beyond_retain(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=2)
        for lsn in (5, 10, 15, 20):
            store.write(STATE_A, last_lsn=lsn)
        assert [checkpoint_lsn(p) for p in store.checkpoints()] == [
            15,
            20,
        ]
        assert store.oldest_retained_lsn() == 15

    def test_prune_clears_stale_tmp_files(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=2)
        leftover = tmp_path / (checkpoint_name(3) + ".tmp")
        leftover.write_text("half a checkpoint")
        store.write(STATE_A, last_lsn=5)
        assert not leftover.exists()
        assert store.load_newest() == (STATE_A, 5)
