"""Recovered histories land in the RC/ACA/ST hierarchy where claimed.

Satellite claim of the durability subsystem: every WAL a recovery pass
accepts is RC against the recorded (multi-version) reads-from relation,
and a strict-mode manager's WAL flattens to an ST schedule whenever the
mono-version flattening is faithful.
"""

from __future__ import annotations

from repro.durability import (
    DurableTransactionManager,
    recover,
    simulate_crash,
)
from repro.durability.history import (
    committed_projection,
    flat_reads_match_recorded,
    recorded_is_rc,
    recorded_reads_from,
)
from repro.durability.wal import scan_wal
from repro.protocol.scheduler import Outcome
from repro.protocol.validation import GreedyLatestSelector
from repro.schedules.recovery import (
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
)

from .conftest import make_database, run_leaf, spec


def open_manager(wal_dir, **kwargs):
    manager, _ = DurableTransactionManager.open(
        wal_dir, make_database, **kwargs
    )
    return manager


def drive_leaf(manager, name, entity, value):
    assert manager.validate(name).outcome is Outcome.OK
    assert manager.read(name, entity).outcome is Outcome.OK
    assert manager.begin_write(name, entity).outcome is Outcome.OK
    assert manager.end_write(name, entity, value).outcome is Outcome.OK


class TestRecoveredIsRC:
    def test_serial_history_is_rc(self, wal_dir):
        manager = open_manager(wal_dir)
        run_leaf(manager, "x", 11)
        run_leaf(manager, "y", 22)
        result = recover(wal_dir)
        records = scan_wal(wal_dir).records
        assert recorded_is_rc(records, commit_order=result.committed)

    def test_dirty_read_history_is_rc_only_after_recovery(self, wal_dir):
        manager = open_manager(
            wal_dir, selector=GreedyLatestSelector()
        )
        # t.1 commits having read t.0's never-committed write: the raw
        # WAL is NOT RC...
        run_leaf(manager, "x", 10, commit=False)
        reader = manager.define(
            manager.root, spec("x >= 0 & y >= 0"), ["y"]
        )
        drive_leaf(manager, reader, "y", 20)
        assert manager.read(reader, "x").outcome is Outcome.OK
        assert manager.record(reader).assigned["x"].author == "t.0"
        assert manager.commit(reader).outcome is Outcome.OK
        records = scan_wal(wal_dir).records
        assert not recorded_is_rc(records)
        # ...and recovery's cascade is exactly what restores RC.
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert reader in result.undo.cascaded_commits
        assert recorded_is_rc(records, commit_order=result.committed)

    def test_every_crash_sweep_survivor_is_rc(self, tmp_path):
        def workload(manager):
            run_leaf(manager, "x", 11)
            run_leaf(manager, "y", 22)
            run_leaf(manager, "z", 33, commit=False)

        for crash_point in ("wal.mid_record", "wal.before_flush"):
            out = simulate_crash(
                tmp_path / crash_point.replace(".", "_"),
                make_database,
                workload,
                crash_point=crash_point,
                mode="powerloss",
            )
            assert out.recovery.verified
            records = scan_wal(out.survivor_dir).records
            assert recorded_is_rc(
                records, commit_order=out.recovery.committed
            )


class TestStrictModeIsST:
    def _interleaved_strict_history(self, wal_dir):
        """Two disjoint concurrent writers, then a reader of both."""
        manager = open_manager(
            wal_dir, strict=True, selector=GreedyLatestSelector()
        )
        a = manager.define(manager.root, spec("x >= 0"), ["x"])
        b = manager.define(manager.root, spec("y >= 0"), ["y"])
        for name in (a, b):
            assert manager.validate(name).outcome is Outcome.OK
        assert manager.read(a, "x").outcome is Outcome.OK
        assert manager.read(b, "y").outcome is Outcome.OK
        for name, entity, value in ((a, "x", 10), (b, "y", 20)):
            assert (
                manager.begin_write(name, entity).outcome is Outcome.OK
            )
            assert (
                manager.end_write(name, entity, value).outcome
                is Outcome.OK
            )
        assert manager.commit(a).outcome is Outcome.OK
        assert manager.commit(b).outcome is Outcome.OK
        c = manager.define(
            manager.root, spec("x >= 0 & y >= 0 & z >= 0"), ["z"]
        )
        assert manager.validate(c).outcome is Outcome.OK
        assert manager.record(c).assigned["x"].author == a
        assert manager.read(c, "x").outcome is Outcome.OK
        assert manager.read(c, "y").outcome is Outcome.OK
        assert manager.begin_write(c, "z").outcome is Outcome.OK
        assert manager.end_write(c, "z", 30).outcome is Outcome.OK
        assert manager.commit(c).outcome is Outcome.OK
        # One straggler caught in flight by the "crash".
        d = manager.define(manager.root, spec("z >= 0"), ["z"])
        drive_leaf(manager, d, "z", 40)
        return manager

    def test_strict_mode_recovers_to_an_st_history(self, wal_dir):
        self._interleaved_strict_history(wal_dir)
        result = recover(wal_dir, strict=True)
        assert result.verified, result.violations
        records = scan_wal(wal_dir).records
        assert flat_reads_match_recorded(
            records, commit_order=result.committed
        )
        committed = committed_projection(
            records, commit_order=result.committed
        )
        assert is_strict(committed)
        # ST sits at the top of the hierarchy (Bernstein et al.):
        assert avoids_cascading_aborts(committed)
        assert is_recoverable(committed)

    def test_strict_mode_blocks_rather_than_reads_dirty(self, wal_dir):
        manager = open_manager(wal_dir, strict=True)
        a = manager.define(manager.root, spec("x >= 0"), ["x"])
        drive_leaf(manager, a, "x", 10)  # uncommitted write on x
        b = manager.define(manager.root, spec("x >= 0"), ["x"])
        assert manager.validate(b).outcome is Outcome.OK
        blocked = manager.begin_write(b, "x")
        assert blocked.outcome is Outcome.BLOCKED
        assert manager.commit(a).outcome is Outcome.OK
        assert manager.begin_write(b, "x").outcome is Outcome.OK


class TestOccurrenceKeying:
    def test_recorded_keys_align_with_flat_schedule(self, wal_dir):
        # Regression: recorded occurrences must be 0-based like
        # Schedule.read_sources(), or every non-initial read "differs".
        manager = open_manager(
            wal_dir, selector=GreedyLatestSelector()
        )
        run_leaf(manager, "x", 10)
        reader = manager.define(
            manager.root, spec("x >= 0 & y >= 0"), ["y"]
        )
        drive_leaf(manager, reader, "y", 20)
        assert manager.read(reader, "x").outcome is Outcome.OK
        assert manager.commit(reader).outcome is Outcome.OK
        records = scan_wal(wal_dir).records
        recorded = recorded_reads_from(records)
        assert recorded[("t.1", "x", 0)] == "t.0"
        assert flat_reads_match_recorded(records)

    def test_empty_projection_when_nothing_committed(self, wal_dir):
        manager = open_manager(wal_dir)
        run_leaf(manager, "x", 10, commit=False)
        records = scan_wal(wal_dir).records
        assert committed_projection(records) is None
        assert flat_reads_match_recorded(records)
        assert recorded_is_rc(records)
