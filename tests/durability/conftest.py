"""Shared fixtures for the durability suite."""

from __future__ import annotations

import pytest

from repro.core.entities import Domain, Entity, Schema
from repro.core.predicates import Predicate
from repro.core.transactions import Spec
from repro.durability import DurableTransactionManager
from repro.protocol.scheduler import Outcome
from repro.storage.database import Database


def make_database() -> Database:
    schema = Schema(
        [
            Entity("x", Domain(0, 100)),
            Entity("y", Domain(0, 100)),
            Entity("z", Domain(0, 100)),
        ]
    )
    constraint = Predicate.parse("x >= 0 & y >= 0 & z >= 0")
    return Database(schema, constraint, {"x": 5, "y": 5, "z": 5})


def spec(input_text: str = "true", output_text: str = "true") -> Spec:
    return Spec(Predicate.parse(input_text), Predicate.parse(output_text))


def run_leaf(
    manager,
    entity: str,
    value: int,
    *,
    parent: str | None = None,
    commit: bool = True,
) -> str:
    """Define/validate/read/write (and optionally commit) one leaf."""
    name = manager.define(
        parent or manager.root, spec(f"{entity} >= 0"), [entity]
    )
    assert manager.validate(name).outcome is Outcome.OK
    assert manager.read(name, entity).outcome is Outcome.OK
    assert manager.begin_write(name, entity).outcome is Outcome.OK
    assert manager.end_write(name, entity, value).outcome is Outcome.OK
    if commit:
        assert manager.commit(name).outcome is Outcome.OK
    return name


@pytest.fixture
def wal_dir(tmp_path):
    return tmp_path / "wal"


@pytest.fixture
def fresh_manager(wal_dir):
    manager, recovery = DurableTransactionManager.open(
        wal_dir, make_database
    )
    assert recovery is None
    yield manager
    if manager.wal is not None and not manager.wal.closed:
        manager.close()
