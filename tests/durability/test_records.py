"""WAL record wire-format tests: encode/decode, CRC, field set."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.durability.records import (
    ALL_OPS,
    DURABLE_OPS,
    TornRecord,
    WalRecord,
)
from repro.errors import DurabilityError


class TestEncodeDecode:
    def test_round_trip(self):
        record = WalRecord(
            7, "commit", "t.3", {"released": {"x": 9}}
        )
        assert WalRecord.decode(record.encode().rstrip(b"\n")) == record

    def test_round_trip_every_op(self):
        for lsn, op in enumerate(sorted(ALL_OPS), start=1):
            record = WalRecord(lsn, op, "t.0", {"k": [1, "a", None]})
            decoded = WalRecord.decode(record.encode().rstrip(b"\n"))
            assert decoded.op == op and decoded.lsn == lsn

    def test_encoded_line_is_newline_terminated_json(self):
        line = WalRecord(1, "read", "t.0", {"entity": "x"}).encode()
        assert line.endswith(b"\n")
        payload = json.loads(line)
        assert set(payload) == {"lsn", "op", "txn", "data", "crc"}

    def test_unknown_op_rejected_at_construction(self):
        with pytest.raises(DurabilityError, match="unknown WAL op"):
            WalRecord(1, "compact", "t.0", {})

    def test_durable_flag_matches_durable_ops(self):
        for op in sorted(ALL_OPS):
            record = WalRecord(1, op, "t.0", {})
            assert record.durable == (op in DURABLE_OPS)


class TestDamageDetection:
    def _line(self) -> bytes:
        return WalRecord(4, "write", "t.1", {"entity": "x"}).encode()

    def test_bit_flip_in_payload_fails_checksum(self):
        line = bytearray(self._line().rstrip(b"\n"))
        flip = line.index(b"x"[0])
        line[flip] ^= 0x01
        with pytest.raises(TornRecord, match="checksum mismatch"):
            WalRecord.decode(bytes(line))

    def test_truncated_line_is_torn(self):
        line = self._line().rstrip(b"\n")
        with pytest.raises(TornRecord):
            WalRecord.decode(line[: len(line) // 2])

    def test_non_json_is_torn(self):
        with pytest.raises(TornRecord, match="undecodable"):
            WalRecord.decode(b"\x00\xff garbage")

    def test_missing_field_is_torn(self):
        payload = {"lsn": 1, "op": "read", "txn": "t.0"}
        payload["crc"] = zlib.crc32(
            json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode()
        )
        with pytest.raises(TornRecord, match="malformed"):
            WalRecord.decode(json.dumps(payload).encode())

    def test_extra_field_is_torn(self):
        line = self._line().rstrip(b"\n")
        payload = json.loads(line)
        payload["extra"] = 1
        with pytest.raises(TornRecord, match="malformed"):
            WalRecord.decode(json.dumps(payload).encode())

    def test_valid_record_with_bad_op_is_torn_not_crash(self):
        payload = {"lsn": 1, "op": "vacuum", "txn": "t.0", "data": {}}
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        payload["crc"] = zlib.crc32(canonical)
        with pytest.raises(TornRecord, match="unknown WAL op"):
            WalRecord.decode(
                json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode()
            )
