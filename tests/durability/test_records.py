"""WAL record wire-format tests: encode/decode, CRC, field set."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.durability.records import (
    ALL_OPS,
    DURABLE_OPS,
    TornRecord,
    WalRecord,
)
from repro.errors import DurabilityError


class TestEncodeDecode:
    def test_round_trip(self):
        record = WalRecord(
            7, "commit", "t.3", {"released": {"x": 9}}
        )
        assert WalRecord.decode(record.encode().rstrip(b"\n")) == record

    def test_round_trip_every_op(self):
        for lsn, op in enumerate(sorted(ALL_OPS), start=1):
            record = WalRecord(lsn, op, "t.0", {"k": [1, "a", None]})
            decoded = WalRecord.decode(record.encode().rstrip(b"\n"))
            assert decoded.op == op and decoded.lsn == lsn

    def test_encoded_line_is_newline_terminated_json(self):
        line = WalRecord(1, "read", "t.0", {"entity": "x"}).encode()
        assert line.endswith(b"\n")
        payload = json.loads(line)
        assert set(payload) == {"lsn", "op", "txn", "data", "crc"}

    def test_unknown_op_rejected_at_construction(self):
        with pytest.raises(DurabilityError, match="unknown WAL op"):
            WalRecord(1, "compact", "t.0", {})

    def test_durable_flag_matches_durable_ops(self):
        for op in sorted(ALL_OPS):
            record = WalRecord(1, op, "t.0", {})
            assert record.durable == (op in DURABLE_OPS)


class TestDamageDetection:
    def _line(self) -> bytes:
        return WalRecord(4, "write", "t.1", {"entity": "x"}).encode()

    def test_bit_flip_in_payload_fails_checksum(self):
        line = bytearray(self._line().rstrip(b"\n"))
        flip = line.index(b"x"[0])
        line[flip] ^= 0x01
        with pytest.raises(TornRecord, match="checksum mismatch"):
            WalRecord.decode(bytes(line))

    def test_truncated_line_is_torn(self):
        line = self._line().rstrip(b"\n")
        with pytest.raises(TornRecord):
            WalRecord.decode(line[: len(line) // 2])

    def test_non_json_is_torn(self):
        with pytest.raises(TornRecord, match="undecodable"):
            WalRecord.decode(b"\x00\xff garbage")

    def test_missing_field_is_torn(self):
        payload = {"lsn": 1, "op": "read", "txn": "t.0"}
        payload["crc"] = zlib.crc32(
            json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode()
        )
        with pytest.raises(TornRecord, match="malformed"):
            WalRecord.decode(json.dumps(payload).encode())

    def test_extra_field_is_torn(self):
        line = self._line().rstrip(b"\n")
        payload = json.loads(line)
        payload["extra"] = 1
        with pytest.raises(TornRecord, match="malformed"):
            WalRecord.decode(json.dumps(payload).encode())

    def test_valid_record_with_bad_op_is_torn_not_crash(self):
        payload = {"lsn": 1, "op": "vacuum", "txn": "t.0", "data": {}}
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        payload["crc"] = zlib.crc32(canonical)
        with pytest.raises(TornRecord, match="unknown WAL op"):
            WalRecord.decode(
                json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode()
            )


class TestCanonicalDeterminism:
    """The wire format is canonical: construction order never leaks.

    The CRC is computed over sorted-key JSON, so two records whose
    ``data`` dicts were built in different insertion orders must
    serialise to identical bytes — and the single-pass splicing
    encoder must reproduce the two-pass reference encoding exactly.
    """

    def _reference_encode(self, record: WalRecord) -> bytes:
        # The original two-pass encoding: canonical-dump the payload
        # once to checksum it, then again with the crc included.
        def canonical(payload):
            return json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")

        payload = {
            "lsn": record.lsn,
            "op": record.op,
            "txn": record.txn,
            "data": record.data,
        }
        payload["crc"] = zlib.crc32(canonical(payload))
        return canonical(payload) + b"\n"

    def test_dict_construction_order_is_invisible(self):
        forward = WalRecord(
            3, "write", "t.1", {"entity": "x", "value": 9, "stamp": 4}
        )
        backward = WalRecord(
            3, "write", "t.1", {"stamp": 4, "value": 9, "entity": "x"}
        )
        assert forward.encode() == backward.encode()

    def test_splice_encoder_matches_reference(self):
        records = [
            WalRecord(1, "define", "t.root", {}),
            WalRecord(
                2,
                "write",
                "t.1.2",
                {"entity": "x", "version": ["x", "t.1", 7]},
            ),
            WalRecord(
                3,
                "abort",
                "t.9",
                {"aborted": ["t.9"], "note": 'café "q" \\ tail'},
            ),
            WalRecord(4, "read", 'odd"txn\\name', {"entity": "x"}),
            WalRecord(5, "commit", "txn-ünïcode", {"n": -1.5}),
        ]
        for record in records:
            assert record.encode() == self._reference_encode(record)

    def test_encode_into_matches_encode(self):
        record = WalRecord(6, "validate", "t.2", {"items": ["x", "y"]})
        buffer = bytearray(b"existing")
        added = record.encode_into(buffer)
        assert bytes(buffer[len(b"existing"):]) == record.encode()
        assert added == len(record.encode())

    def test_round_trip_stays_deterministic(self):
        record = WalRecord(8, "commit", "t.4", {"b": 1, "a": 2})
        decoded = WalRecord.decode(record.encode().rstrip(b"\n"))
        assert decoded.encode() == record.encode()
