"""Cross-shard 2PC recovery: in-doubt branches resolve atomically.

The scenarios drive a real :class:`ShardRouter` over durable per-shard
managers, run phase 1 (durable PREPAREs) by hand, optionally commit the
coordinator branch (the decision record), and then *crash* — abandon
the managers without closing them, exactly what SIGKILL leaves behind.
``recover_sharded`` must then land every shard on the same side of the
decision: all-committed when the coordinator branch committed,
all-aborted (presumed abort) when it did not.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.entities import Domain, Schema
from repro.core.predicates import Predicate
from repro.durability import (
    DurableTransactionManager,
    is_sharded_layout,
    list_shard_dirs,
    recover_sharded,
    shard_wal_dir,
)
from repro.errors import RecoveryError
from repro.server.protocol import Request
from repro.server.router import ShardRouter, shard_of
from repro.server.session import CommandDispatcher, SessionState
from repro.storage.database import Database

SHARDS = 4

SCHEMA = Schema.of(
    *(f"m{m}_e{e}" for m in range(8) for e in range(2)),
    domain=Domain.interval(0, 100),
)
NAMES = sorted(SCHEMA.names)


def _db() -> Database:
    return Database(
        SCHEMA, Predicate.parse("true"), {name: 1 for name in NAMES}
    )


def _cross_pair() -> tuple[str, str]:
    by_shard: dict[int, list[str]] = {}
    for name in NAMES:
        by_shard.setdefault(shard_of(name, SHARDS), []).append(name)
    first, second, *_ = sorted(by_shard)
    return by_shard[first][0], by_shard[second][0]


def run(coro, timeout: float = 30.0):
    async def _guarded():
        return await asyncio.wait_for(coro, timeout=timeout)

    return asyncio.run(_guarded())


async def _crash_mid_2pc(base_dir, *, commit_coordinator: bool):
    """Prepare a cross-shard txn everywhere; maybe commit the
    coordinator branch; then abandon the stack without closing it.

    Returns ``(branches, coordinator, (entity_a, entity_b))``.
    """
    a, b = _cross_pair()
    dispatchers = []
    for index in range(SHARDS):
        shard_db = _db()
        manager, _recovery = DurableTransactionManager.open(
            shard_wal_dir(base_dir, index),
            lambda db=shard_db: db,
            flush_interval=0.0,
            root_name=f"sh{index}",
        )
        dispatchers.append(
            CommandDispatcher(
                manager,
                shard=index,
                shards_total=SHARDS,
                request_timeout=5.0,
            )
        )
    router = ShardRouter(dispatchers)
    runner = asyncio.create_task(router.run())
    session = SessionState(1, notify=lambda frame: None)

    async def request(rid, op, **params):
        outcome = router.submit(session, Request(rid, op, params))
        return outcome if isinstance(outcome, dict) else await outcome

    gid = (await request(1, "define", updates=[a, b]))["txn"]
    assert (await request(2, "validate", txn=gid))["outcome"] == "ok"
    await request(3, "write", txn=gid, entity=a, value=42)
    await request(4, "write", txn=gid, entity=b, value=43)

    # Run 2PC phase 1 by hand against the shard dispatchers (the
    # router's commit would run both phases; the crash goes between).
    cross = router._cross[gid]
    participants = {
        str(shard): branch for shard, branch in cross.branches.items()
    }

    async def direct(shard, rid, op, **params):
        shadow = router._shadow(session, shard)
        outcome = dispatchers[shard].submit(
            shadow, Request(rid, op, params)
        )
        return outcome if isinstance(outcome, dict) else await outcome

    for rid, shard in enumerate(sorted(cross.branches), start=10):
        prepared = await direct(
            shard,
            rid,
            "prepare",
            txn=participants[str(shard)],
            gid=gid,
            participants=participants,
            coordinator=cross.coordinator,
        )
        assert prepared.get("outcome") == "prepared", prepared
    if commit_coordinator:
        decided = await direct(
            cross.coordinator,
            20,
            "commit",
            txn=participants[str(cross.coordinator)],
        )
        assert decided.get("outcome") == "committed", decided
    # Crash: stop the loops and drop every manager un-closed.
    await router.stop()
    await runner
    return dict(cross.branches), cross.coordinator, (a, b)


def _latest(result, shard):
    return result.shards[shard].manager.database.latest_state()


def test_in_doubt_branch_commits_when_coordinator_committed(tmp_path):
    async def body():
        return await _crash_mid_2pc(tmp_path, commit_coordinator=True)

    branches, coordinator, (a, b) = run(body())
    result = recover_sharded(tmp_path)
    assert result.verified, result.summary()
    participant = next(s for s in branches if s != coordinator)
    decisions = {r["txn"]: r["decision"] for r in result.resolutions}
    assert decisions == {branches[participant]: "commit"}
    # atomically committed: both shards expose the transaction's writes
    assert _latest(result, coordinator)[a] == 42
    assert _latest(result, participant)[b] == 43


def test_presumed_abort_when_no_decision_was_logged(tmp_path):
    async def body():
        return await _crash_mid_2pc(tmp_path, commit_coordinator=False)

    branches, _coordinator, (a, b) = run(body())
    result = recover_sharded(tmp_path)
    assert result.verified, result.summary()
    assert {r["decision"] for r in result.resolutions} == {"abort"}
    assert {r["txn"] for r in result.resolutions} == set(
        branches.values()
    )
    # atomically rolled back: neither write survives anywhere
    for shard in branches:
        state = _latest(result, shard)
        assert state[a] == 1 and state[b] == 1


def test_layout_helpers(tmp_path):
    assert not is_sharded_layout(tmp_path)
    assert list_shard_dirs(tmp_path) == []
    with pytest.raises(RecoveryError, match="no shard directories"):
        recover_sharded(tmp_path)
    for index in (0, 2):
        shard_wal_dir(tmp_path, index).mkdir(parents=True)
    (tmp_path / "shardX").mkdir()  # not a shard dir
    assert is_sharded_layout(tmp_path)
    assert [index for index, _ in list_shard_dirs(tmp_path)] == [0, 2]
