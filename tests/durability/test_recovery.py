"""Recovery-pass tests: replay, undo cascades, damage, verification."""

from __future__ import annotations

import json

import pytest

from repro.durability import DurableTransactionManager, recover
from repro.durability.records import (
    OP_COMMIT,
    OP_WRITE,
    WalRecord,
)
from repro.durability.snapshot import CheckpointStore, _digest
from repro.durability.wal import list_segments, scan_wal
from repro.errors import RecoveryError
from repro.protocol.scheduler import Outcome, TxnPhase
from repro.protocol.validation import GreedyLatestSelector

from .conftest import make_database, run_leaf, spec


def open_fresh(wal_dir, **kwargs):
    manager, recovery = DurableTransactionManager.open(
        wal_dir, make_database, **kwargs
    )
    assert recovery is None
    return manager


def rewrite_record(wal_dir, *, op, mutate):
    """Rewrite the first matching record in place, CRC recomputed."""
    for path in list_segments(wal_dir):
        lines = path.read_bytes().splitlines(keepends=True)
        for index, line in enumerate(lines):
            record = WalRecord.decode(line.rstrip(b"\n"))
            if record.op != op:
                continue
            data = dict(record.data)
            mutate(data)
            lines[index] = WalRecord(
                record.lsn, record.op, record.txn, data
            ).encode()
            path.write_bytes(b"".join(lines))
            return record
    raise AssertionError(f"no {op} record found")


class TestCommittedPrefix:
    def test_committed_survive_recovery(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        run_leaf(manager, "y", 22)
        # Abandoned mid-flight: no close(), like a SIGKILL.
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.committed == ["t.0", "t.1"]
        view = result.manager.view(result.manager.root)
        assert view == {"x": 11, "y": 22, "z": 5}

    def test_in_flight_txn_aborted(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        run_leaf(manager, "y", 22, commit=False)  # caught mid-flight
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.committed == ["t.0"]
        assert result.undo.aborted_in_flight == ["t.1"]
        assert result.undo.expunged_versions == 1
        view = result.manager.view(result.manager.root)
        assert view == {"x": 11, "y": 5, "z": 5}
        record = result.manager.record("t.1")
        assert record.phase is TxnPhase.ABORTED

    def test_cascade_through_recorded_reads_from(self, wal_dir):
        manager = open_fresh(
            wal_dir, selector=GreedyLatestSelector()
        )
        # t.0 writes x but never commits; t.1 reads t.0's version and
        # commits.  Recovery must undo t.1's commit (RC enforcement).
        run_leaf(manager, "x", 10, commit=False)
        reader = manager.define(
            manager.root, spec("x >= 0 & y >= 0"), ["y"]
        )
        assert manager.validate(reader).outcome is Outcome.OK
        assert manager.record(reader).assigned["x"].author == "t.0"
        assert manager.read(reader, "x").outcome is Outcome.OK
        assert manager.begin_write(reader, "y").outcome is Outcome.OK
        assert manager.end_write(reader, "y", 20).outcome is Outcome.OK
        assert manager.commit(reader).outcome is Outcome.OK
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.committed == []
        assert result.undo.aborted_in_flight == ["t.0"]
        assert result.undo.cascaded_commits == ["t.1"]
        view = result.manager.view(result.manager.root)
        assert view == {"x": 5, "y": 5, "z": 5}  # back to initial

    def test_nested_in_flight_parent_kills_committed_child(
        self, wal_dir
    ):
        manager = open_fresh(wal_dir)
        parent = manager.define(manager.root, spec("x >= 0"), ["x"])
        assert manager.validate(parent).outcome is Outcome.OK
        child = run_leaf(manager, "x", 33, parent=parent)
        assert child == f"{parent}.0"
        # The child committed *relative to* its in-flight parent only.
        result = recover(wal_dir)
        assert result.verified, result.violations
        assert result.committed == []
        assert parent in result.undo.aborted_in_flight
        assert child in result.undo.cascaded_commits
        view = result.manager.view(result.manager.root)
        assert view["x"] == 5

    def test_recovered_manager_serves_new_transactions(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        result = recover(wal_dir)
        follow_up = result.manager.define(
            result.manager.root, spec("x >= 0"), ["x"]
        )
        # Child names continue past recovered ones: no name reuse.
        assert follow_up == "t.1"
        assert result.manager.validate(follow_up).outcome is Outcome.OK


class TestDamage:
    def test_torn_tail_truncated_and_reported(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        newest = list_segments(wal_dir)[-1]
        with open(newest, "ab") as handle:
            handle.write(b'{"lsn": 999, "op"')
        result = recover(wal_dir)
        assert result.torn_tail_truncated
        assert result.verified, result.violations
        assert result.committed == ["t.0"]

    def test_no_checkpoint_raises(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        manager.close()
        for path in CheckpointStore(wal_dir).checkpoints():
            path.unlink()
        with pytest.raises(RecoveryError, match="no usable checkpoint"):
            recover(wal_dir)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no WAL directory"):
            recover(tmp_path / "never-created")

    def test_wal_gap_raises(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        manager.checkpoint()
        run_leaf(manager, "y", 22)
        # Lose the middle: the newest checkpoint and the segment
        # covering everything before it.
        newest_checkpoint = CheckpointStore(wal_dir).checkpoints()[-1]
        newest_checkpoint.unlink()
        list_segments(wal_dir)[0].unlink()
        with pytest.raises(RecoveryError, match="WAL gap"):
            recover(wal_dir)

    def test_non_deterministic_replay_raises(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        rewrite_record(
            wal_dir,
            op=OP_WRITE,
            mutate=lambda data: data.update(
                sequence=data["sequence"] + 7
            ),
        )
        with pytest.raises(RecoveryError, match="non-deterministic"):
            recover(wal_dir)


class TestVerification:
    def test_tampered_commit_fails_consistency(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        # A forged release that breaks the consistency predicate: the
        # CRC is recomputed, so only verification can catch it.
        rewrite_record(
            wal_dir,
            op=OP_COMMIT,
            mutate=lambda data: data.update(released={"x": -1}),
        )
        result = recover(wal_dir)
        assert not result.verified
        assert any(
            "consistency" in violation
            for violation in result.violations
        )

    def test_open_refuses_unverified_state(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        rewrite_record(
            wal_dir,
            op=OP_COMMIT,
            mutate=lambda data: data.update(released={"x": -1}),
        )
        with pytest.raises(RecoveryError, match="refusing to serve"):
            DurableTransactionManager.open(wal_dir, make_database)

    def test_tampered_checkpoint_diverges_from_wal_fold(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 42)
        manager.checkpoint()
        # Forge the checkpoint (valid sha) to claim x=43; the WAL's
        # COMMIT record still says 42, and the independent fold wins.
        path = CheckpointStore(wal_dir).checkpoints()[-1]
        payload = json.loads(path.read_bytes())
        state = payload["state"]
        root = state["txns"][state["root"]]
        root["merged_child_writes"]["x"] = 43
        for entry in root["release_log"]:
            entry[1]["x"] = 43
        payload["sha256"] = _digest(payload["last_lsn"], state)
        path.write_text(json.dumps(payload, sort_keys=True))
        result = recover(wal_dir)
        assert not result.verified
        assert any(
            "diverges" in violation for violation in result.violations
        )

    def test_verify_false_skips_verification(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        rewrite_record(
            wal_dir,
            op=OP_COMMIT,
            mutate=lambda data: data.update(released={"x": -1}),
        )
        result = recover(wal_dir, verify=False)
        assert result.violations == []


class TestReopenContinuity:
    def test_close_reopen_preserves_state(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        live_view = dict(manager.view(manager.root))
        manager.close()
        reopened, recovery = DurableTransactionManager.open(
            wal_dir, make_database
        )
        assert recovery is not None and recovery.verified
        assert reopened.view(reopened.root) == live_view
        run_leaf(reopened, "y", 22)
        reopened.close()
        final = recover(wal_dir)
        assert final.verified, final.violations
        assert final.manager.view(final.manager.root) == {
            "x": 11,
            "y": 22,
            "z": 5,
        }

    def test_reopen_without_close_recovers_committed(self, wal_dir):
        manager = open_fresh(wal_dir)
        run_leaf(manager, "x", 11)
        run_leaf(manager, "y", 22, commit=False)
        reopened, recovery = DurableTransactionManager.open(
            wal_dir, make_database
        )
        assert recovery is not None and recovery.verified
        assert recovery.undo.aborted_in_flight == ["t.1"]
        assert reopened.view(reopened.root) == {
            "x": 11,
            "y": 5,
            "z": 5,
        }
