"""Segment inventory + torn tails across segment boundaries.

The invariant under test: damage is repairable *only* at the very end
of the newest segment (a crash mid-append).  A tail-truncated
non-final segment, or damage followed by valid records, is corruption
— ``scan_wal`` must refuse rather than silently drop history.  The
size-based roller (``segment_bytes``) makes multi-segment logs the
common case, so the property sweep drives randomized segment layouts.
"""

from __future__ import annotations

import random

import pytest

from repro.durability.wal import (
    WriteAheadLog,
    list_segments,
    scan_wal,
    segment_first_lsn,
    segment_name,
    truncate_torn_tail,
)
from repro.errors import DurabilityError


def build_segmented_log(wal_dir, record_count: int, segment_bytes: int):
    """A closed multi-segment WAL with ``record_count`` records."""
    wal = WriteAheadLog(
        wal_dir, flush_interval=0.0, segment_bytes=segment_bytes
    )
    for index in range(record_count):
        wal.append("read", f"t.{index}", {"entity": "x"})
    wal.flush()
    wal.close()
    return list_segments(wal_dir)


class TestListSegments:
    def test_sorted_by_first_lsn_and_named_canonically(self, tmp_path):
        segments = build_segmented_log(tmp_path, 40, 512)
        assert len(segments) > 2, "roller produced a single segment"
        firsts = [segment_first_lsn(path) for path in segments]
        assert firsts == sorted(firsts)
        assert firsts[0] == 1
        for path, first in zip(segments, firsts):
            assert path.name == segment_name(first)
        # The inventory matches a fresh directory listing exactly.
        assert set(segments) == set(tmp_path.glob("wal-*.jsonl"))

    def test_rolled_segments_abut_with_no_lsn_gap(self, tmp_path):
        segments = build_segmented_log(tmp_path, 40, 512)
        scan = scan_wal(tmp_path)
        assert [record.lsn for record in scan.records] == list(
            range(1, 41)
        )
        boundaries = [segment_first_lsn(path) for path in segments[1:]]
        lsns = {record.lsn for record in scan.records}
        assert all(first in lsns for first in boundaries)


class TestTornTailAcrossSegments:
    @pytest.mark.parametrize("seed", range(8))
    def test_torn_final_segment_truncates(self, tmp_path, seed):
        rng = random.Random(seed)
        count = rng.randrange(12, 48)
        build_segmented_log(tmp_path, count, rng.choice((256, 512)))
        final = list_segments(tmp_path)[-1]
        if final.stat().st_size == 0:
            # The last append triggered a roll; tear the segment that
            # actually holds records (as if rotation never happened).
            final.unlink()
            final = list_segments(tmp_path)[-1]
        data = final.read_bytes()
        cut = rng.randrange(1, len(data))
        final.write_bytes(data[:cut])
        scan = scan_wal(tmp_path)
        intact = len(scan.records)
        if scan.torn is not None:
            assert truncate_torn_tail(scan)
            # After repair the log is clean and shorter.
            healed = scan_wal(tmp_path)
            assert healed.torn is None
            assert len(healed.records) == intact < count
        else:
            # The cut landed exactly on a record boundary.
            assert intact < count

    @pytest.mark.parametrize("seed", range(8))
    def test_torn_non_final_segment_is_refused(self, tmp_path, seed):
        rng = random.Random(seed)
        count = rng.randrange(12, 48)
        segments = build_segmented_log(
            tmp_path, count, rng.choice((256, 512))
        )
        assert len(segments) >= 2
        victim = segments[rng.randrange(0, len(segments) - 1)]
        data = victim.read_bytes()
        victim.write_bytes(data[: rng.randrange(1, len(data))])
        with pytest.raises(DurabilityError):
            scan_wal(tmp_path)

    def test_mid_segment_damage_with_valid_suffix_is_refused(
        self, tmp_path
    ):
        build_segmented_log(tmp_path, 20, 4096)
        (final,) = list_segments(tmp_path)
        lines = final.read_bytes().splitlines(keepends=True)
        assert len(lines) == 20
        # Chop the middle record in half but keep everything after it.
        lines[10] = lines[10][: len(lines[10]) // 2]
        final.write_bytes(b"".join(lines))
        with pytest.raises(DurabilityError, match="valid one"):
            scan_wal(tmp_path)

    def test_empty_final_segment_scans_clean(self, tmp_path):
        wal = WriteAheadLog(tmp_path, flush_interval=0.0)
        for index in range(5):
            wal.append("read", f"t.{index}", {"entity": "x"})
        wal.rotate()  # fresh, empty newest segment
        wal.close()
        segments = list_segments(tmp_path)
        assert segments[-1].stat().st_size == 0
        scan = scan_wal(tmp_path)
        assert scan.torn is None
        assert len(scan.records) == 5

    def test_empty_final_segment_does_not_excuse_prior_damage(
        self, tmp_path
    ):
        """A torn tail 'behind' an empty newest segment is corruption.

        The crash signature is damage at the end of the *newest*
        segment; a truncated record at the end of the previous one
        means bytes vanished after a successful rotation, and recovery
        must refuse to guess.
        """
        wal = WriteAheadLog(tmp_path, flush_interval=0.0)
        for index in range(5):
            wal.append("read", f"t.{index}", {"entity": "x"})
        wal.rotate()
        wal.close()
        victim = list_segments(tmp_path)[-2]
        data = victim.read_bytes()
        victim.write_bytes(data[:-7])
        with pytest.raises(DurabilityError):
            scan_wal(tmp_path)

    @pytest.mark.parametrize("seed", range(4))
    def test_truncate_repairs_only_what_scan_blessed(
        self, tmp_path, seed
    ):
        """truncate_torn_tail removes exactly the torn suffix bytes."""
        rng = random.Random(1000 + seed)
        count = rng.randrange(16, 40)
        build_segmented_log(tmp_path, count, 384)
        final = list_segments(tmp_path)[-1]
        data = final.read_bytes()
        # Tear inside the last record specifically.
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        cut = rng.randrange(last_line_start + 1, len(data))
        final.write_bytes(data[:cut])
        scan = scan_wal(tmp_path)
        assert scan.torn == (final, last_line_start)
        assert truncate_torn_tail(scan)
        assert final.read_bytes() == data[:last_line_start]
        assert len(scan_wal(tmp_path).records) == count - 1
