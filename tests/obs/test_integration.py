"""End-to-end: instrumented protocol and simulator produce real traces."""

from __future__ import annotations

from repro.core import Domain, Predicate, Schema, Spec
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    render_timeline,
    write_jsonl,
    load_jsonl,
)
from repro.protocol import TransactionManager
from repro.sim import DEFAULT_SCHEDULERS, cad_workload, run_one
from repro.storage import Database


def _database():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    constraint = Predicate.parse("x >= 0 & y >= 0")
    return Database(schema, constraint, {"x": 1, "y": 1})


class TestProtocolTracing:
    def test_lifecycle_spans(self):
        tracer = RecordingTracer()
        tm = TransactionManager(_database())
        tm.set_tracer(tracer)
        spec = Spec(Predicate.parse("x >= 0"), Predicate.parse("y >= 0"))
        txn = tm.define(tm.root, spec, {"y"})
        tm.validate(txn)
        tm.read(txn, "x")
        tm.write(txn, "y", 5)
        tm.commit(txn)
        kinds = [span.kind for span in tracer.spans_for(txn)]
        assert "define" in kinds
        assert "validate" in kinds
        assert "read" in kinds
        assert "write" in kinds
        assert "commit" in kinds

    def test_registry_histograms(self):
        registry = MetricsRegistry()
        tm = TransactionManager(_database())
        tm.set_registry(registry)
        spec = Spec(Predicate.parse("x >= 0"), Predicate.parse("true"))
        txn = tm.define(tm.root, spec, set())
        tm.validate(txn)
        tm.commit(txn)
        assert registry.histogram("validation_latency_us").count >= 1

    def test_abort_closes_write_span(self):
        tracer = RecordingTracer()
        tm = TransactionManager(_database())
        tm.set_tracer(tracer)
        spec = Spec(Predicate.parse("true"), Predicate.parse("true"))
        txn = tm.define(tm.root, spec, {"x"})
        tm.validate(txn)
        tm.begin_write(txn, "x")
        tm.abort(txn, reason="test")
        writes = [
            span for span in tracer.spans_for(txn) if span.kind == "write"
        ]
        assert writes and writes[0].end is not None
        assert writes[0].attrs.get("outcome") == "aborted"


class TestSimulatorTracing:
    def test_run_one_produces_full_timeline(self, tmp_path):
        workload = cad_workload(num_designers=10, think_time=1.0, seed=3)
        tracer = RecordingTracer()
        metrics = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            workload,
            seed=3,
            tracer=tracer,
        )
        assert metrics.committed_count > 0
        # The acceptance-criterion kinds, all present in one trace.
        assert {"arrive", "wait", "validate", "commit"} <= tracer.kinds()
        # Spans use the simulator's virtual clock.
        assert max(span.start for span in tracer.spans) > 1.0
        # Protocol and engine spans share the engine's txn naming.
        for span in tracer.spans:
            assert not span.txn.startswith("t.")
        # Round-trip through JSONL and render the timeline.
        path = tmp_path / "run.jsonl"
        write_jsonl(list(tracer.spans), path)
        text = render_timeline(load_jsonl(path))
        assert "== D0 ==" in text
        for kind in ("arrive", "wait", "validate", "commit"):
            assert kind in text

    def test_untraced_run_unchanged(self):
        workload = cad_workload(num_designers=4, seed=0)
        baseline = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"], workload, seed=0
        )
        tracer = RecordingTracer()
        traced = run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            workload,
            seed=0,
            tracer=tracer,
        )
        # Tracing must not perturb the simulation.
        assert traced.summary_row() == baseline.summary_row()
        assert len(tracer) > 0

    def test_wait_spans_carry_entity(self):
        workload = cad_workload(num_designers=10, think_time=1.0, seed=3)
        tracer = RecordingTracer()
        run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            workload,
            seed=3,
            tracer=tracer,
        )
        waits = tracer.of_kind("wait")
        assert waits
        for span in waits:
            assert "entity" in span.attrs


class TestClassifierTracing:
    def test_class_check_spans(self):
        from repro.classes import classify
        from repro.schedules import Schedule

        tracer = RecordingTracer()
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(y)")
        membership = classify(schedule, tracer=tracer, exact=True)
        checks = tracer.of_kind("class.check")
        assert {span.attrs["cls"] for span in checks} == {
            "CSR", "SR", "MVCSR", "MVSR", "PWCSR", "PWSR", "CPC", "PC",
        }
        verdicts = {
            span.attrs["cls"]: span.attrs["member"] for span in checks
        }
        assert verdicts["CSR"] == membership.csr

    def test_fast_path_traces_only_the_tests_that_run(self):
        from repro.classes import classify
        from repro.schedules import Schedule

        tracer = RecordingTracer()
        schedule = Schedule.parse("r1(x) w1(x) r2(x) w2(y)")
        membership = classify(schedule, tracer=tracer)
        checks = tracer.of_kind("class.check")
        # A CSR schedule settles all eight classes with one graph
        # check; lattice-derived memberships produce no span.
        assert [span.attrs["cls"] for span in checks] == ["CSR"]
        assert membership.csr and membership.pc

    def test_default_is_untraced(self):
        from repro.classes import classify
        from repro.schedules import Schedule

        schedule = Schedule.parse("r1(x) w1(x)")
        membership = classify(schedule)
        assert membership.csr
