"""Tests for the Prometheus text exposition renderer."""

from __future__ import annotations

from repro.obs import MetricsRegistry, render_prometheus


class TestRenderPrometheus:
    def test_empty_registry_is_just_a_newline(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_counter_lines(self):
        registry = MetricsRegistry()
        registry.counter("server.requests").inc(41)
        text = render_prometheus(registry)
        assert "# TYPE repro_server_requests counter" in text
        assert "repro_server_requests 41\n" in text
        # Integral values render without a trailing .0.
        assert "41.0" not in text

    def test_gauge_exports_value_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("server.queue.depth")
        gauge.set(7)
        gauge.set(2)
        lines = render_prometheus(registry).splitlines()
        assert "# TYPE repro_server_queue_depth gauge" in lines
        assert "repro_server_queue_depth 2" in lines
        assert "# TYPE repro_server_queue_depth_max gauge" in lines
        assert "repro_server_queue_depth_max 7" in lines

    def test_histogram_is_a_summary_with_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("server.request.latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        lines = render_prometheus(registry).splitlines()
        flat = "repro_server_request_latency"
        assert f"# TYPE {flat} summary" in lines
        assert f'{flat}{{quantile="0.5"}} 50' in lines
        assert f'{flat}{{quantile="0.95"}} 95' in lines
        assert f'{flat}{{quantile="0.99"}} 99' in lines
        assert f"{flat}_sum 5050" in lines
        assert f"{flat}_count 100" in lines

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("1odd-name.with spaces").inc()
        text = render_prometheus(registry)
        assert "repro__1odd_name_with_spaces 1" in text

    def test_custom_prefix_and_no_prefix(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "acme_c 1" in render_prometheus(registry, prefix="acme_")
        assert "\nc 1" in render_prometheus(registry, prefix="")

    def test_float_values_render_as_decimal(self):
        registry = MetricsRegistry()
        registry.counter("ratio").inc(0.25)
        assert "repro_ratio 0.25\n" in render_prometheus(registry)

    def test_every_sample_line_parses(self):
        # The format contract: every non-comment line is
        # `name{labels} value` with a float-parseable value.
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(2.0)
        for line in render_prometheus(registry).strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # must not raise
