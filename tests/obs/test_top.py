"""Tests for the ``repro top`` frame renderer (pure function, no tty)."""

from __future__ import annotations

from repro.obs import render_top


def _stats(
    counters: dict[str, float] | None = None,
    histograms: dict[str, dict[str, float]] | None = None,
    gauges: dict[str, dict[str, float]] | None = None,
    **extra,
) -> dict:
    return {
        "stats": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
        "queue_depth": extra.pop("queue_depth", 0),
        "parked": extra.pop("parked", 0),
        **extra,
    }


class TestRenderTop:
    def test_first_frame_shows_lifetime_totals(self):
        frame = render_top(
            _stats(counters={"server.txns.committed": 12.0})
        )
        assert "lifetime" in frame
        assert "commits 12" in frame

    def test_rates_come_from_counter_deltas(self):
        before = _stats(
            counters={
                "server.txns.committed": 100.0,
                "server.requests": 500.0,
            }
        )
        now = _stats(
            counters={
                "server.txns.committed": 120.0,
                "server.requests": 600.0,
            }
        )
        frame = render_top(now, previous=before, elapsed=2.0)
        assert "2.0s window" in frame
        assert "txn/s     10.0" in frame
        assert "req/s     50.0" in frame

    def test_abort_and_busy_percentages(self):
        frame = render_top(
            _stats(
                counters={
                    "server.txns.committed": 75.0,
                    "server.txns.aborted": 25.0,
                    "server.requests": 90.0,
                    "server.busy": 10.0,
                }
            )
        )
        assert "abort%  25.0" in frame
        assert "busy%  10.0" in frame

    def test_phase_rows_only_for_populated_histograms(self):
        frame = render_top(
            _stats(
                histograms={
                    "validation_latency_us": {
                        "count": 4, "p50": 10.0, "p95": 20.0,
                        "p99": 30.0, "max": 40.0,
                    },
                    "server.park.wait": {"count": 0},
                }
            )
        )
        assert "validate" in frame
        assert "10.00us" in frame
        assert "park wait" not in frame

    def test_second_latencies_render_in_milliseconds(self):
        frame = render_top(
            _stats(
                histograms={
                    "server.queue.wait": {
                        "count": 2, "p50": 0.004, "p95": 0.01,
                        "p99": 0.01, "max": 0.02,
                    },
                }
            )
        )
        assert "queue wait" in frame
        assert "4.00ms" in frame

    def test_queue_and_park_depths_with_high_water(self):
        frame = render_top(
            _stats(
                gauges={
                    "server.queue.depth": {"value": 0, "max": 9},
                    "server.park.depth": {"value": 1, "max": 3},
                    "server.sessions": {"value": 4, "max": 8},
                },
                queue_depth=2,
                parked=1,
            )
        )
        assert "queue 2 (max 9)" in frame
        assert "parked 1 (max 3)" in frame
        assert "sessions 4" in frame

    def test_live_spans_section(self):
        frame = render_top(
            _stats(
                live=[
                    {
                        "txn": "t.0.3", "kind": "txn.server",
                        "op": "commit", "age": 0.25,
                    }
                ]
            )
        )
        assert "slowest in flight" in frame
        assert "t.0.3" in frame
        assert "op=commit" in frame
        assert "250.0ms" in frame

    def test_live_section_idle_and_absent(self):
        idle = render_top(_stats(live=[]))
        assert "slowest in flight: (idle)" in idle
        untraced = render_top(_stats())
        assert "slowest" not in untraced
