"""Tests for JSONL export, reload, filtering, and timeline rendering."""

from __future__ import annotations

import io

from repro.obs import (
    RecordingTracer,
    filter_spans,
    load_jsonl,
    render_timeline,
    timeline_stats,
    transactions_of,
    write_jsonl,
)


def _sample_tracer() -> RecordingTracer:
    tracer = RecordingTracer()
    txn = tracer.start("txn", "T1", attempt=0)
    tracer.event("arrive", "T1")
    wait = tracer.start("wait", "T1", entity="x")
    tracer.end(wait)
    tracer.end(txn, outcome="committed")
    tracer.event("arrive", "T2")
    tracer.start("wait", "T2", entity="y")  # never resolved
    return tracer


class TestJsonlRoundTrip:
    def test_round_trip_is_identical(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(list(tracer.spans), path)
        assert count == len(tracer)
        loaded = load_jsonl(path)
        assert loaded == list(tracer.spans)

    def test_stream_round_trip(self):
        tracer = _sample_tracer()
        buffer = io.StringIO()
        write_jsonl(list(tracer.spans), buffer)
        buffer.seek(0)
        assert load_jsonl(buffer) == list(tracer.spans)

    def test_blank_lines_are_skipped(self):
        tracer = _sample_tracer()
        buffer = io.StringIO()
        write_jsonl(list(tracer.spans), buffer)
        text = "\n" + buffer.getvalue() + "\n\n"
        assert load_jsonl(io.StringIO(text)) == list(tracer.spans)


class TestFilters:
    def test_filter_by_txn(self):
        spans = list(_sample_tracer().spans)
        t2 = filter_spans(spans, txn="T2")
        assert {span.txn for span in t2} == {"T2"}
        assert len(t2) == 2

    def test_filter_by_kind(self):
        spans = list(_sample_tracer().spans)
        waits = filter_spans(spans, kinds=["wait"])
        assert [span.kind for span in waits] == ["wait", "wait"]

    def test_transactions_in_first_appearance_order(self):
        spans = list(_sample_tracer().spans)
        assert transactions_of(spans) == ["T1", "T2"]

    def test_stats(self):
        spans = list(_sample_tracer().spans)
        assert timeline_stats(spans) == {
            "arrive": 2,
            "txn": 1,
            "wait": 2,
        }


class TestRenderTimeline:
    def test_groups_and_nesting(self):
        text = render_timeline(list(_sample_tracer().spans))
        lines = text.splitlines()
        assert "== T1 ==" in lines
        assert "== T2 ==" in lines
        assert lines.index("== T1 ==") < lines.index("== T2 ==")
        # Children of the txn span are indented one level deeper
        # (the fixed-width timestamp column is the same on both lines).
        txn_line = next(line for line in lines if " txn " in line)
        arrive_line = next(line for line in lines if "arrive" in line)
        assert arrive_line.find("arrive") > txn_line.find("txn")

    def test_open_span_marker(self):
        text = render_timeline(list(_sample_tracer().spans))
        assert "[...]" in text  # T2's unresolved wait

    def test_attrs_rendered(self):
        text = render_timeline(list(_sample_tracer().spans))
        assert "entity=x" in text
        assert "outcome=committed" in text

    def test_empty(self):
        assert render_timeline([]) == "(no spans)"

    def test_render_survives_filtered_parent(self):
        # Filtering can drop a span's parent; depth computation must
        # not crash on the dangling parent_id.
        spans = list(_sample_tracer().spans)
        waits = filter_spans(spans, kinds=["wait"])
        assert "wait" in render_timeline(waits)


class TestCrossLayerTimeline:
    """render_timeline over a server-shaped tree: a `txn.server` root
    with request children, queue waits, and a group-commit fsync
    recorded after its causal parent closed."""

    def _server_tree(self) -> list:
        from repro.obs import LiveTracer, SpanRing

        tracer = LiveTracer(SpanRing(64), clock=iter(range(100)).__next__)
        feed = tracer.ring.subscribe()
        root = tracer.start("txn.server", "t.0")  # t=0
        request = tracer.start("request", "t.0", op="validate")  # t=1
        tracer.record("queue.wait", "t.0", 0.5, 1.0, parent=request)
        validate = tracer.start("validate", "t.0")  # t=2
        tracer.end(validate)  # t=3
        parent_at_append = tracer.current_span_id("t.0")
        tracer.end(request)  # t=4
        # The WAL flush lands after the request answered, parented to
        # the span captured at append time (the group-commit pattern).
        tracer.record(
            "wal.fsync", "t.0", 5.0, 6.0, parent=parent_at_append
        )
        tracer.end(root, outcome="committed")  # t=5
        spans, dropped = feed.poll()
        assert dropped == 0
        return spans

    def test_nesting_follows_causal_parents(self):
        text = render_timeline(self._server_tree())
        by_kind = {
            kind: next(
                line for line in text.splitlines() if f"{kind} " in line
            )
            for kind in ("txn.server", "request", "queue.wait", "wal.fsync")
        }
        root_indent = by_kind["txn.server"].find("txn.server")
        request_indent = by_kind["request"].find("request")
        wait_indent = by_kind["queue.wait"].find("queue.wait")
        fsync_indent = by_kind["wal.fsync"].find("wal.fsync")
        assert root_indent < request_indent
        assert request_indent < wait_indent
        # The fsync is causally under the request even though it was
        # recorded after the request closed.
        assert fsync_indent == wait_indent

    def test_one_block_per_transaction(self):
        text = render_timeline(self._server_tree())
        assert text.count("== t.0 ==") == 1

    def test_stats_counts_every_layer(self):
        counts = timeline_stats(self._server_tree())
        assert counts == {
            "queue.wait": 1,
            "request": 1,
            "txn.server": 1,
            "validate": 1,
            "wal.fsync": 1,
        }
