"""Unit tests for counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter("waits")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4


class TestGauge:
    def test_set_tracks_high_water(self):
        gauge = Gauge("queue_depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.max_value == 3


class TestHistogram:
    def test_empty(self):
        histogram = Histogram("wait_time")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0

    def test_stats(self):
        histogram = Histogram("latency")
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.mean == 2.5
        assert histogram.min == 1.0
        assert histogram.max == 4.0

    def test_nearest_rank_percentiles(self):
        histogram = Histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0

    def test_single_observation(self):
        histogram = Histogram("latency")
        histogram.observe(7.0)
        for p in (1, 50, 99):
            assert histogram.percentile(p) == 7.0

    def test_percentiles_map(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.percentiles(50, 100) == {"p50": 2.0, "p100": 3.0}

    def test_percentile_out_of_range(self):
        histogram = Histogram("latency")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestHistogramWindow:
    """``max_samples`` keeps percentiles over a sliding window while
    count/total/mean/max/min stay exact over the full lifetime."""

    def test_window_bounds_samples_but_not_lifetime_stats(self):
        histogram = Histogram("latency", max_samples=4)
        for value in range(1, 11):  # 1..10, window ends as [7, 8, 9, 10]
            histogram.observe(float(value))
        assert len(histogram.values) == 4
        assert histogram.count == 10
        assert histogram.total == 55.0
        assert histogram.mean == 5.5
        assert histogram.min == 1.0
        assert histogram.max == 10.0
        # Percentiles describe the window only.
        assert histogram.percentile(50) == 8.0
        assert histogram.percentile(100) == 10.0

    def test_summary_mixes_lifetime_and_window(self):
        histogram = Histogram("latency", max_samples=2)
        for value in (5.0, 1.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["max"] == 5.0  # lifetime max already evicted
        assert summary["p99"] == 2.0  # window is [1, 2]

    def test_registry_default_window_applies_to_new_histograms(self):
        registry = MetricsRegistry(default_max_samples=3)
        histogram = registry.histogram("wait")
        for value in range(10):
            histogram.observe(float(value))
        assert len(histogram.values) == 3
        assert histogram.count == 10
        # Pre-existing instruments keep their window when re-fetched.
        assert registry.histogram("wait").max_samples == 3


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("commits").inc(2)
        registry.gauge("depth").set(5)
        registry.histogram("wait").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["commits"] == 2
        assert snapshot["gauges"]["depth"]["max"] == 5
        assert snapshot["histograms"]["wait"]["count"] == 1
