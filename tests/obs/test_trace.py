"""Unit tests for the span tracer."""

from __future__ import annotations

from repro.obs import NULL_TRACER, RecordingTracer, Span, Tracer


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, Tracer)

    def test_all_hooks_are_noops(self):
        tracer = Tracer()
        assert tracer.start("txn", "T1", attempt=0) is None
        tracer.end(None, outcome="committed")
        assert tracer.event("arrive", "T1") is None
        tracer.alias("t.0.1", "T1")
        tracer.set_clock(lambda: 42.0)
        with tracer.span("wait", "T1") as handle:
            assert handle is None

    def test_disabled_recording_tracer_stays_empty(self):
        # Instrumented code guards every hook behind `tracer.enabled`;
        # a recorder with the flag off must therefore never be fed.
        # (This is the tier-1, non-flaky form of the overhead claim —
        # the timing form lives in benchmarks/bench_obs.py.)
        tracer = RecordingTracer()
        tracer.enabled = False
        from repro.core import Domain, Predicate, Schema, Spec
        from repro.protocol import TransactionManager
        from repro.storage import Database

        schema = Schema.of("x", "y", domain=Domain.interval(0, 100))
        constraint = Predicate.parse("x >= 0 & y >= 0")
        db = Database(schema, constraint, {"x": 1, "y": 1})
        tm = TransactionManager(db)
        tm.set_tracer(tracer)
        spec = Spec(Predicate.parse("x >= 0"), Predicate.parse("y >= 0"))
        txn = tm.define(tm.root, spec, {"y"})
        tm.validate(txn)
        tm.read(txn, "x")
        tm.write(txn, "y", 5)
        tm.commit(txn)
        assert len(tracer) == 0


class TestRecordingTracer:
    def test_span_start_end(self):
        tracer = RecordingTracer()
        span = tracer.start("txn", "T1", attempt=0)
        assert span.end is None
        assert span.duration is None
        tracer.end(span, outcome="committed")
        assert span.end is not None
        assert span.duration >= 0
        assert span.attrs == {"attempt": 0, "outcome": "committed"}

    def test_event_is_point(self):
        tracer = RecordingTracer()
        event = tracer.event("arrive", "T1")
        assert event.is_event
        assert event.duration == 0

    def test_nesting_builds_parent_links(self):
        tracer = RecordingTracer()
        outer = tracer.start("txn", "T1")
        inner = tracer.start("validate", "T1")
        leaf = tracer.event("validate.select", "T1")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        tracer.end(inner)
        sibling = tracer.event("read", "T1")
        assert sibling.parent_id == outer.span_id

    def test_parent_override(self):
        tracer = RecordingTracer()
        a = tracer.start("txn", "T1")
        b = tracer.event("lock.grant", "T1", parent=None)
        assert b.parent_id == a.span_id  # stack default
        c = tracer.event("lock.grant", "T1", parent=a)
        assert c.parent_id == a.span_id
        d = tracer.event("lock.grant", "T1", parent=a.span_id)
        assert d.parent_id == a.span_id

    def test_other_txn_does_not_nest(self):
        tracer = RecordingTracer()
        tracer.start("txn", "T1")
        other = tracer.start("txn", "T2")
        assert other.parent_id is None

    def test_tick_clock_is_monotonic(self):
        tracer = RecordingTracer()
        first = tracer.event("a", "T1")
        second = tracer.event("b", "T1")
        assert second.start > first.start

    def test_custom_clock(self):
        now = [10.0]
        tracer = RecordingTracer(clock=lambda: now[0])
        span = tracer.start("wait", "T1")
        now[0] = 13.5
        tracer.end(span)
        assert span.start == 10.0
        assert span.duration == 3.5

    def test_alias_redirects_new_spans(self):
        tracer = RecordingTracer()
        tracer.alias("t.0.1", "T1")
        span = tracer.start("validate", "t.0.1")
        assert span.txn == "T1"
        assert [s.kind for s in tracer.spans_for("T1")] == ["validate"]
        assert tracer.spans_for("t.0.1") == tracer.spans_for("T1")

    def test_alias_rehomes_earlier_spans(self):
        # The protocol's `define` event fires before the adapter can
        # register the alias; it must still land in the engine group.
        tracer = RecordingTracer()
        tracer.start("txn", "T1")
        define = tracer.event("define", "t.0.1")
        tracer.alias("t.0.1", "T1")
        assert define.txn == "T1"
        kinds = [s.kind for s in tracer.spans_for("T1")]
        assert kinds == ["txn", "define"]
        assert tracer.spans_for("t.0.1") == tracer.spans_for("T1")

    def test_queries(self):
        tracer = RecordingTracer()
        tracer.start("txn", "T1")
        tracer.event("arrive", "T1")
        tracer.event("arrive", "T2")
        assert len(tracer) == 3
        assert tracer.kinds() == {"txn", "arrive"}
        assert len(tracer.of_kind("arrive")) == 2

    def test_double_end_is_ignored(self):
        tracer = RecordingTracer()
        span = tracer.start("wait", "T1")
        tracer.end(span, first=True)
        first_end = span.end
        tracer.end(span, second=True)
        assert span.end == first_end
        assert "second" not in span.attrs


class TestSpan:
    def test_round_trip_dict(self):
        span = Span(
            span_id=7,
            kind="wait",
            txn="T3",
            start=1.5,
            end=2.5,
            parent_id=2,
            attrs={"entity": "x"},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_open_span_round_trip(self):
        span = Span(span_id=1, kind="txn", txn="T1", start=0.0)
        restored = Span.from_dict(span.to_dict())
        assert restored.end is None
        assert restored == span
