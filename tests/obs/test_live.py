"""Tests for the live layer: SpanRing, subscribers, and LiveTracer."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.obs import LiveTracer, SpanRing
from repro.obs.trace import Span


def _fake_clock(start: float = 0.0, step: float = 1.0):
    ticks = itertools.count()
    return lambda: start + step * next(ticks)


class TestSpanRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRing(0)

    def test_len_saturates_at_capacity(self):
        ring = SpanRing(4)
        for i in range(7):
            ring.push(Span(span_id=i, kind="e", txn="t", start=0.0, end=0.0))
        assert len(ring) == 4

    def test_subscriber_sees_only_spans_after_subscribe(self):
        ring = SpanRing(8)
        ring.push(Span(span_id=1, kind="e", txn="t", start=0.0, end=0.0))
        sub = ring.subscribe()
        ring.push(Span(span_id=2, kind="e", txn="t", start=1.0, end=1.0))
        spans, dropped = sub.poll()
        assert [s.span_id for s in spans] == [2]
        assert dropped == 0

    def test_poll_is_incremental(self):
        ring = SpanRing(8)
        sub = ring.subscribe()
        ring.push(Span(span_id=1, kind="e", txn="t", start=0.0, end=0.0))
        assert [s.span_id for s in sub.poll()[0]] == [1]
        # Nothing new: second poll is empty, not a replay.
        assert sub.poll() == ([], 0)

    def test_wraparound_reports_exact_drop_count(self):
        ring = SpanRing(4)
        sub = ring.subscribe()
        for i in range(10):  # 6 spans fall out of the window
            ring.push(Span(span_id=i, kind="e", txn="t", start=0.0, end=0.0))
        spans, dropped = sub.poll()
        assert dropped == 6
        assert [s.span_id for s in spans] == [6, 7, 8, 9]
        assert sub.dropped_total == 6

    def test_slow_subscriber_never_blocks_the_producer(self):
        # A subscriber that never polls must not stop pushes: the ring
        # overwrites the oldest spans and accounts for every loss.
        ring = SpanRing(16)
        sub = ring.subscribe()
        for i in range(16 * 3):
            ring.push(Span(span_id=i, kind="e", txn="t", start=0.0, end=0.0))
        spans, dropped = sub.poll()
        assert len(spans) == 16
        assert dropped == 32
        assert [s.span_id for s in spans] == list(range(32, 48))

    def test_on_drop_fires_with_the_lost_count(self):
        drops: list[int] = []
        ring = SpanRing(2, on_drop=drops.append)
        sub = ring.subscribe()
        for i in range(5):
            ring.push(Span(span_id=i, kind="e", txn="t", start=0.0, end=0.0))
        sub.poll()
        assert drops == [3]
        sub.poll()  # nothing new, nothing dropped
        assert drops == [3]

    def test_independent_subscriber_cursors(self):
        ring = SpanRing(8)
        fast, slow = ring.subscribe(), ring.subscribe()
        ring.push(Span(span_id=1, kind="e", txn="t", start=0.0, end=0.0))
        assert len(fast.poll()[0]) == 1
        ring.push(Span(span_id=2, kind="e", txn="t", start=1.0, end=1.0))
        assert [s.span_id for s in fast.poll()[0]] == [2]
        assert [s.span_id for s in slow.poll()[0]] == [1, 2]

    def test_unsubscribe_is_idempotent(self):
        ring = SpanRing(4)
        sub = ring.subscribe()
        sub.close()
        sub.close()
        assert ring._subscribers == []

    def test_latest(self):
        ring = SpanRing(4)
        for i in range(6):
            ring.push(Span(span_id=i, kind="e", txn="t", start=0.0, end=0.0))
        assert [s.span_id for s in ring.latest()] == [2, 3, 4, 5]
        assert [s.span_id for s in ring.latest(2)] == [4, 5]

    def test_concurrent_pushes_all_accounted_for(self):
        ring = SpanRing(64)
        sub = ring.subscribe()

        def produce(base: int) -> None:
            for i in range(200):
                ring.push(
                    Span(
                        span_id=base + i, kind="e", txn="t",
                        start=0.0, end=0.0,
                    )
                )

        threads = [
            threading.Thread(target=produce, args=(1000 * n,))
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans, dropped = sub.poll()
        assert len(spans) + dropped == 800


class TestLiveTracer:
    def test_completed_spans_stream_open_spans_do_not(self):
        tracer = LiveTracer(SpanRing(16), clock=_fake_clock())
        feed = tracer.ring.subscribe()
        outer = tracer.start("txn", "T1")
        inner = tracer.start("read", "T1")
        assert feed.poll() == ([], 0)  # nothing closed yet
        tracer.end(inner)
        tracer.end(outer)
        spans, _ = feed.poll()
        assert [s.kind for s in spans] == ["read", "txn"]  # close order

    def test_parent_comes_from_open_stack(self):
        tracer = LiveTracer(clock=_fake_clock())
        outer = tracer.start("txn", "T1")
        inner = tracer.start("validate", "T1")
        event = tracer.event("predicate.eval", "T1")
        assert inner.parent_id == outer.span_id
        assert event.parent_id == inner.span_id

    def test_explicit_parent_by_span_and_by_id(self):
        tracer = LiveTracer(clock=_fake_clock())
        root = tracer.start("txn", "T1")
        by_span = tracer.start("read", "T1", parent=root)
        by_id = tracer.event("note", "T1", parent=root.span_id)
        assert by_span.parent_id == root.span_id
        assert by_id.parent_id == root.span_id

    def test_end_merges_attrs_and_is_idempotent(self):
        tracer = LiveTracer(SpanRing(8), clock=_fake_clock())
        feed = tracer.ring.subscribe()
        span = tracer.start("txn", "T1", attempt=0)
        tracer.end(span, outcome="committed")
        tracer.end(span, outcome="late")  # no-op: already closed
        spans, _ = feed.poll()
        assert len(spans) == 1
        assert spans[0].attrs == {"attempt": 0, "outcome": "committed"}

    def test_alias_rehomes_open_spans(self):
        tracer = LiveTracer(clock=_fake_clock())
        span = tracer.start("request", "session.r1")
        tracer.alias("session.r1", "t.0")
        assert span.txn == "t.0"
        # Later spans under the alias chain land on the canonical name
        # and still see the open stack.
        child = tracer.start("read", "session.r1")
        assert child.txn == "t.0"
        assert child.parent_id == span.span_id

    def test_record_keeps_explicit_timestamps(self):
        tracer = LiveTracer(SpanRing(8), clock=_fake_clock())
        feed = tracer.ring.subscribe()
        root = tracer.start("txn", "T1")
        span = tracer.record(
            "wal.fsync", "wal", 3.0, 7.0, parent=root.span_id, records=2
        )
        assert (span.start, span.end) == (3.0, 7.0)
        assert span.parent_id == root.span_id
        assert [s.kind for s in feed.poll()[0]] == ["wal.fsync"]

    def test_event_is_a_point_span(self):
        tracer = LiveTracer(clock=_fake_clock(start=5.0, step=0.0))
        span = tracer.event("arrive", "T1")
        assert span.is_event
        assert span.start == span.end == 5.0

    def test_current_span_id_and_reparent(self):
        tracer = LiveTracer(clock=_fake_clock())
        root = tracer.start("txn", "T1")
        assert tracer.current_span_id("T1") == root.span_id
        assert tracer.current_span_id("unknown") is None
        stray = tracer.start("request", "other")
        tracer.reparent(stray, root)
        assert stray.parent_id == root.span_id
        tracer.reparent(stray, None)
        assert stray.parent_id is None

    def test_open_spans_sorted_by_start(self):
        tracer = LiveTracer(clock=_fake_clock())
        a = tracer.start("txn", "T1")
        b = tracer.start("txn", "T2")
        assert tracer.open_spans() == [a, b]
        tracer.end(a)
        assert tracer.open_spans() == [b]
        tracer.end(b)
        assert tracer.open_spans() == []


class TestSlowCapture:
    def _tracer(self, threshold: float):
        captured: list[tuple[Span, list[Span]]] = []
        tracer = LiveTracer(
            SpanRing(64),
            clock=_fake_clock(),
            slow_threshold=threshold,
            on_slow=lambda root, spans: captured.append((root, spans)),
        )
        return tracer, captured

    def test_slow_root_delivers_the_whole_tree(self):
        tracer, captured = self._tracer(threshold=2.0)
        root = tracer.start("txn", "T1")  # t=0
        child = tracer.start("read", "T1")  # t=1
        tracer.end(child)  # t=2
        tracer.end(root)  # t=3 → duration 3 >= 2
        assert len(captured) == 1
        got_root, spans = captured[0]
        assert got_root is root
        assert {s.kind for s in spans} == {"txn", "read"}

    def test_fast_tree_is_discarded(self):
        tracer, captured = self._tracer(threshold=100.0)
        root = tracer.start("txn", "T1")
        tracer.end(root)
        assert captured == []
        # The buffered tree died with its root — no leak.
        assert tracer._trees == {}
        assert tracer._roots == {}

    def test_point_root_resolves_immediately(self):
        tracer, captured = self._tracer(threshold=0.0)
        tracer.event("define", "T1")  # parent-less point span is a root
        assert len(captured) == 1
        assert tracer._trees == {}

    def test_tree_span_cap_keeps_memory_bounded(self):
        from repro.obs import live

        tracer, captured = self._tracer(threshold=0.0)
        root = tracer.start("txn", "T1")
        for _ in range(live._MAX_TREE_SPANS + 10):
            tracer.event("predicate.eval", "T1", parent=root.span_id)
        tracer.end(root)
        assert len(captured) == 1
        _, spans = captured[0]
        assert len(spans) == live._MAX_TREE_SPANS
