"""Tests for the admission analysis (concurrency quantification)."""

from __future__ import annotations

from repro.analysis import (
    admission_report,
    admitted_by_s2pl,
    admitted_by_to,
    example1_programs,
)
from repro.classes import is_conflict_serializable
from repro.schedules import Schedule, interleavings


class TestS2PLAdmission:
    def test_serial_always_admitted(self):
        assert admitted_by_s2pl(
            Schedule.parse("r1(x) w1(x) r2(x) w2(x)")
        )

    def test_conflicting_interleaving_rejected(self):
        # t2 writes x while t1 (unfinished) holds a read lock on it.
        assert not admitted_by_s2pl(
            Schedule.parse("r1(x) w2(x) w1(y)")
        )

    def test_shared_reads_interleave_fine(self):
        assert admitted_by_s2pl(Schedule.parse("r1(x) r2(x) w1(y)"))

    def test_locks_released_at_transaction_end(self):
        # t1 finishes completely before t2 touches x: admitted.
        assert admitted_by_s2pl(Schedule.parse("r1(x) w1(x) w2(x)"))

    def test_admitted_subset_of_csr(self):
        for schedule in interleavings(example1_programs()):
            if admitted_by_s2pl(schedule):
                assert is_conflict_serializable(schedule), str(schedule)


class TestTOAdmission:
    def test_in_order_admitted(self):
        assert admitted_by_to(Schedule.parse("r1(x) w1(x) r2(x)"))

    def test_late_read_rejected(self):
        # t1 arrives first (smaller ts) but reads after t2's write.
        assert not admitted_by_to(Schedule.parse("r1(y) w2(x) r1(x)"))

    def test_late_write_rejected(self):
        assert not admitted_by_to(Schedule.parse("r1(y) r2(x) w1(x)"))


class TestReport:
    def test_example1_admission_hierarchy(self):
        report = admission_report(
            example1_programs(), [{"x"}, {"y"}]
        )
        assert report.total == 35
        counts = report.counts
        # Operational schedulers admit a subset of their class…
        assert counts["s2pl"] <= counts["CSR"]
        assert counts["to"] <= counts["CSR"]
        # …and the lattice widens monotonically.
        assert counts["CSR"] <= counts["SR"] <= counts["MVSR"]
        assert counts["CSR"] <= counts["MVCSR"] <= counts["CPC"]
        assert counts["CPC"] <= counts["PC"]
        # The paper's point: real gains at every step on this input.
        assert counts["CPC"] > counts["CSR"]

    def test_fraction_and_rows(self):
        report = admission_report(
            example1_programs(), [{"x"}, {"y"}], limit=10
        )
        assert report.total == 10
        assert 0.0 <= report.fraction("CSR") <= 1.0
        rows = report.rows()
        assert any(row["criterion"] == "PC" for row in rows)
