"""Tests for the schedule → execution bridge, incl. Lemma 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    execution_from_serial_order,
    leaf_transactions_from_programs,
    schedule_to_execution,
)
from repro.classes import view_serialization_order
from repro.core import (
    BinOp,
    Const,
    DatabaseState,
    Domain,
    Predicate,
    Ref,
    Schema,
    UniqueState,
    check_execution,
)
from repro.errors import ScheduleError
from repro.schedules import Schedule, random_schedule


@pytest.fixture
def schema():
    return Schema.of("x", "y", domain=Domain.interval(0, 10_000))


CONSTRAINT = Predicate.parse("x >= 0 & y >= 0")


def _increment_effects(txn: str, entity: str):
    """Effects that preserve the constraint: entity := entity + txn."""
    return BinOp("+", Ref(entity), Const(int(txn)))


class TestEmbedding:
    def test_children_carry_c_as_i_and_o(self, schema):
        programs = Schedule.parse("r1(x) w1(x) r2(y)").programs()
        root = leaf_transactions_from_programs(
            schema, programs, CONSTRAINT, _increment_effects
        )
        for child in root.children:
            assert child.input_constraint == CONSTRAINT
            assert child.output_condition == CONSTRAINT

    def test_effects_realize_writes(self, schema):
        programs = Schedule.parse("w1(x)").programs()
        root = leaf_transactions_from_programs(
            schema, programs, CONSTRAINT, _increment_effects
        )
        child = root.children[0]
        assert child.update_set == {"x"}

    def test_reads_outside_constraint_rejected(self, schema):
        programs = Schedule.parse("r1(x)").programs()
        with pytest.raises(ScheduleError):
            leaf_transactions_from_programs(
                schema,
                programs,
                Predicate.parse("y >= 0"),  # does not mention x
                _increment_effects,
            )


class TestChainedExecution:
    def test_serial_chain_is_correct(self, schema):
        programs = Schedule.parse("r1(x) w1(x) r2(x) w2(y)").programs()
        root = leaf_transactions_from_programs(
            schema, programs, CONSTRAINT, _increment_effects
        )
        initial = UniqueState(schema, {"x": 5, "y": 6})
        execution = execution_from_serial_order(
            root, initial, list(root.child_names)
        )
        report = check_execution(
            execution, DatabaseState.single(initial)
        )
        assert report.ok, report.reasons

    def test_wrong_order_set_rejected(self, schema):
        programs = Schedule.parse("r1(x)").programs()
        root = leaf_transactions_from_programs(
            schema, programs, CONSTRAINT, _increment_effects
        )
        initial = UniqueState(schema, {"x": 5, "y": 6})
        with pytest.raises(ScheduleError):
            execution_from_serial_order(root, initial, [])


class TestLemma2:
    """All view serializable schedules are correct executions."""

    def _check(self, schedule: Schedule, schema: Schema) -> None:
        order = view_serialization_order(schedule)
        if order is None:
            return  # not VSR; Lemma 2 says nothing
        initial = UniqueState(schema, {"x": 5, "y": 6})
        execution = schedule_to_execution(
            schema,
            schedule,
            CONSTRAINT,
            initial,
            _increment_effects,
            list(order),
        )
        report = check_execution(
            execution, DatabaseState.single(initial)
        )
        assert report.ok, (str(schedule), report.reasons)

    def test_on_paper_examples(self, schema):
        for text in [
            "r1(x) w1(x) r2(x) w2(y)",
            "r1(x) w2(x) w1(x) w3(x)",  # region 5: VSR, not CSR
            "r1(x) w1(x) r2(x) r1(y) w1(y) r2(y) w2(y)",  # region 9
        ]:
            self._check(Schedule.parse(text), schema)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_txns=st.integers(min_value=2, max_value=3),
        ops=st.integers(min_value=1, max_value=3),
    )
    def test_lemma2_property(self, seed, num_txns, ops):
        schema = Schema.of("x", "y", domain=Domain.interval(0, 10_000))
        schedule = random_schedule(
            num_txns, ops, ["x", "y"], seed=seed
        )
        self._check(schedule, schema)
