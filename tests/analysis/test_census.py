"""Tests for the Figure-2 census."""

from __future__ import annotations

from repro.analysis import (
    CensusResult,
    census_of_programs,
    census_of_random_schedules,
    example1_programs,
    region_report,
    text_table,
)
from repro.classes import classify
from repro.schedules import Schedule


class TestExample1Census:
    def test_covers_all_interleavings(self):
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        assert result.total == 35
        assert result.containment_failures == 0

    def test_region_counts_sum_to_total(self):
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        assert sum(result.by_region.values()) == result.total

    def test_strict_gains_nonnegative(self):
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        assert all(gain >= 0 for gain in result.strict_gains().values())

    def test_extensions_actually_gain(self):
        # The whole point of Section 4: the extended classes admit
        # strictly more schedules on this canonical program set.
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        gains = result.strict_gains()
        assert gains["MVSR − SR"] > 0
        assert gains["PWCSR − CSR"] > 0

    def test_limit_respected(self):
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}], limit=10
        )
        assert result.total == 10


class TestBlindWriteCensus:
    def test_reaches_blind_write_regions(self):
        from repro.analysis import blind_write_programs

        result = census_of_programs(blind_write_programs(), [{"x"}])
        assert result.total == 12
        assert result.containment_failures == 0
        assert result.by_region.get(5, 0) > 0
        assert result.by_region.get(7, 0) > 0

    def test_complements_example1(self):
        from repro.analysis import blind_write_programs

        example1 = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        blind = census_of_programs(blind_write_programs(), [{"x"}])
        covered = set(example1.by_region) | set(blind.by_region)
        assert {1, 3, 4, 5, 7, 9} <= covered


class TestFigure2Reachability:
    def test_all_nine_regions_nonempty(self):
        """Figure 2's non-emptiness, by exhaustion over five program
        families (the figure's central structural claim)."""
        from repro.analysis import figure2_reachability

        merged = figure2_reachability()
        for region in range(1, 10):
            assert merged.get(region, 0) > 0, f"region {region} empty"

    def test_families_are_well_formed(self):
        from repro.analysis import REGION_FAMILIES
        from repro.schedules import Schedule

        for name, (text, objects) in REGION_FAMILIES.items():
            schedule = Schedule.parse(text)
            assert schedule.is_serial(), name
            mentioned = set().union(*objects)
            assert schedule.entities <= mentioned, name


class TestCensusEngines:
    """The dedup cache, exact mode, and jobs fan-out change nothing
    but the wall clock."""

    @staticmethod
    def counts(result):
        return (
            result.total,
            result.by_region,
            result.by_class,
            result.containment_failures,
        )

    def test_exact_mode_counts_identical(self):
        fast = census_of_programs(example1_programs(), [{"x"}, {"y"}])
        exact = census_of_programs(
            example1_programs(), [{"x"}, {"y"}], exact=True
        )
        assert self.counts(fast) == self.counts(exact)

    def test_dedup_counts_identical_and_cache_hits(self):
        cached = census_of_programs(example1_programs(), [{"x"}, {"y"}])
        uncached = census_of_programs(
            example1_programs(), [{"x"}, {"y"}], dedup=False
        )
        assert self.counts(cached) == self.counts(uncached)
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0

    def test_jobs_merge_equals_single_process(self):
        single = census_of_programs(example1_programs(), [{"x"}, {"y"}])
        striped = census_of_programs(
            example1_programs(), [{"x"}, {"y"}], jobs=2
        )
        # cache_hits may differ (per-worker caches); the counts not.
        assert self.counts(single) == self.counts(striped)

    def test_merge_sums_fields(self):
        a = CensusResult(
            total=2,
            by_region={9: 2},
            by_class={"CSR": 2},
            cache_hits=1,
        )
        b = CensusResult(
            total=3,
            by_region={9: 1, 6: 2},
            by_class={"CSR": 1, "SR": 3},
            containment_failures=1,
        )
        merged = a.merge(b)
        assert merged is a
        assert merged.total == 5
        assert merged.by_region == {9: 3, 6: 2}
        assert merged.by_class == {"CSR": 3, "SR": 3}
        assert merged.containment_failures == 1
        assert merged.cache_hits == 1

    def test_fingerprint_groups_equivalent_interleavings(self):
        from repro.analysis import schedule_fingerprint

        a = Schedule.parse("r1(x) r2(y) w1(x)")
        b = Schedule.parse("r2(y) r1(x) w1(x)")  # swap non-conflicting
        c = Schedule.parse("r1(x) w1(x) r2(y)")
        assert schedule_fingerprint(a) == schedule_fingerprint(b)
        assert schedule_fingerprint(a) == schedule_fingerprint(c)
        d = Schedule.parse("r1(x) w2(x)")
        e = Schedule.parse("w2(x) r1(x)")  # conflict order flipped
        assert schedule_fingerprint(d) != schedule_fingerprint(e)


class TestRandomCensus:
    def test_reproducible(self):
        a = census_of_random_schedules(30, seed=5)
        b = census_of_random_schedules(30, seed=5)
        assert a.by_region == b.by_region

    def test_containments_hold_at_scale(self):
        result = census_of_random_schedules(
            100, num_transactions=3, ops_per_transaction=3, seed=11
        )
        assert result.containment_failures == 0
        assert result.total == 100

    def test_fraction_helper(self):
        result = census_of_random_schedules(20, seed=2)
        assert 0.0 <= result.fraction_in("CSR") <= 1.0
        assert result.fraction_in("PC") >= result.fraction_in("CSR")


class TestReporting:
    def test_region_report_lists_all_regions(self):
        result = census_of_programs(
            example1_programs(), [{"x"}, {"y"}]
        )
        report = region_report(result.by_region)
        for region in range(1, 10):
            assert str(region) in report

    def test_text_table_alignment(self):
        table = text_table(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1

    def test_empty_table(self):
        assert text_table([]) == "(no rows)"

    def test_manual_record(self):
        result = CensusResult()
        membership = classify(Schedule.parse("r1(x) w1(x)"))
        result.record(membership)
        assert result.total == 1
        assert result.by_class["CSR"] == 1
