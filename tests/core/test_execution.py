"""Unit tests for executions (R, X) and their three checks."""

from __future__ import annotations

import pytest

from repro.core import (
    DatabaseState,
    Domain,
    Effect,
    Execution,
    LeafTransaction,
    NestedTransaction,
    Predicate,
    Schema,
    Spec,
    TxnName,
    UniqueState,
    VersionState,
)
from repro.errors import ExecutionError


@pytest.fixture
def schema():
    return Schema.of("x", "y", domain=Domain.interval(0, 100))


@pytest.fixture
def root(schema):
    """Root with two children: t.0 writes x:=1; t.1 writes y:=x."""
    name = TxnName.root()
    first = LeafTransaction(
        name.child(0), schema, Spec.trivial(), Effect({"x": 1})
    )
    second = LeafTransaction(
        name.child(1),
        schema,
        Spec.trivial(),
        Effect({"y": "x"}),
    )
    return NestedTransaction.build(
        name,
        schema,
        Spec.trivial(),
        [first, second],
        [(first.name, second.name)],
    )


@pytest.fixture
def initial(schema):
    return UniqueState(schema, {"x": 10, "y": 20})


def _vs(schema, **values):
    return VersionState(schema, values)


def _execution(root, schema, initial, reads_from, x0, x1, final):
    c0, c1 = root.child_names
    return Execution(
        root,
        DatabaseState.single(initial),
        reads_from,
        {c0: x0, c1: x1},
        final,
    )


class TestStructure:
    def test_results_apply_children(self, root, schema, initial):
        c0, c1 = root.child_names
        execution = _execution(
            root,
            schema,
            initial,
            [(c0, c1)],
            _vs(schema, x=10, y=20),
            _vs(schema, x=1, y=20),
            _vs(schema, x=1, y=1),
        )
        results = execution.results()
        assert results[c0]["x"] == 1
        assert results[c1]["y"] == 1

    def test_database_state_after_retains_versions(
        self, root, schema, initial
    ):
        c0, c1 = root.child_names
        execution = _execution(
            root,
            schema,
            initial,
            [(c0, c1)],
            _vs(schema, x=10, y=20),
            _vs(schema, x=1, y=20),
            _vs(schema, x=1, y=1),
        )
        after = execution.database_state_after()
        assert after.versions_of("x") == {10, 1}
        assert after.versions_of("y") == {20, 1}

    def test_unknown_child_in_r_rejected(self, root, schema, initial):
        with pytest.raises(ExecutionError):
            Execution(
                root,
                DatabaseState.single(initial),
                [(TxnName.parse("t.9"), root.child_names[0])],
                {
                    root.child_names[0]: _vs(schema, x=10, y=20),
                    root.child_names[1]: _vs(schema, x=10, y=20),
                },
                _vs(schema, x=10, y=20),
            )

    def test_missing_assignment_rejected(self, root, schema, initial):
        with pytest.raises(ExecutionError):
            Execution(
                root,
                DatabaseState.single(initial),
                [],
                {root.child_names[0]: _vs(schema, x=10, y=20)},
                _vs(schema, x=10, y=20),
            )


class TestValidity:
    def test_r_consistent_with_p(self, root, schema, initial):
        c0, c1 = root.child_names
        execution = _execution(
            root,
            schema,
            initial,
            [(c0, c1)],
            _vs(schema, x=10, y=20),
            _vs(schema, x=1, y=20),
            _vs(schema, x=1, y=1),
        )
        assert execution.is_valid()

    def test_r_reversing_p_is_invalid(self, root, schema, initial):
        c0, c1 = root.child_names  # P has c0 < c1
        execution = _execution(
            root,
            schema,
            initial,
            [(c1, c0)],  # R says c0 depends on c1: reversed
            _vs(schema, x=10, y=20),
            _vs(schema, x=10, y=20),
            _vs(schema, x=10, y=20),
        )
        assert not execution.is_valid()

    def test_transitive_reversal_detected(self, schema, initial):
        name = TxnName.root()
        children = [
            LeafTransaction(
                name.child(i), schema, Spec.trivial(), Effect({})
            )
            for i in range(3)
        ]
        root = NestedTransaction.build(
            name,
            schema,
            Spec.trivial(),
            children,
            [(children[0].name, children[2].name)],
        )
        state = _vs(schema, x=10, y=20)
        execution = Execution(
            root,
            DatabaseState.single(initial),
            # R: c2 -> c1 -> c0, so (c2, c0) in R+ while (c0, c2) in P+.
            [(children[2].name, children[1].name),
             (children[1].name, children[0].name)],
            {child.name: state for child in children},
            state,
        )
        assert not execution.is_valid()


class TestParentBased:
    def test_parent_values_are_fine(self, root, schema, initial):
        parent_input = _vs(schema, x=10, y=20)
        execution = _execution(
            root,
            schema,
            initial,
            [],
            parent_input,
            parent_input,
            parent_input,
        )
        assert execution.is_parent_based(parent_input)

    def test_r_predecessor_value_is_fine(self, root, schema, initial):
        c0, c1 = root.child_names
        parent_input = _vs(schema, x=10, y=20)
        execution = _execution(
            root,
            schema,
            initial,
            [(c0, c1)],
            parent_input,
            _vs(schema, x=1, y=20),  # x=1 comes from c0's result
            _vs(schema, x=1, y=1),
        )
        assert execution.is_parent_based(parent_input)

    def test_value_from_nowhere_is_violation(self, root, schema, initial):
        parent_input = _vs(schema, x=10, y=20)
        execution = _execution(
            root,
            schema,
            initial,
            [],  # no R edges
            parent_input,
            _vs(schema, x=77, y=20),  # 77 has no provenance
            parent_input,
        )
        violations = execution.parent_based_violations(parent_input)
        assert (root.child_names[1], "x") in violations

    def test_predecessor_value_needs_r_edge(self, root, schema, initial):
        c0, c1 = root.child_names
        parent_input = _vs(schema, x=10, y=20)
        execution = _execution(
            root,
            schema,
            initial,
            [],  # c1 reads c0's x=1 but R has no edge
            parent_input,
            _vs(schema, x=1, y=20),
            parent_input,
        )
        assert not execution.is_parent_based(parent_input)

    def test_multiversion_parent_source(self, root, schema):
        # Root semantics: any retained initial version is available.
        a = UniqueState(schema, {"x": 10, "y": 20})
        b = UniqueState(schema, {"x": 30, "y": 40})
        initial_db = DatabaseState([a, b])
        mixed = _vs(schema, x=10, y=40)  # mixes versions of a and b
        execution = Execution(
            root,
            initial_db,
            [],
            {root.child_names[0]: mixed, root.child_names[1]: mixed},
            mixed,
        )
        assert execution.is_parent_based(initial_db)

    def test_final_state_violations(self, root, schema, initial):
        parent_input = _vs(schema, x=10, y=20)
        execution = _execution(
            root,
            schema,
            initial,
            [],
            parent_input,
            parent_input,
            _vs(schema, x=55, y=20),  # 55 written by nobody
        )
        assert execution.final_state_violations(parent_input) == ["x"]


class TestCorrectness:
    def test_correct_when_constraints_hold(self, schema, initial):
        name = TxnName.root()
        child = LeafTransaction(
            name.child(0),
            schema,
            Spec(Predicate.parse("x >= 10"), Predicate.true()),
            Effect({"x": 50}),
            extra_reads=("x",),
        )
        root = NestedTransaction(
            name,
            schema,
            Spec(Predicate.true(), Predicate.parse("x = 50")),
            [child],
        )
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [],
            {child.name: _vs(schema, x=10, y=20)},
            _vs(schema, x=50, y=20),
        )
        assert execution.is_correct()
        assert execution.incorrectness_witnesses() == []

    def test_input_constraint_violation_detected(self, schema, initial):
        name = TxnName.root()
        child = LeafTransaction(
            name.child(0),
            schema,
            Spec(Predicate.parse("x >= 50"), Predicate.true()),
            Effect({}),
            extra_reads=("x",),
        )
        root = NestedTransaction(
            name, schema, Spec.trivial(), [child]
        )
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [],
            {child.name: _vs(schema, x=10, y=20)},
            _vs(schema, x=10, y=20),
        )
        assert not execution.is_correct()
        assert any(
            "I_" in reason
            for reason in execution.incorrectness_witnesses()
        )

    def test_output_condition_violation_detected(self, schema, initial):
        name = TxnName.root()
        child = LeafTransaction(
            name.child(0), schema, Spec.trivial(), Effect({})
        )
        root = NestedTransaction(
            name,
            schema,
            Spec(Predicate.true(), Predicate.parse("x = 99")),
            [child],
        )
        execution = Execution(
            root,
            DatabaseState.single(initial),
            [],
            {child.name: _vs(schema, x=10, y=20)},
            _vs(schema, x=10, y=20),
        )
        assert not execution.is_correct()
        assert any(
            "O_t" in reason
            for reason in execution.incorrectness_witnesses()
        )
