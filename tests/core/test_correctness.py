"""Tests for the correct-execution checker and searcher (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core import (
    DatabaseState,
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Predicate,
    Schema,
    Spec,
    TxnName,
    UniqueState,
    check_execution,
    find_correct_execution,
    has_correct_execution,
    iter_correct_executions,
)


@pytest.fixture
def schema():
    return Schema.of("x", "y", domain=Domain.interval(0, 100))


@pytest.fixture
def initial(schema):
    return DatabaseState.single(UniqueState(schema, {"x": 10, "y": 20}))


def _leaf(name, schema, i, o, effect, reads=()):
    return LeafTransaction(
        name,
        schema,
        Spec(Predicate.parse(i), Predicate.parse(o)),
        Effect(effect),
        extra_reads=reads,
    )


class TestSearch:
    def test_single_child_satisfiable(self, schema, initial):
        name = TxnName.root()
        child = _leaf(name.child(0), schema, "x >= 10", "true", {"x": 50})
        root = NestedTransaction(
            name,
            schema,
            Spec(Predicate.true(), Predicate.parse("x = 50")),
            [child],
        )
        execution = find_correct_execution(root, initial)
        assert execution is not None
        report = check_execution(execution, initial)
        assert report.ok, report.reasons

    def test_unsatisfiable_input(self, schema, initial):
        name = TxnName.root()
        child = _leaf(name.child(0), schema, "x >= 99", "true", {})
        root = NestedTransaction(name, schema, Spec.trivial(), [child])
        assert not has_correct_execution(root, initial)

    def test_unsatisfiable_output(self, schema, initial):
        name = TxnName.root()
        child = _leaf(name.child(0), schema, "true", "true", {"x": 5})
        root = NestedTransaction(
            name,
            schema,
            # Nobody ever writes 77, and the initial x is 10.
            Spec(Predicate.true(), Predicate.parse("x = 77")),
            [child],
        )
        assert find_correct_execution(root, initial) is None

    def test_chained_children(self, schema, initial):
        # t.0 must run first to make t.1's input constraint satisfiable.
        name = TxnName.root()
        first = _leaf(name.child(0), schema, "true", "true", {"x": 60})
        second = _leaf(
            name.child(1), schema, "x >= 60", "true", {"y": 1}
        )
        root = NestedTransaction.build(
            name,
            schema,
            Spec(Predicate.true(), Predicate.parse("y = 1")),
            [first, second],
            [(first.name, second.name)],
        )
        execution = find_correct_execution(root, initial)
        assert execution is not None
        assert check_execution(execution, initial).ok
        # t.1 must have read t.0's x.
        assert execution.input_state(second.name)["x"] == 60
        assert (first.name, second.name) in execution.reads_from

    def test_respects_partial_order(self, schema, initial):
        # Order forces t.0 before t.1, but only t.1-then-t.0 could
        # satisfy t.0's constraint — so no correct execution exists.
        name = TxnName.root()
        first = _leaf(name.child(0), schema, "y = 99", "true", {})
        second = _leaf(name.child(1), schema, "true", "true", {"y": 99})
        root = NestedTransaction.build(
            name,
            schema,
            Spec.trivial(),
            [first, second],
            [(first.name, second.name)],
        )
        assert find_correct_execution(root, initial) is None

    def test_unordered_children_allow_any_order(self, schema, initial):
        name = TxnName.root()
        first = _leaf(name.child(0), schema, "y = 99", "true", {})
        second = _leaf(name.child(1), schema, "true", "true", {"y": 99})
        root = NestedTransaction(
            name, schema, Spec.trivial(), [first, second]
        )  # empty order
        execution = find_correct_execution(root, initial)
        assert execution is not None
        assert check_execution(execution, initial).ok

    def test_multiversion_output_selection(self, schema, initial):
        # One child destroys x's useful value, but old versions are
        # retained, so an output condition over the *old* value holds.
        name = TxnName.root()
        child = _leaf(name.child(0), schema, "true", "true", {"x": 0})
        root = NestedTransaction(
            name,
            schema,
            Spec(Predicate.true(), Predicate.parse("x = 10")),
            [child],
        )
        execution = find_correct_execution(root, initial)
        assert execution is not None
        assert execution.final_state["x"] == 10

    def test_iter_yields_multiple_witnesses(self, schema, initial):
        name = TxnName.root()
        first = _leaf(name.child(0), schema, "true", "true", {"x": 1})
        second = _leaf(name.child(1), schema, "true", "true", {"y": 2})
        root = NestedTransaction(
            name, schema, Spec.trivial(), [first, second]
        )
        executions = list(iter_correct_executions(root, initial))
        assert len(executions) >= 2  # both linearizations at least
        for execution in executions:
            assert check_execution(execution, initial).ok

    def test_two_state_initial_mixing(self, schema):
        # Root semantics: a child may mix versions from different
        # initial unique states (the Theorem-1 construction).
        a = UniqueState(schema, {"x": 0, "y": 1})
        b = UniqueState(schema, {"x": 1, "y": 0})
        initial = DatabaseState([a, b])
        name = TxnName.root()
        child = _leaf(
            name.child(0), schema, "x = 1 & y = 1", "true", {}
        )
        root = NestedTransaction(name, schema, Spec.trivial(), [child])
        execution = find_correct_execution(root, initial)
        assert execution is not None
        state = execution.input_state(child.name)
        assert state["x"] == 1 and state["y"] == 1
        assert check_execution(execution, initial).ok


class TestCheckReport:
    def test_report_collects_reasons(self, schema, initial):
        from repro.core import Execution, VersionState

        name = TxnName.root()
        child = _leaf(name.child(0), schema, "x = 77", "true", {})
        root = NestedTransaction(name, schema, Spec.trivial(), [child])
        bad = Execution(
            root,
            initial,
            [],
            {child.name: VersionState(schema, {"x": 77, "y": 20})},
            VersionState(schema, {"x": 10, "y": 20}),
        )
        report = check_execution(bad, initial)
        assert report.valid
        assert not report.parent_based  # 77 has no provenance
        assert report.correct  # I_t holds on the (illegal) state
        assert not report.ok
        assert report.reasons
