"""Unit and property tests for partial orders."""

from __future__ import annotations

from math import factorial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartialOrder
from repro.errors import PartialOrderViolation


class TestConstruction:
    def test_empty_order(self):
        order = PartialOrder.empty(["a", "b", "c"])
        assert not order.comparable("a", "b")

    def test_total_order(self):
        order = PartialOrder.total(["a", "b", "c"])
        assert order.precedes("a", "c")
        assert not order.precedes("c", "a")

    def test_cycle_rejected(self):
        with pytest.raises(PartialOrderViolation):
            PartialOrder(["a", "b"], [("a", "b"), ("b", "a")])

    def test_self_loop_rejected(self):
        with pytest.raises(PartialOrderViolation):
            PartialOrder(["a"], [("a", "a")])

    def test_unknown_element_rejected(self):
        with pytest.raises(PartialOrderViolation):
            PartialOrder(["a"], [("a", "b")])

    def test_chain_of_chains(self):
        order = PartialOrder.chain_of_chains([["a", "b"], ["c", "d"]])
        assert order.precedes("a", "b")
        assert order.precedes("c", "d")
        assert not order.comparable("a", "c")


class TestClosure:
    def test_transitivity(self):
        order = PartialOrder(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert order.precedes("a", "c")
        assert ("a", "c") in order.closure
        assert ("a", "c") in order  # __contains__ uses closure

    def test_predecessors_successors(self):
        order = PartialOrder(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert order.predecessors("c") == {"a", "b"}
        assert order.successors("a") == {"b", "c"}
        assert order.immediate_predecessors("c") == {"b"}
        assert order.immediate_successors("a") == {"b"}

    def test_minimal_maximal(self):
        order = PartialOrder(["a", "b", "c"], [("a", "c"), ("b", "c")])
        assert order.minimal_elements() == {"a", "b"}
        assert order.maximal_elements() == {"c"}

    def test_path_query_matches_figure4(self):
        order = PartialOrder(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert order.has_path("a", "c")
        assert not order.has_path("c", "a")


class TestCombination:
    def test_extend_ok(self):
        order = PartialOrder.empty(["a", "b"]).extend([("a", "b")])
        assert order.precedes("a", "b")

    def test_extend_cycle_rejected(self):
        order = PartialOrder(["a", "b"], [("a", "b")])
        with pytest.raises(PartialOrderViolation):
            order.extend([("b", "a")])

    def test_restrict_keeps_mediated_constraints(self):
        # a < b < c restricted to {a, c} must keep a < c.
        order = PartialOrder(["a", "b", "c"], [("a", "b"), ("b", "c")])
        restricted = order.restrict(["a", "c"])
        assert restricted.precedes("a", "c")

    def test_restrict_unknown(self):
        with pytest.raises(PartialOrderViolation):
            PartialOrder.empty(["a"]).restrict(["b"])

    def test_consistency_check(self):
        # The execution-definition constraint: P+ pairs not reversed in R+.
        p = PartialOrder(["a", "b"], [("a", "b")])
        r_good = PartialOrder(["a", "b"], [("a", "b")])
        r_bad = PartialOrder(["a", "b"], [("b", "a")])
        assert p.is_consistent_with(r_good)
        assert not p.is_consistent_with(r_bad)


class TestLinearizations:
    def test_antichain_has_factorial_many(self):
        order = PartialOrder.empty(["a", "b", "c"])
        assert sum(1 for _ in order.linearizations()) == factorial(3)

    def test_total_order_has_one(self):
        order = PartialOrder.total(["a", "b", "c"])
        assert list(order.linearizations()) == [["a", "b", "c"]]

    def test_all_linearizations_are_extensions(self):
        order = PartialOrder(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "d")]
        )
        for linear in order.linearizations():
            assert order.is_linearized_by(linear)

    def test_topological_order_is_extension(self):
        order = PartialOrder(
            ["a", "b", "c", "d"], [("a", "c"), ("b", "c"), ("c", "d")]
        )
        assert order.is_linearized_by(order.topological_order())

    def test_is_linearized_by_rejects_wrong_sets(self):
        order = PartialOrder.total(["a", "b"])
        assert not order.is_linearized_by(["a"])
        assert not order.is_linearized_by(["a", "b", "c"])
        assert not order.is_linearized_by(["b", "a"])


@settings(max_examples=50, deadline=None)
@given(
    pair_indices=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=8,
    )
)
def test_closure_is_transitive_and_irreflexive(pair_indices):
    """Property: the computed closure is a strict partial order."""
    elements = [f"e{i}" for i in range(5)]
    pairs = [
        (elements[a], elements[b]) for a, b in pair_indices if a != b
    ]
    try:
        order = PartialOrder(elements, pairs)
    except PartialOrderViolation:
        return  # cyclic input, correctly rejected
    closure = order.closure
    for a, b in closure:
        assert a != b
        for c, d in closure:
            if b == c:
                assert (a, d) in closure
