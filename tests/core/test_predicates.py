"""Unit and property tests for CNF predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Atom,
    Clause,
    Predicate,
    Term,
    parse,
)
from repro.errors import (
    PredicateError,
    PredicateParseError,
    UnboundEntityError,
)


class TestTerm:
    def test_entity_term(self):
        term = Term.of("x")
        assert term.is_entity
        assert term.value({"x": 5}) == 5

    def test_constant_term(self):
        term = Term.of(7)
        assert not term.is_entity
        assert term.value({}) == 7

    def test_unbound_entity(self):
        with pytest.raises(UnboundEntityError):
            Term.of("x").value({})

    def test_term_must_be_exactly_one_kind(self):
        with pytest.raises(PredicateError):
            Term(entity="x", constant=3)
        with pytest.raises(PredicateError):
            Term()

    def test_boolean_constant_rejected(self):
        with pytest.raises(PredicateError):
            Term.of(True)


class TestAtom:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("=", 3, 3, True),
            ("=", 3, 4, False),
            ("!=", 3, 4, True),
            ("<", 3, 4, True),
            ("<", 4, 4, False),
            ("<=", 4, 4, True),
            (">", 5, 4, True),
            (">=", 4, 4, True),
            (">=", 3, 4, False),
        ],
    )
    def test_all_comparators(self, op, a, b, expected):
        atom = Atom.of("x", op, "y")
        assert atom.evaluate({"x": a, "y": b}) is expected

    def test_double_equals_alias(self):
        assert Atom.of("x", "==", 1).op == "="

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            Atom.of("x", "<>", 1)

    def test_entities(self):
        assert Atom.of("x", "<", "y").entities == {"x", "y"}
        assert Atom.of("x", "<", 3).entities == {"x"}
        assert Atom.of(1, "<", 3).entities == frozenset()


class TestClause:
    def test_disjunction(self):
        clause = Clause.of(Atom.of("x", "=", 1), Atom.of("y", "=", 2))
        assert clause.evaluate({"x": 1, "y": 0})
        assert clause.evaluate({"x": 0, "y": 2})
        assert not clause.evaluate({"x": 0, "y": 0})

    def test_object_is_mentioned_entities(self):
        clause = Clause.of(Atom.of("x", "<", "y"), Atom.of("z", "=", 0))
        assert clause.object == {"x", "y", "z"}

    def test_empty_clause_rejected(self):
        with pytest.raises(PredicateError):
            Clause(())


class TestPredicate:
    def test_true_predicate(self):
        assert Predicate.true().is_true
        assert Predicate.true().evaluate({})

    def test_conjunction_semantics(self):
        predicate = parse("x > 0 & y > 0")
        assert predicate.evaluate({"x": 1, "y": 1})
        assert not predicate.evaluate({"x": 1, "y": 0})

    def test_objects_per_conjunct(self):
        predicate = parse("x > 0 & (y = 1 | z = 2) & x < 9")
        assert predicate.objects() == (
            frozenset({"x"}),
            frozenset({"y", "z"}),
            frozenset({"x"}),
        )

    def test_entities(self):
        assert parse("x > 0 & (y = 1 | z = 2)").entities() == {
            "x",
            "y",
            "z",
        }

    def test_and_concatenates_clauses(self):
        combined = parse("x > 0") & parse("y > 0")
        assert len(combined) == 2
        assert str(combined) == "x > 0 & y > 0"

    def test_equality_and_hash(self):
        assert parse("x > 0") == parse("x > 0")
        assert hash(parse("x > 0")) == hash(parse("x > 0"))
        assert parse("x > 0") != parse("x > 1")

    def test_callable(self):
        assert parse("x = 1")({"x": 1})


class TestParser:
    def test_round_trip(self):
        text = "x = 1 & (y < 2 | z != 0)"
        assert str(parse(text)) == text

    def test_true_literal(self):
        assert parse("true").is_true

    def test_negative_constants(self):
        assert parse("x > -5").evaluate({"x": 0})

    def test_entity_to_entity(self):
        assert parse("x <= y").evaluate({"x": 1, "y": 2})

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "x >",
            "x 1",
            "(x = 1",
            "x = 1 |",
            "x = 1 | y = 2",  # disjunction requires parentheses (CNF)
            "x = 1 & & y = 2",
            "x @ 1",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(PredicateParseError):
            parse(bad)

    def test_double_symbols_accepted(self):
        predicate = parse("x == 1 && (y == 2 || z == 3)")
        assert predicate.evaluate({"x": 1, "y": 2, "z": 0})


class TestSatisfiabilitySearch:
    def test_find_over_database_state(self, two_state):
        predicate = parse("x = 1 & y = 0")
        witness = predicate.find_satisfying_version_state(two_state)
        assert witness is not None
        assert witness["x"] == 1 and witness["y"] == 0

    def test_unsatisfiable(self, two_state):
        predicate = parse("x = 1 & x = 0")
        assert predicate.find_satisfying_version_state(two_state) is None
        assert not predicate.is_satisfiable_over(two_state)

    def test_ignores_unmentioned_entities(self, two_state):
        witness = parse("x = 1").find_satisfying_version_state(two_state)
        assert witness is not None
        assert witness["x"] == 1
        assert "y" in witness  # total assignment

    def test_constant_only_clause_false(self, two_state):
        predicate = parse("1 = 2")
        assert predicate.find_satisfying_version_state(two_state) is None

    def test_constant_only_clause_true(self, two_state):
        predicate = parse("1 = 1 & x = 0")
        assert predicate.find_satisfying_version_state(two_state) is not None

    def test_iter_satisfying_assignments_counts(self):
        predicate = parse("(x = 1 | y = 1)")
        solutions = list(
            predicate.iter_satisfying_assignments(
                {"x": [0, 1], "y": [0, 1]}
            )
        )
        assert len(solutions) == 3  # all but (0, 0)

    def test_missing_candidates_error(self):
        with pytest.raises(PredicateError):
            parse("x = 1 & y = 1").find_satisfying_assignment({"x": [1]})

    def test_satisfiable_states_generator(self, two_state):
        predicate = parse("x = y")
        matching = list(predicate.satisfiable_states(two_state))
        assert {(vs["x"], vs["y"]) for vs in matching} == {(0, 0), (1, 1)}

    def test_holds_for_all(self, two_state):
        assert parse("x >= 0").holds_for_all(two_state)
        assert not parse("x = 0").holds_for_all(two_state)


@st.composite
def _candidate_maps(draw):
    entities = draw(
        st.lists(
            st.sampled_from(["a", "b", "c"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return {
        name: draw(
            st.lists(
                st.integers(min_value=0, max_value=4),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        for name in entities
    }


@st.composite
def _predicates_over(draw, names):
    clauses = []
    for __ in range(draw(st.integers(min_value=1, max_value=3))):
        atoms = []
        for __ in range(draw(st.integers(min_value=1, max_value=2))):
            entity = draw(st.sampled_from(names))
            op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
            value = draw(st.integers(min_value=0, max_value=4))
            atoms.append(Atom.of(entity, op, value))
        clauses.append(Clause(tuple(atoms)))
    return Predicate(clauses)


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_search_agrees_with_brute_force(data):
    """Property: backtracking search finds a solution iff one exists."""
    from itertools import product

    candidates = data.draw(_candidate_maps())
    names = sorted(candidates)
    predicate = data.draw(_predicates_over(names))

    found = predicate.find_satisfying_assignment(candidates)
    brute = None
    for combo in product(*(candidates[name] for name in names)):
        assignment = dict(zip(names, combo))
        if predicate.evaluate(assignment):
            brute = assignment
            break
    assert (found is None) == (brute is None)
    if found is not None:
        assert predicate.evaluate(found)
        assert all(found[name] in candidates[name] for name in found)
