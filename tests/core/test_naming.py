"""Unit tests for hierarchical transaction names (Figure 1)."""

from __future__ import annotations

import pytest

from repro.core import TxnName
from repro.errors import InvalidNameError


class TestConstruction:
    def test_root(self):
        assert str(TxnName.root()) == "t"
        assert TxnName.root().depth == 0

    def test_parse_round_trip(self):
        name = TxnName.parse("t.1.0.2")
        assert str(name) == "t.1.0.2"
        assert name.parts == ("t", "1", "0", "2")

    def test_empty_rejected(self):
        with pytest.raises(InvalidNameError):
            TxnName.parse("")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidNameError):
            TxnName.parse("t..1")

    def test_child_generation(self):
        assert str(TxnName.root().child(0)) == "t.0"
        assert str(TxnName.parse("t.1").child(2)) == "t.1.2"

    def test_negative_child_rejected(self):
        with pytest.raises(InvalidNameError):
            TxnName.root().child(-1)


class TestTreeRelations:
    def test_parent(self):
        assert TxnName.parse("t.1.0").parent == TxnName.parse("t.1")
        assert TxnName.root().parent is None

    def test_prefix_matches_figure4(self):
        # Figure 4's prefix() returns all but the last component.
        assert TxnName.parse("t.1.0").prefix == TxnName.parse("t.1")

    def test_depth(self):
        assert TxnName.parse("t.1.0.2").depth == 3

    def test_ancestor_descendant(self):
        root = TxnName.root()
        deep = TxnName.parse("t.1.0")
        assert root.is_ancestor_of(deep)
        assert deep.is_descendant_of(root)
        assert not deep.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)  # proper ancestry

    def test_sibling(self):
        a = TxnName.parse("t.1")
        b = TxnName.parse("t.2")
        c = TxnName.parse("t.1.0")
        assert a.is_sibling_of(b)
        assert not a.is_sibling_of(a)
        assert not a.is_sibling_of(c)

    def test_unrelated_subtrees(self):
        a = TxnName.parse("t.1.0")
        b = TxnName.parse("t.2.0")
        assert not a.is_ancestor_of(b)
        assert not a.is_sibling_of(b)


class TestOrdering:
    def test_numeric_components_compare_numerically(self):
        assert TxnName.parse("t.2") < TxnName.parse("t.10")

    def test_creation_order_of_figure1(self):
        names = [
            TxnName.parse(text)
            for text in ["t.1.0", "t.0", "t.2", "t.0.1", "t.1"]
        ]
        assert [str(n) for n in sorted(names)] == [
            "t.0",
            "t.0.1",
            "t.1",
            "t.1.0",
            "t.2",
        ]

    def test_leaf_index(self):
        assert TxnName.parse("t.1.7").leaf_index == "7"
