"""Unit tests for unique, database, and version states."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DatabaseState,
    Domain,
    Schema,
    UniqueState,
    VersionState,
)
from repro.errors import SchemaError, UnknownEntityError


@pytest.fixture
def schema() -> Schema:
    return Schema.of("x", "y", domain=Domain.interval(0, 9))


class TestUniqueState:
    def test_mapping_behaviour(self, schema):
        state = UniqueState(schema, {"x": 1, "y": 2})
        assert state["x"] == 1
        assert dict(state) == {"x": 1, "y": 2}
        assert len(state) == 2

    def test_unknown_entity(self, schema):
        state = UniqueState(schema, {"x": 1, "y": 2})
        with pytest.raises(UnknownEntityError):
            state["z"]

    def test_replace_preserves_others(self, schema):
        state = UniqueState(schema, {"x": 1, "y": 2})
        updated = state.replace(x=5)
        assert updated["x"] == 5
        assert updated["y"] == 2
        assert state["x"] == 1  # original untouched

    def test_hash_and_equality(self, schema):
        a = UniqueState(schema, {"x": 1, "y": 2})
        b = UniqueState(schema, {"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != UniqueState(schema, {"x": 1, "y": 3})

    def test_domain_enforced(self, schema):
        with pytest.raises(SchemaError):
            UniqueState(schema, {"x": 99, "y": 0})


class TestDatabaseState:
    def test_single_is_unique(self, schema):
        state = DatabaseState.single(UniqueState(schema, {"x": 1, "y": 2}))
        assert state.is_unique()
        assert len(state) == 1

    def test_union_keeps_old_versions(self, schema):
        a = UniqueState(schema, {"x": 1, "y": 2})
        b = a.replace(x=3)
        state = DatabaseState.single(a).add(b)
        assert len(state) == 2
        assert state.versions_of("x") == {1, 3}
        assert state.versions_of("y") == {2}

    def test_or_operator(self, schema):
        a = DatabaseState.single(UniqueState(schema, {"x": 1, "y": 2}))
        b = DatabaseState.single(UniqueState(schema, {"x": 3, "y": 2}))
        assert len(a | b) == 2

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseState([])

    def test_mixed_schemas_rejected(self, schema):
        other = Schema.of("q", domain=Domain.interval(0, 9))
        with pytest.raises(SchemaError):
            DatabaseState(
                [
                    UniqueState(schema, {"x": 0, "y": 0}),
                    UniqueState(other, {"q": 0}),
                ]
            )

    def test_version_state_count_is_product(self, schema):
        a = UniqueState(schema, {"x": 1, "y": 2})
        state = (
            DatabaseState.single(a)
            .add(a.replace(x=3))
            .add(a.replace(y=4))
        )
        # x has {1, 3}, y has {2, 4}
        assert state.version_state_count() == 4

    def test_version_states_enumeration(self, schema):
        a = UniqueState(schema, {"x": 0, "y": 0})
        state = DatabaseState.single(a).add(a.replace(x=1))
        combos = {(vs["x"], vs["y"]) for vs in state.version_states()}
        assert combos == {(0, 0), (1, 0)}

    def test_version_states_deterministic(self, schema):
        a = UniqueState(schema, {"x": 0, "y": 0})
        state = DatabaseState.single(a).add(a.replace(x=1, y=1))
        first = [dict(vs) for vs in state.version_states()]
        second = [dict(vs) for vs in state.version_states()]
        assert first == second

    def test_singleton_version_states_equal_state(self, schema):
        a = UniqueState(schema, {"x": 5, "y": 6})
        state = DatabaseState.single(a)
        states = list(state.version_states())
        assert len(states) == 1
        assert dict(states[0]) == dict(a)

    def test_contains_version_state(self, schema):
        a = UniqueState(schema, {"x": 1, "y": 2})
        state = DatabaseState.single(a).add(a.replace(x=3))
        assert state.contains_version_state({"x": 3, "y": 2})
        assert state.contains_version_state({"x": 1, "y": 2})
        assert not state.contains_version_state({"x": 4, "y": 2})
        assert not state.contains_version_state({"x": 3})

    def test_membership_and_iteration(self, schema):
        a = UniqueState(schema, {"x": 1, "y": 2})
        state = DatabaseState.single(a)
        assert a in state
        assert list(state) == [a]


class TestVersionState:
    def test_mixes_values_across_unique_states(self, schema):
        version = VersionState(schema, {"x": 7, "y": 1})
        assert version["x"] == 7

    def test_as_unique(self, schema):
        version = VersionState(schema, {"x": 7, "y": 1})
        unique = version.as_unique()
        assert isinstance(unique, UniqueState)
        assert dict(unique) == dict(version)

    def test_version_and_unique_states_compare_by_content(self, schema):
        # Both are total assignments; the paper notes every version
        # state satisfies the unique-state definition.
        version = VersionState(schema, {"x": 7, "y": 1})
        unique = UniqueState(schema, {"x": 7, "y": 1})
        assert version == unique


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_every_version_state_draws_from_retained_versions(values):
    """Property: V_S members pick each value from some member of S."""
    schema = Schema.of("x", "y", domain=Domain.interval(0, 9))
    states = [
        UniqueState(schema, {"x": x, "y": y}) for x, y in values
    ]
    db_state = DatabaseState(states)
    count = 0
    for version in db_state.version_states():
        count += 1
        assert db_state.contains_version_state(dict(version))
        assert version["x"] in db_state.versions_of("x")
        assert version["y"] in db_state.versions_of("y")
    assert count == db_state.version_state_count()
