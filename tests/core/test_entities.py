"""Unit tests for entities, domains, and schemas."""

from __future__ import annotations

import pytest

from repro.core import Domain, Entity, Schema
from repro.errors import DomainError, SchemaError, UnknownEntityError


class TestDomain:
    def test_boolean_contains_zero_and_one(self):
        domain = Domain.boolean()
        assert 0 in domain
        assert 1 in domain
        assert 2 not in domain
        assert -1 not in domain

    def test_boolean_rejects_bool_type(self):
        # Python bools are ints, but predicates forbid them; domains do too.
        assert True not in Domain.boolean()

    def test_interval_membership(self):
        domain = Domain.interval(-5, 5)
        assert -5 in domain
        assert 5 in domain
        assert 6 not in domain
        assert "3" not in domain

    def test_interval_len_and_iter(self):
        domain = Domain.interval(2, 5)
        assert len(domain) == 4
        assert list(domain) == [2, 3, 4, 5]

    def test_enumerated(self):
        domain = Domain.enumerated([7, 3, 3, 9])
        assert len(domain) == 3
        assert list(domain) == [3, 7, 9]
        assert 7 in domain
        assert 4 not in domain

    def test_sample_is_member(self):
        for domain in (
            Domain.boolean(),
            Domain.interval(10, 20),
            Domain.enumerated([42]),
        ):
            assert domain.sample() in domain

    def test_empty_interval_rejected(self):
        with pytest.raises(DomainError):
            Domain.interval(5, 4)

    def test_empty_enumeration_rejected(self):
        with pytest.raises(DomainError):
            Domain.enumerated([])

    def test_half_specified_interval_rejected(self):
        with pytest.raises(DomainError):
            Domain(low=3)


class TestEntity:
    def test_validate_accepts_domain_member(self):
        Entity("x", Domain.interval(0, 10)).validate(5)

    def test_validate_rejects_outside(self):
        with pytest.raises(DomainError):
            Entity("x", Domain.interval(0, 10)).validate(11)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Entity("")

    def test_default_domain_is_boolean(self):
        entity = Entity("flag")
        assert 1 in entity.domain
        assert 2 not in entity.domain


class TestSchema:
    def test_of_builds_boolean_entities(self):
        schema = Schema.of("a", "b")
        assert schema.names == ("a", "b")
        assert 1 in schema["a"].domain

    def test_names_sorted(self):
        schema = Schema.of("z", "a", "m")
        assert schema.names == ("a", "m", "z")

    def test_duplicate_entity_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Entity("x"), Entity("x")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_entity_lookup(self):
        schema = Schema.of("x")
        with pytest.raises(UnknownEntityError):
            schema["nope"]

    def test_mapping_protocol(self):
        schema = Schema.of("x", "y")
        assert len(schema) == 2
        assert set(schema) == {"x", "y"}
        assert "x" in schema

    def test_equality_and_hash(self):
        a = Schema.of("x", "y")
        b = Schema.of("y", "x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.of("x")

    def test_validate_assignment_ok(self):
        Schema.of("x", "y").validate_assignment({"x": 0, "y": 1})

    def test_validate_assignment_missing(self):
        with pytest.raises(SchemaError, match="missing"):
            Schema.of("x", "y").validate_assignment({"x": 0})

    def test_validate_assignment_extra(self):
        with pytest.raises(UnknownEntityError):
            Schema.of("x").validate_assignment({"x": 0, "y": 1})

    def test_validate_assignment_domain(self):
        with pytest.raises(DomainError):
            Schema.of("x").validate_assignment({"x": 9})

    def test_restrict(self):
        schema = Schema.of("x", "y", "z")
        sub = schema.restrict(["x", "z"])
        assert sub.names == ("x", "z")

    def test_restrict_unknown(self):
        with pytest.raises(UnknownEntityError):
            Schema.of("x").restrict(["q"])
