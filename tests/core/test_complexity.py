"""Tests for the Lemma-1 / Theorem-1 machinery (Section 3.2)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    VersionState,
    lemma1_instance,
    theorem1_instance,
    verify_certificate,
)
from repro.sat import CNFFormula, brute_force_solve, random_formula
from repro.sat.reduction import decode_version_state


class TestLemma1:
    def test_satisfiable_formula(self):
        instance = lemma1_instance(CNFFormula.parse("a | b & ~a | b"))
        witness = instance.solve_direct()
        assert witness is not None
        assert instance.input_constraint.evaluate(witness)
        model = decode_version_state(instance, witness)
        assert model["b"] is True  # b forced true

    def test_unsatisfiable_formula(self):
        instance = lemma1_instance(
            CNFFormula.parse("a & ~a | b & ~b")
        )
        assert instance.solve_direct() is None
        assert instance.solve_via_sat() is None
        assert not instance.is_satisfiable

    def test_two_state_database_shape(self):
        instance = lemma1_instance(CNFFormula.parse("a | b"))
        # S = {all-zeros, all-ones} over E = variables.
        assert len(instance.db_state) == 2
        assert instance.db_state.versions_of("a") == {0, 1}
        # V_S is every 0/1 assignment: 2^|E|.
        assert instance.db_state.version_state_count() == 4

    def test_direct_and_sat_agree_on_fixed_formulas(self):
        for text in [
            "a",
            "~a",
            "a | b & ~b",
            "a | b & ~a | ~b",
            "a & b & c",
            "a | ~b & b | ~c & c | ~a",
        ]:
            instance = lemma1_instance(CNFFormula.parse(text))
            direct = instance.solve_direct()
            via_sat = instance.solve_via_sat()
            assert (direct is None) == (via_sat is None), text
            if direct is not None:
                assert instance.input_constraint.evaluate(direct)
                assert instance.input_constraint.evaluate(via_sat)

    @settings(max_examples=40, deadline=None)
    @given(
        num_vars=st.integers(min_value=1, max_value=5),
        num_clauses=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_reduction_preserves_satisfiability(
        self, num_vars, num_clauses, seed
    ):
        """Property: SAT ⟺ the reduced instance has a witness."""
        formula = random_formula(num_vars, num_clauses, seed=seed)
        instance = lemma1_instance(formula)
        sat_answer = brute_force_solve(formula) is not None
        assert instance.is_satisfiable == sat_answer
        assert (instance.solve_via_sat() is not None) == sat_answer


class TestTheorem1:
    def test_embedding_single_child_trivial_output(self):
        instance = theorem1_instance(CNFFormula.parse("a | ~b"))
        root = instance.transaction
        assert len(root) == 1  # T = {t_1}
        assert root.output_condition.is_true  # O_t = true
        execution = instance.solve()
        assert execution is not None

    def test_unsatisfiable_embedding(self):
        instance = theorem1_instance(CNFFormula.parse("a & ~a"))
        assert not instance.has_correct_execution

    def test_certificate_verification(self):
        instance = theorem1_instance(CNFFormula.parse("a | b"))
        execution = instance.solve()
        assert execution is not None
        child = instance.transaction.child_names[0]
        assert verify_certificate(
            instance,
            {child: execution.input_state(child)},
            execution.final_state,
        )

    def test_bad_certificate_rejected(self):
        instance = theorem1_instance(CNFFormula.parse("a & b"))
        child = instance.transaction.child_names[0]
        schema = instance.transaction.schema
        bad_state = VersionState(
            schema, {name: 0 for name in schema.names}
        )
        assert not verify_certificate(
            instance, {child: bad_state}, bad_state
        )

    def test_missing_assignment_rejected(self):
        instance = theorem1_instance(CNFFormula.parse("a"))
        schema = instance.transaction.schema
        state = VersionState(schema, {name: 1 for name in schema.names})
        assert not verify_certificate(instance, {}, state)

    @settings(max_examples=25, deadline=None)
    @given(
        num_vars=st.integers(min_value=1, max_value=4),
        num_clauses=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_execution_exists_iff_satisfiable(
        self, num_vars, num_clauses, seed
    ):
        formula = random_formula(num_vars, num_clauses, seed=seed)
        instance = theorem1_instance(formula)
        expected = brute_force_solve(formula) is not None
        assert instance.has_correct_execution == expected
