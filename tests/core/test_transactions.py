"""Unit tests for transactions, effects, and specifications."""

from __future__ import annotations

import pytest

from repro.core import (
    BinOp,
    Const,
    Domain,
    Effect,
    LeafTransaction,
    NestedTransaction,
    Predicate,
    Ref,
    Schema,
    Spec,
    TxnName,
    UniqueState,
    VersionState,
    expr,
    increment,
)
from repro.errors import NestingError, TransactionError


@pytest.fixture
def schema() -> Schema:
    return Schema.of("x", "y", domain=Domain.interval(0, 100))


@pytest.fixture
def state(schema) -> VersionState:
    return VersionState(schema, {"x": 10, "y": 20})


class TestExpr:
    def test_const(self):
        assert Const(5).evaluate({}) == 5
        assert Const(5).references() == frozenset()

    def test_ref(self):
        assert Ref("x").evaluate({"x": 3}) == 3
        assert Ref("x").references() == {"x"}

    def test_binop(self):
        e = BinOp("+", Ref("x"), Const(2))
        assert e.evaluate({"x": 3}) == 5
        assert e.references() == {"x"}

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("min", 2), ("max", 5)],
    )
    def test_all_operators(self, op, expected):
        assert BinOp(op, Const(5), Const(2)).evaluate({}) == expected

    def test_unknown_operator(self):
        with pytest.raises(TransactionError):
            BinOp("/", Const(1), Const(2))

    def test_expr_coercion(self):
        assert isinstance(expr(3), Const)
        assert isinstance(expr("x"), Ref)
        assert expr(Const(1)) is not None
        with pytest.raises(TransactionError):
            expr(True)

    def test_increment_helper(self):
        assert increment("x", 5).evaluate({"x": 1}) == 6


class TestEffect:
    def test_apply_reads_input_only(self, schema, state):
        # Both writes read the *input* x, so swapping works.
        effect = Effect({"x": Ref("y"), "y": Ref("x")})
        result = effect.apply(state)
        assert result["x"] == 20 and result["y"] == 10

    def test_fixed_point_preserved(self, schema, state):
        result = Effect({"x": 99}).apply(state)
        assert result["y"] == 20

    def test_read_written_sets(self):
        effect = Effect({"x": increment("y")})
        assert effect.written_entities == {"x"}
        assert effect.read_entities == {"y"}

    def test_result_is_unique_state(self, state):
        assert isinstance(Effect({}).apply(state), UniqueState)


class TestSpec:
    def test_trivial(self):
        spec = Spec.trivial()
        assert spec.input_constraint.is_true
        assert spec.output_condition.is_true

    def test_invariant(self):
        predicate = Predicate.parse("x > 0")
        spec = Spec.invariant(predicate)
        assert spec.input_constraint == predicate
        assert spec.output_condition == predicate


class TestLeafTransaction:
    def _leaf(self, schema, spec=None, effect=None, reads=()):
        return LeafTransaction(
            TxnName.parse("t.0"),
            schema,
            spec or Spec.trivial(),
            effect or Effect({}),
            extra_reads=reads,
        )

    def test_update_and_fixed_sets(self, schema):
        leaf = LeafTransaction(
            TxnName.parse("t.0"),
            schema,
            Spec(Predicate.parse("y >= 0"), Predicate.true()),
            Effect({"x": increment("y")}),
        )
        assert leaf.update_set == {"x"}
        assert leaf.fixed_point_set == {"y"}
        assert leaf.input_set == {"y"}
        assert leaf.read_set == {"y"}

    def test_reads_must_appear_in_input_constraint(self, schema):
        with pytest.raises(TransactionError, match="I_t"):
            LeafTransaction(
                TxnName.parse("t.0"),
                schema,
                Spec(Predicate.parse("x >= 0"), Predicate.true()),
                Effect({"x": Ref("y")}),  # reads y, I_t mentions only x
            )

    def test_trivial_input_constraint_allows_reads(self, schema):
        # A true I_t mentions nothing; the check is waived (the model's
        # rule applies to declared constraints).
        leaf = self._leaf(schema, effect=Effect({"x": Ref("y")}))
        assert leaf.read_set == {"y"}

    def test_apply(self, schema, state):
        leaf = self._leaf(schema, effect=Effect({"x": 42}))
        assert leaf.apply(state)["x"] == 42

    def test_satisfies_specification(self, schema, state):
        leaf = LeafTransaction(
            TxnName.parse("t.0"),
            schema,
            Spec(Predicate.parse("x >= 0"), Predicate.parse("x = 42")),
            Effect({"x": 42}),
        )
        assert leaf.satisfies_specification(state)

    def test_specification_vacuous_when_precondition_fails(
        self, schema, state
    ):
        leaf = LeafTransaction(
            TxnName.parse("t.0"),
            schema,
            Spec(Predicate.parse("x > 50"), Predicate.parse("x = 0")),
            Effect({"x": 99}),  # violates O, but I fails on state
        )
        assert leaf.satisfies_specification(state)

    def test_unknown_entities_rejected(self, schema):
        with pytest.raises(TransactionError):
            LeafTransaction(
                TxnName.parse("t.0"),
                schema,
                Spec(Predicate.parse("q > 0"), Predicate.true()),
                Effect({}),
            )


class TestNestedTransaction:
    def _children(self, schema):
        root = TxnName.root()
        first = LeafTransaction(
            root.child(0),
            schema,
            Spec.trivial(),
            Effect({"x": increment("x")}),
        )
        second = LeafTransaction(
            root.child(1),
            schema,
            Spec.trivial(),
            Effect({"y": Ref("x")}),
        )
        return root, [first, second]

    def test_build_and_structure(self, schema):
        root, children = self._children(schema)
        nested = NestedTransaction.build(
            root,
            schema,
            Spec.trivial(),
            children,
            [(children[0].name, children[1].name)],
        )
        assert len(nested) == 2
        assert nested.child(children[0].name) is children[0]
        assert children[0].name in nested
        assert nested.order.precedes(children[0].name, children[1].name)
        assert nested.update_set == {"x", "y"}
        assert not nested.is_leaf

    def test_apply_runs_children_serially(self, schema, state):
        root, children = self._children(schema)
        nested = NestedTransaction.build(
            root,
            schema,
            Spec.trivial(),
            children,
            [(children[0].name, children[1].name)],
        )
        result = nested.apply(state)
        assert result["x"] == 11  # incremented
        assert result["y"] == 11  # reads incremented x (serial order)

    def test_empty_nested_is_identity(self, schema, state):
        nested = NestedTransaction(
            TxnName.root(), schema, Spec.trivial(), []
        )
        assert dict(nested.apply(state)) == dict(state)

    def test_wrong_parent_rejected(self, schema):
        stray = LeafTransaction(
            TxnName.parse("q.0"), schema, Spec.trivial(), Effect({})
        )
        with pytest.raises(NestingError):
            NestedTransaction(
                TxnName.root(), schema, Spec.trivial(), [stray]
            )

    def test_duplicate_child_rejected(self, schema):
        child = LeafTransaction(
            TxnName.root().child(0), schema, Spec.trivial(), Effect({})
        )
        with pytest.raises(NestingError):
            NestedTransaction(
                TxnName.root(), schema, Spec.trivial(), [child, child]
            )

    def test_order_must_match_children(self, schema):
        from repro.core import PartialOrder

        child = LeafTransaction(
            TxnName.root().child(0), schema, Spec.trivial(), Effect({})
        )
        wrong = PartialOrder.empty([TxnName.root().child(5)])
        with pytest.raises(NestingError):
            NestedTransaction(
                TxnName.root(), schema, Spec.trivial(), [child], wrong
            )

    def test_descendants_and_leaves(self, schema):
        root = TxnName.root()
        grandchild = LeafTransaction(
            root.child(0).child(0), schema, Spec.trivial(), Effect({})
        )
        middle = NestedTransaction(
            root.child(0), schema, Spec.trivial(), [grandchild]
        )
        nested = NestedTransaction(root, schema, Spec.trivial(), [middle])
        names = [str(node.name) for node in nested.descendants()]
        assert names == ["t.0", "t.0.0"]
        assert [str(leaf.name) for leaf in nested.leaves()] == ["t.0.0"]

    def test_object_set_collects_output_objects(self, schema):
        root = TxnName.root()
        child = LeafTransaction(
            root.child(0),
            schema,
            Spec(Predicate.true(), Predicate.parse("x > 0 & y > 0")),
            Effect({}),
        )
        nested = NestedTransaction(root, schema, Spec.trivial(), [child])
        assert nested.object_set == {
            frozenset({"x"}),
            frozenset({"y"}),
        }
