"""Tests for the Section-5 protocol adapter."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AccessStatus,
    KorthSpeegleScheduler,
    PlannedAccess,
)
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 10_000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0"),
        {"x": 10, "y": 20},
    )


def _plan(*accesses):
    return [PlannedAccess(kind, entity) for kind, entity in accesses]


class TestLifecycle:
    def test_begin_defines_and_validates(self, db):
        cc = KorthSpeegleScheduler(db)
        result = cc.begin("T1", _plan(("read", "x"), ("write", "y")))
        assert result.status is AccessStatus.OK
        assert cc.read("T1", "x").value == 10
        assert cc.write("T1", "y", 33).status is AccessStatus.OK
        assert cc.commit("T1").status is AccessStatus.OK

    def test_split_writes_supported(self, db):
        cc = KorthSpeegleScheduler(db)
        assert cc.supports_split_writes()
        cc.begin("T1", _plan(("write", "x")))
        assert cc.write_begin("T1", "x").status is AccessStatus.OK
        assert (
            cc.write_end("T1", "x", 77).status is AccessStatus.OK
        )

    def test_reader_blocks_during_write_window(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("W", _plan(("write", "x")))
        cc.write_begin("W", "x")
        blocked = cc.begin("R", _plan(("read", "x")))
        assert blocked.status is AccessStatus.BLOCKED
        result = cc.write_end("W", "x", 5)
        assert "R" in result.unblocked
        assert cc.begin("R", _plan(("read", "x"))).status is (
            AccessStatus.OK
        )

    def test_commit_waits_for_predecessor(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("A", _plan(("write", "x")))
        cc.begin("B", _plan(("read", "x")), predecessors=("A",))
        blocked = cc.commit("B")
        assert blocked.status is AccessStatus.BLOCKED
        cc.write("A", "x", 5)
        result = cc.commit("A")
        assert "B" in result.unblocked
        assert cc.commit("B").status is AccessStatus.OK

    def test_predecessor_write_aborts_reader(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("A", _plan(("write", "x")))
        cc.begin("B", _plan(("read", "x")), predecessors=("A",))
        cc.read("B", "x")  # stale read of the initial version
        result = cc.write("A", "x", 5)
        assert "B" in result.aborted

    def test_abort_cascade_reported_in_engine_ids(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("W", _plan(("write", "x")))
        cc.write("W", "x", 500)
        cc.begin("R", _plan(("read", "x")))
        cc.read("R", "x")
        result = cc.abort("W")
        # R read W's version (500 is the latest the selector prefers).
        if cc.manager is not None:
            assert result.status is AccessStatus.OK

    def test_unknown_txn_read_raises(self, db):
        from repro.errors import ProtocolError

        cc = KorthSpeegleScheduler(db)
        with pytest.raises(ProtocolError):
            cc.read("ghost", "x")


class TestProtocolProperties:
    def test_writers_never_block_each_other(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("A", _plan(("write", "x")))
        cc.begin("B", _plan(("write", "x")))
        assert cc.write_begin("A", "x").status is AccessStatus.OK
        assert cc.write_begin("B", "x").status is AccessStatus.OK
        cc.write_end("A", "x", 1)
        cc.write_end("B", "x", 2)
        assert cc.commit("A").status is AccessStatus.OK
        assert cc.commit("B").status is AccessStatus.OK

    def test_run_verifies_parent_based_and_correct(self, db):
        cc = KorthSpeegleScheduler(db)
        cc.begin("A", _plan(("read", "x"), ("write", "x")))
        cc.begin("B", _plan(("read", "y"), ("write", "y")))
        cc.read("A", "x")
        cc.write("A", "x", 11)
        cc.read("B", "y")
        cc.write("B", "y", 21)
        cc.commit("A")
        cc.commit("B")
        tm = cc.manager
        assert tm.verify_parent_based(tm.root) == []
        assert tm.verify_correctness(tm.root) == []
