"""Tests for timestamp-ordering schedulers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AccessStatus,
    ConservativeTimestampOrdering,
    PlannedAccess,
    TimestampOrdering,
)
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(schema, Predicate.true(), {"x": 1, "y": 2})


class TestBasicTO:
    def test_in_order_accesses_succeed(self, db):
        cc = TimestampOrdering(db)
        cc.begin("a")
        cc.begin("b")
        assert cc.read("a", "x").status is AccessStatus.OK
        assert cc.write("b", "x", 5).status is AccessStatus.OK

    def test_late_read_aborts(self, db):
        cc = TimestampOrdering(db)
        cc.begin("a")
        cc.begin("b")
        cc.write("b", "x", 5)  # wts(x) = ts(b) > ts(a)
        assert cc.read("a", "x").status is AccessStatus.ABORTED

    def test_late_write_after_read_aborts(self, db):
        cc = TimestampOrdering(db)
        cc.begin("a")
        cc.begin("b")
        cc.read("b", "x")  # rts(x) = ts(b)
        assert cc.write("a", "x", 9).status is AccessStatus.ABORTED

    def test_never_blocks(self, db):
        cc = TimestampOrdering(db)
        cc.begin("a")
        cc.begin("b")
        for result in (
            cc.read("a", "x"),
            cc.write("a", "x", 3),
            cc.read("b", "x"),
        ):
            assert result.status is not AccessStatus.BLOCKED

    def test_abort_expunges(self, db):
        cc = TimestampOrdering(db)
        cc.begin("a")
        cc.write("a", "x", 9)
        cc.abort("a")
        assert db.store.values_of("x") == {1}


class TestConservativeTO:
    def _plan(self, *entities, writes=()):
        return [
            PlannedAccess(
                "write" if entity in writes else "read", entity
            )
            for entity in entities
        ]

    def test_younger_waits_for_older_conflicting(self, db):
        cc = ConservativeTimestampOrdering(db)
        cc.begin("a", self._plan("x", writes={"x"}))
        cc.begin("b", self._plan("x"))
        assert cc.read("b", "x").status is AccessStatus.BLOCKED

    def test_no_conflict_no_wait(self, db):
        cc = ConservativeTimestampOrdering(db)
        cc.begin("a", self._plan("x", writes={"x"}))
        cc.begin("b", self._plan("y"))
        assert cc.read("b", "y").status is AccessStatus.OK

    def test_commit_unblocks(self, db):
        cc = ConservativeTimestampOrdering(db)
        cc.begin("a", self._plan("x", writes={"x"}))
        cc.begin("b", self._plan("x"))
        cc.read("b", "x")
        cc.write("a", "x", 7)
        result = cc.commit("a")
        assert "b" in result.unblocked
        assert cc.read("b", "x").status is AccessStatus.OK

    def test_never_aborts(self, db):
        cc = ConservativeTimestampOrdering(db)
        cc.begin("a", self._plan("x", writes={"x"}))
        cc.begin("b", self._plan("x", writes={"x"}))
        for result in (cc.write("b", "x", 5), cc.read("b", "x")):
            assert result.status is not AccessStatus.ABORTED
