"""Tests for multiversion timestamp ordering."""

from __future__ import annotations

import pytest

from repro.baselines import AccessStatus, MultiversionTimestampOrdering
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(schema, Predicate.true(), {"x": 1, "y": 2})


@pytest.fixture
def cc(db):
    return MultiversionTimestampOrdering(db)


class TestReads:
    def test_reads_never_block_or_abort(self, cc):
        cc.begin("a")
        cc.begin("b")
        cc.write("b", "x", 5)
        # a is older: it must see the initial version, not b's.
        result = cc.read("a", "x")
        assert result.status is AccessStatus.OK
        assert result.value == 1

    def test_young_reader_sees_young_version(self, cc):
        cc.begin("a")
        cc.write("a", "x", 5)
        cc.begin("b")
        assert cc.read("b", "x").value == 5

    def test_snapshot_stability(self, cc):
        cc.begin("a")
        first = cc.read("a", "x").value
        cc.begin("b")
        cc.write("b", "x", 9)
        assert cc.read("a", "x").value == first


class TestWrites:
    def test_late_write_under_read_aborts(self, cc):
        cc.begin("a")
        cc.begin("b")
        cc.read("b", "x")  # b read the initial version
        # a writing x would create a version b *should* have seen.
        assert cc.write("a", "x", 5).status is AccessStatus.ABORTED

    def test_disjoint_writes_fine(self, cc):
        cc.begin("a")
        cc.begin("b")
        cc.read("b", "x")
        assert cc.write("a", "y", 5).status is AccessStatus.OK

    def test_abort_removes_chain_versions(self, cc):
        cc.begin("a")
        cc.write("a", "x", 5)
        cc.abort("a")
        cc.begin("b")
        assert cc.read("b", "x").value == 1
