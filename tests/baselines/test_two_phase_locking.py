"""Tests for strict two-phase locking."""

from __future__ import annotations

import pytest

from repro.baselines import AccessStatus, StrictTwoPhaseLocking
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(schema, Predicate.true(), {"x": 1, "y": 2})


@pytest.fixture
def cc(db):
    scheduler = StrictTwoPhaseLocking(db)
    scheduler.begin("a")
    scheduler.begin("b")
    return scheduler


class TestLocking:
    def test_shared_reads_coexist(self, cc):
        assert cc.read("a", "x").status is AccessStatus.OK
        assert cc.read("b", "x").status is AccessStatus.OK

    def test_write_blocks_on_readers(self, cc):
        cc.read("a", "x")
        assert cc.write("b", "x", 5).status is AccessStatus.BLOCKED

    def test_read_blocks_on_writer(self, cc):
        cc.write("a", "x", 5)
        assert cc.read("b", "x").status is AccessStatus.BLOCKED

    def test_reader_sees_latest_committed_value(self, cc):
        cc.write("a", "x", 5)
        cc.commit("a")
        assert cc.begin("c").status is AccessStatus.OK
        assert cc.read("c", "x").value == 5

    def test_locks_held_until_commit(self, cc):
        cc.write("a", "x", 5)
        cc.read("a", "y")
        # b waits on both until a commits.
        assert cc.read("b", "x").status is AccessStatus.BLOCKED
        result = cc.commit("a")
        assert "b" in result.unblocked
        assert cc.read("b", "x").status is AccessStatus.OK

    def test_upgrade_own_shared_to_exclusive(self, cc):
        cc.read("a", "x")
        assert cc.write("a", "x", 5).status is AccessStatus.OK

    def test_abort_releases_and_expunges(self, cc, db):
        cc.write("a", "x", 5)
        result = cc.abort("a")
        assert db.store.values_of("x") == {1}
        assert cc.read("b", "x").status is AccessStatus.OK


class TestDeadlock:
    def test_deadlock_detected_and_victim_aborted(self, cc):
        cc.write("a", "x", 5)
        cc.write("b", "y", 6)
        first = cc.read("a", "y")
        assert first.status is AccessStatus.BLOCKED
        second = cc.read("b", "x")
        # b closes the cycle; the youngest (b) is the victim.
        assert second.status is AccessStatus.ABORTED
        assert cc.deadlocks_detected == 1
        # a's wait on y is now released.
        assert "a" in second.unblocked

    def test_victim_is_youngest_third_party(self, cc):
        # a holds x; b holds y; b waits on x; a waits on y -> cycle
        # detected when a blocks; victim = youngest in cycle = b.
        cc.write("a", "x", 5)
        cc.write("b", "y", 6)
        blocked = cc.read("b", "x")
        assert blocked.status is AccessStatus.BLOCKED
        result = cc.read("a", "y")
        assert "b" in result.aborted or result.status is (
            AccessStatus.BLOCKED
        )
        assert cc.deadlocks_detected == 1
