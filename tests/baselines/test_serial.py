"""Tests for the serial executor."""

from __future__ import annotations

import pytest

from repro.baselines import AccessStatus, SerialExecution
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def cc():
    schema = Schema.of("x", domain=Domain.interval(0, 1000))
    db = Database(schema, Predicate.true(), {"x": 1})
    return SerialExecution(db)


class TestTurns:
    def test_first_runs_immediately(self, cc):
        assert cc.begin("a").status is AccessStatus.OK
        assert cc.read("a", "x").status is AccessStatus.OK

    def test_second_waits(self, cc):
        cc.begin("a")
        assert cc.begin("b").status is AccessStatus.BLOCKED

    def test_commit_hands_over(self, cc):
        cc.begin("a")
        cc.begin("b")
        result = cc.commit("a")
        assert result.unblocked == ["b"]
        # b re-executes its begin and proceeds.
        assert cc.begin("b").status is AccessStatus.OK
        assert cc.write("b", "x", 5).status is AccessStatus.OK

    def test_abort_hands_over(self, cc):
        cc.begin("a")
        cc.begin("b")
        cc.write("a", "x", 9)
        result = cc.abort("a")
        assert result.unblocked == ["b"]

    def test_out_of_turn_access_rejected(self, cc):
        cc.begin("a")
        cc.begin("b")
        with pytest.raises(RuntimeError):
            cc.read("b", "x")

    def test_fifo_order(self, cc):
        cc.begin("a")
        cc.begin("b")
        cc.begin("c")
        assert cc.commit("a").unblocked == ["b"]
        cc.begin("b")
        assert cc.commit("b").unblocked == ["c"]
