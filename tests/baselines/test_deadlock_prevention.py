"""Tests for the wait-die / wound-wait 2PL variants."""

from __future__ import annotations

import pytest

from repro.baselines import AccessStatus, StrictTwoPhaseLocking
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(schema, Predicate.true(), {"x": 1, "y": 2})


def _scheduler(db, policy):
    cc = StrictTwoPhaseLocking(db, deadlock_policy=policy)
    cc.begin("old")  # smaller sequence = older
    cc.begin("young")
    return cc


class TestPolicyValidation:
    def test_unknown_policy_rejected(self, db):
        with pytest.raises(ValueError):
            StrictTwoPhaseLocking(db, deadlock_policy="hope")

    def test_name_reflects_policy(self, db):
        assert (
            StrictTwoPhaseLocking(db, deadlock_policy="wait-die").name
            == "s2pl-wait-die"
        )


class TestWaitDie:
    def test_older_requester_waits(self, db):
        cc = _scheduler(db, "wait-die")
        cc.write("young", "x", 5)
        result = cc.read("old", "x")
        assert result.status is AccessStatus.BLOCKED
        assert cc.preventions == 0

    def test_younger_requester_dies(self, db):
        cc = _scheduler(db, "wait-die")
        cc.write("old", "x", 5)
        result = cc.read("young", "x")
        assert result.status is AccessStatus.ABORTED
        assert cc.preventions == 1

    def test_no_deadlock_possible(self, db):
        # The classic crossing pattern terminates without detection.
        cc = _scheduler(db, "wait-die")
        cc.write("old", "x", 1)
        cc.write("young", "y", 2)
        first = cc.read("old", "y")  # older waits on younger: allowed
        assert first.status is AccessStatus.BLOCKED
        second = cc.read("young", "x")  # younger requests older's lock
        assert second.status is AccessStatus.ABORTED
        # young's death released y; old's queued read is grantable.
        assert "old" in second.unblocked

    def test_waiting_older_eventually_runs(self, db):
        cc = _scheduler(db, "wait-die")
        cc.write("young", "x", 5)
        cc.read("old", "x")
        result = cc.commit("young")
        assert "old" in result.unblocked
        assert cc.read("old", "x").status is AccessStatus.OK


class TestWoundWait:
    def test_older_wounds_younger_holder(self, db):
        cc = _scheduler(db, "wound-wait")
        cc.write("young", "x", 5)
        result = cc.read("old", "x")
        # The younger holder is wounded; the older's request is granted
        # via the drained queue.
        assert "young" in result.aborted
        assert cc.preventions == 1
        assert "old" in result.unblocked
        assert cc.read("old", "x").status is AccessStatus.OK

    def test_younger_requester_waits(self, db):
        cc = _scheduler(db, "wound-wait")
        cc.write("old", "x", 5)
        result = cc.read("young", "x")
        assert result.status is AccessStatus.BLOCKED
        assert cc.preventions == 0

    def test_wounded_work_is_lost(self, db):
        cc = _scheduler(db, "wound-wait")
        cc.write("young", "x", 5)
        cc.read("old", "x")
        # young's version was expunged with the wound.
        assert db.store.values_of("x") == {1}


class TestSimulationIntegration:
    def test_both_policies_complete_a_workload(self, db):
        from repro.sim import SimulationEngine, oltp_workload

        workload = oltp_workload(num_transactions=12, seed=9)
        for policy in ("wait-die", "wound-wait"):
            database = workload.fresh_database()
            engine = SimulationEngine(
                StrictTwoPhaseLocking(
                    database, deadlock_policy=policy
                ),
                workload,
                seed=1,
            )
            metrics = engine.run()
            assert metrics.committed_count == 12, policy
