"""Tests for predicate-wise two-phase locking."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AccessStatus,
    PlannedAccess,
    PredicatewiseTwoPhaseLocking,
)
from repro.core import Domain, Predicate, Schema
from repro.storage import Database


@pytest.fixture
def db():
    # Constraint puts x and y in separate conjuncts (two objects).
    schema = Schema.of("x", "y", domain=Domain.interval(0, 1000))
    return Database(
        schema,
        Predicate.parse("x >= 0 & y >= 0"),
        {"x": 1, "y": 2},
    )


def _plan(*accesses):
    return [PlannedAccess(kind, entity) for kind, entity in accesses]


class TestEarlyRelease:
    def test_conjunct_released_after_last_access(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        cc.begin("a", _plan(("write", "x"), ("read", "y")))
        cc.begin("b", _plan(("write", "x")))
        # a writes x (its only x-conjunct access): x is then released
        # even though a is still active on y.
        result = cc.write("a", "x", 5)
        assert result.status is AccessStatus.OK
        assert cc.write("b", "x", 7).status is AccessStatus.OK

    def test_strict_until_conjunct_done(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        cc.begin("a", _plan(("write", "x"), ("write", "x")))
        cc.begin("b", _plan(("write", "x")))
        cc.write("a", "x", 5)  # one x access remaining for a
        assert cc.write("b", "x", 7).status is AccessStatus.BLOCKED

    def test_cross_conjunct_independence(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        cc.begin("a", _plan(("write", "x"), ("write", "x")))
        cc.begin("b", _plan(("write", "y")))
        cc.write("a", "x", 5)
        # y lives in another conjunct: b proceeds immediately.
        assert cc.write("b", "y", 9).status is AccessStatus.OK


class TestLockSemantics:
    def test_shared_then_exclusive_blocks(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        cc.begin("a", _plan(("read", "x"), ("read", "y")))
        cc.begin("b", _plan(("write", "x")))
        cc.read("a", "x")
        # a still has a pending y access, but its x-conjunct is done,
        # so its x lock is already gone.
        assert cc.write("b", "x", 5).status is AccessStatus.OK

    def test_commit_unblocks(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        cc.begin("a", _plan(("write", "x"), ("write", "x")))
        cc.begin("b", _plan(("write", "x")))
        cc.write("a", "x", 5)
        assert cc.write("b", "x", 7).status is AccessStatus.BLOCKED
        result = cc.commit("a")
        assert "b" in result.unblocked
        assert cc.write("b", "x", 7).status is AccessStatus.OK

    def test_deadlock_detection(self, db):
        cc = PredicatewiseTwoPhaseLocking(db)
        # Use a single-conjunct view by driving both txns on x twice.
        cc.begin("a", _plan(("write", "x"), ("write", "x"), ("write", "y"), ("write", "y")))
        cc.begin("b", _plan(("write", "y"), ("write", "y"), ("write", "x"), ("write", "x")))
        cc.write("a", "x", 1)
        cc.write("b", "y", 1)
        blocked = cc.write("a", "y", 2)
        assert blocked.status is AccessStatus.BLOCKED
        closing = cc.write("b", "x", 2)
        assert (
            closing.status is AccessStatus.ABORTED
            or "b" in closing.aborted
            or cc.deadlocks_detected >= 1
        )
