"""Virtual time: the simulator's event queue.

A tiny deterministic discrete-event core: events are ``(time, seq)``
ordered (FIFO among simultaneous events), carry an opaque payload, and
support logical cancellation via epochs — the engine bumps a
transaction's epoch to invalidate its in-flight events instead of
removing them from the heap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import SimulationError


class VirtualClock:
    """A manually advanced monotonic timestamp.

    The simulator's :class:`EventQueue` owns its own notion of "now";
    this is the same idea factored out for components that only need a
    *readable* clock they can hand to collaborators — the deterministic
    fuzzer passes one instance to the asyncio event loop, the command
    dispatcher, and its own transcript, so every timestamp in a run
    comes from a single, reproducible source.  Calling the instance
    returns the current time, making it a drop-in replacement for
    ``time.monotonic``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (never backwards)."""
        if delta < 0:
            raise SimulationError(f"negative clock advance {delta}")
        self._now += delta
        return self._now


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One queued event; ordering is (time, seq)."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A deterministic min-heap of scheduled events."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time (time of the last popped event)."""
        return self._now

    def schedule(self, delay: float, payload: Any) -> ScheduledEvent:
        """Queue an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = ScheduledEvent(self._now + delay, next(self._seq), payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, payload: Any) -> ScheduledEvent:
        """Queue an event at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        event = ScheduledEvent(time, next(self._seq), payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent | None:
        """Advance time to — and return — the next event."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
