"""The discrete-event simulation engine.

Drives a set of :class:`~repro.sim.workload.TransactionScript` against
one :class:`~repro.baselines.base.ConcurrencyControl` implementation in
virtual time, producing :class:`~repro.sim.metrics.RunMetrics`.

Execution model per transaction instance:

* ``begin`` at arrival (Section-5 validation happens here for the
  protocol adapter); a blocked begin parks the transaction;
* steps run in order: ``Think`` advances the clock; ``Read``/``Write``
  call the scheduler; ``Write`` occupies ``duration`` time units — via
  split begin/end when the scheduler supports it (the protocol's short
  ``W``-lock window), atomically-then-delay otherwise;
* a ``BLOCKED`` result parks the instance; it resumes (re-executing the
  same step) when a later result's ``unblocked`` list names it, and the
  park time is accounted as wait;
* an ``ABORTED`` result (or appearing in a result's ``aborted`` list)
  restarts the script after a backoff, under a fresh instance identity;
  the time since the instance began is accounted as wasted work;
* after ``max_restarts`` the transaction gives up (recorded, so
  livelock shows up as data instead of hanging the simulation).

Determinism: one seeded RNG drives backoff jitter; events tie-break
FIFO; schedulers are driven single-threaded.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..baselines.base import AccessResult, AccessStatus, ConcurrencyControl
from ..baselines.korth_speegle import KorthSpeegleScheduler
from ..errors import SimulationError
from ..obs.trace import NULL_TRACER, Tracer
from .clock import EventQueue
from .metrics import RunMetrics
from .workload import (
    Read,
    Think,
    TransactionScript,
    Unordered,
    Workload,
    Write,
)


class _State(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    PARKED = "parked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class _Instance:
    """One attempt at running a script."""

    script: TransactionScript
    attempt: int
    engine_id: str
    epoch: int = 0
    cursor: int = -1  # -1 = begin pending; len(steps) = commit pending
    state: _State = _State.NEW
    begun: bool = False
    started_at: float = 0.0
    parked_since: float | None = None
    values_read: dict[str, int] = field(default_factory=dict)
    write_in_flight: tuple[str, int] | None = None
    # ≺SR support: members of the current Unordered group not yet done,
    # and the group member whose split write is in flight.
    group_remaining: list | None = None
    group_write: object | None = None
    # Set when an unblock notification arrives while the instance is
    # still inside the very step that blocked (e.g. a deadlock victim's
    # release re-granted our own queued request): the next _park
    # becomes an immediate retry instead.
    pending_unblock: bool = False
    # Open trace spans: the attempt's lifecycle span and, while
    # parked, the current wait span.
    txn_span: object | None = None
    wait_span: object | None = None


@dataclass(frozen=True)
class _Advance:
    txn: str
    epoch: int


@dataclass(frozen=True)
class _FinishWrite:
    txn: str
    epoch: int


class SimulationEngine:
    """Run one workload against one scheduler in virtual time."""

    def __init__(
        self,
        scheduler: ConcurrencyControl,
        workload: Workload,
        restart_backoff: float = 5.0,
        max_restarts: int = 40,
        max_events: int = 500_000,
        read_duration: float = 0.0,
        seed: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._workload = workload
        self._backoff = restart_backoff
        self._max_restarts = max_restarts
        self._max_events = max_events
        self._read_duration = read_duration
        self._rng = random.Random(seed)
        self._queue = EventQueue()
        self._instances: dict[str, _Instance] = {}
        self._current: dict[str, _Instance] = {}  # base id -> live instance
        self._metrics = RunMetrics(
            scheduler=scheduler.name, workload=workload.name
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # Trace timestamps are virtual time, not wall time.
        self._tracer.set_clock(lambda: self._queue.now)

    @property
    def metrics(self) -> RunMetrics:
        """The run's metrics (registry included), live during the run."""
        return self._metrics

    # -- public API -----------------------------------------------------------

    def run(self) -> RunMetrics:
        for script in self._workload.scripts:
            self._metrics.txn(script.txn_id).arrival = script.arrival
            self._spawn(script, attempt=0, at=script.arrival)
        processed = 0
        while self._queue:
            event = self._queue.pop()
            assert event is not None
            processed += 1
            if processed > self._max_events:
                raise SimulationError(
                    f"event budget exhausted ({self._max_events}); "
                    "likely livelock"
                )
            self._dispatch(event.payload)
        self._metrics.makespan = self._queue.now
        self._metrics.events_processed = processed
        return self._metrics

    # -- spawning & restarting ----------------------------------------------------

    def _spawn(
        self, script: TransactionScript, attempt: int, at: float
    ) -> None:
        engine_id = (
            script.txn_id if attempt == 0 else f"{script.txn_id}#{attempt}"
        )
        instance = _Instance(script, attempt, engine_id)
        self._instances[engine_id] = instance
        self._current[script.txn_id] = instance
        self._queue.schedule_at(
            at, _Advance(engine_id, instance.epoch)
        )

    def _restart(self, instance: _Instance, reason: str | None) -> None:
        now = self._queue.now
        wasted = (
            max(0.0, now - instance.started_at) if instance.begun else 0.0
        )
        self._metrics.record_restart(instance.script.txn_id, wasted)
        tracer = self._tracer
        if tracer.enabled:
            tracer.end(instance.wait_span)
            instance.wait_span = None
            tracer.event(
                "restart",
                instance.engine_id,
                reason=reason or "restart",
                wasted=wasted,
            )
            tracer.end(
                instance.txn_span, outcome="restart", reason=reason
            )
            instance.txn_span = None
        instance.state = _State.FAILED
        instance.epoch += 1  # invalidate in-flight events
        result = self._scheduler.abort(
            instance.engine_id, reason or "restart"
        )
        if instance.attempt + 1 > self._max_restarts:
            self._metrics.record_gave_up(instance.script.txn_id)
            if tracer.enabled:
                tracer.event(
                    "give-up",
                    instance.engine_id,
                    attempts=instance.attempt + 1,
                )
        else:
            backoff = self._backoff * (1.0 + self._rng.random())
            self._spawn(
                instance.script, instance.attempt + 1, now + backoff
            )
        # The abort may have cascaded to other transactions (readers of
        # our versions) and released waiters — propagate, or their
        # engine instances stay parked forever.
        self._apply_side_effects(result)

    # -- event dispatch ---------------------------------------------------------------

    def _dispatch(self, payload: object) -> None:
        if isinstance(payload, _Advance):
            instance = self._instances.get(payload.txn)
            if instance is None or instance.epoch != payload.epoch:
                return
            if instance.state in (_State.DONE, _State.FAILED):
                return
            self._advance(instance)
        elif isinstance(payload, _FinishWrite):
            instance = self._instances.get(payload.txn)
            if instance is None or instance.epoch != payload.epoch:
                return
            self._finish_write(instance)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event payload {payload!r}")

    def _advance(self, instance: _Instance) -> None:
        instance.state = _State.RUNNING
        if not instance.begun:
            self._do_begin(instance)
            return
        steps = instance.script.steps
        if instance.cursor >= len(steps):
            self._do_commit(instance)
            return
        step = steps[instance.cursor]
        if isinstance(step, Think):
            instance.cursor += 1
            self._queue.schedule(
                step.duration, _Advance(instance.engine_id, instance.epoch)
            )
        elif isinstance(step, Read):
            self._do_read(instance, step)
        elif isinstance(step, Write):
            self._do_write(instance, step)
        elif isinstance(step, Unordered):
            self._do_group(instance, step)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown step {step!r}")

    # -- step handlers ---------------------------------------------------------------

    def _do_begin(self, instance: _Instance) -> None:
        plan = _plan_of(instance.script)
        scheduler = self._scheduler
        if self._tracer.enabled and instance.txn_span is None:
            instance.txn_span = self._tracer.start(
                "txn",
                instance.engine_id,
                base=instance.script.txn_id,
                attempt=instance.attempt,
            )
            self._tracer.event(
                "arrive",
                instance.engine_id,
                attempt=instance.attempt,
            )
        if isinstance(scheduler, KorthSpeegleScheduler):
            predecessors = tuple(
                self._current[base].engine_id
                for base in instance.script.predecessors
                if base in self._current
            )
            result = scheduler.begin(
                instance.engine_id, plan, predecessors=predecessors
            )
        else:
            result = scheduler.begin(instance.engine_id, plan)
        instance.started_at = self._queue.now
        if result.status is AccessStatus.OK:
            instance.begun = True
            instance.cursor = 0
            self._queue.schedule(
                0.0, _Advance(instance.engine_id, instance.epoch)
            )
        elif result.status is AccessStatus.BLOCKED:
            self._park(instance, result.blocked_on)
        else:
            self._restart(instance, result.reason)
        self._apply_side_effects(result)

    def _do_read(self, instance: _Instance, step: Read) -> None:
        result = self._scheduler.read(instance.engine_id, step.entity)
        if result.status is AccessStatus.OK:
            if result.value is not None:
                instance.values_read[step.entity] = result.value
            instance.cursor += 1
            self._queue.schedule(
                self._read_duration,
                _Advance(instance.engine_id, instance.epoch),
            )
        elif result.status is AccessStatus.BLOCKED:
            self._park(instance, result.blocked_on)
        else:
            self._restart(instance, result.reason)
        self._apply_side_effects(result)

    def _do_write(self, instance: _Instance, step: Write) -> None:
        value = step.resolve(instance.values_read)
        if self._scheduler.supports_split_writes():
            result = self._scheduler.write_begin(
                instance.engine_id, step.entity
            )
            if result.status is AccessStatus.OK:
                instance.write_in_flight = (step.entity, value)
                self._queue.schedule(
                    step.duration,
                    _FinishWrite(instance.engine_id, instance.epoch),
                )
            elif result.status is AccessStatus.BLOCKED:
                self._park(instance, result.blocked_on)
            else:
                self._restart(instance, result.reason)
            self._apply_side_effects(result)
            return
        result = self._scheduler.write(
            instance.engine_id, step.entity, value
        )
        if result.status is AccessStatus.OK:
            instance.cursor += 1
            self._queue.schedule(
                step.duration, _Advance(instance.engine_id, instance.epoch)
            )
        elif result.status is AccessStatus.BLOCKED:
            self._park(instance, result.blocked_on)
        else:
            self._restart(instance, result.reason)
        self._apply_side_effects(result)

    def _finish_write(self, instance: _Instance) -> None:
        assert instance.write_in_flight is not None
        entity, value = instance.write_in_flight
        instance.write_in_flight = None
        result = self._scheduler.write_end(
            instance.engine_id, entity, value
        )
        if result.status is AccessStatus.OK:
            if instance.group_remaining is not None:
                self._group_member_done(instance, delay=0.0)
            else:
                instance.cursor += 1
                self._queue.schedule(
                    0.0, _Advance(instance.engine_id, instance.epoch)
                )
        elif result.status is AccessStatus.ABORTED:
            self._restart(instance, result.reason)
        self._apply_side_effects(result)

    # -- unordered groups (≺SR) --------------------------------------------------

    def _group_member_done(self, instance: _Instance, delay: float) -> None:
        """One group member completed; advance within or past the group."""
        assert instance.group_remaining is not None
        if instance.group_write is not None:
            instance.group_remaining.remove(instance.group_write)
            instance.group_write = None
        if not instance.group_remaining:
            instance.group_remaining = None
            instance.cursor += 1
        self._queue.schedule(
            delay, _Advance(instance.engine_id, instance.epoch)
        )

    def _do_group(self, instance: _Instance, step: Unordered) -> None:
        """Try the group's members until one proceeds (§4.2's ≺SR gain).

        A blocked member's request stays queued with the scheduler
        (granting it early is harmless — the transaction will use the
        entity eventually); the instance parks only when *every*
        remaining member is blocked.
        """
        if instance.group_remaining is None:
            instance.group_remaining = list(step.steps)
        for access in list(instance.group_remaining):
            if isinstance(access, Read):
                result = self._scheduler.read(
                    instance.engine_id, access.entity
                )
                if result.status is AccessStatus.OK:
                    if result.value is not None:
                        instance.values_read[access.entity] = result.value
                    instance.group_write = access
                    self._group_member_done(
                        instance, delay=self._read_duration
                    )
                    self._apply_side_effects(result)
                    return
            else:
                assert isinstance(access, Write)
                value = access.resolve(instance.values_read)
                if self._scheduler.supports_split_writes():
                    result = self._scheduler.write_begin(
                        instance.engine_id, access.entity
                    )
                    if result.status is AccessStatus.OK:
                        instance.write_in_flight = (access.entity, value)
                        instance.group_write = access
                        self._queue.schedule(
                            access.duration,
                            _FinishWrite(
                                instance.engine_id, instance.epoch
                            ),
                        )
                        self._apply_side_effects(result)
                        return
                else:
                    result = self._scheduler.write(
                        instance.engine_id, access.entity, value
                    )
                    if result.status is AccessStatus.OK:
                        instance.group_write = access
                        self._group_member_done(
                            instance, delay=access.duration
                        )
                        self._apply_side_effects(result)
                        return
            if result.status is AccessStatus.ABORTED:
                self._restart(instance, result.reason)
                self._apply_side_effects(result)
                return
            self._apply_side_effects(result)  # blocked: try the next
        self._park(instance)  # every remaining member is blocked

    def _do_commit(self, instance: _Instance) -> None:
        result = self._scheduler.commit(instance.engine_id)
        if result.status is AccessStatus.OK:
            instance.state = _State.DONE
            self._metrics.record_commit(
                instance.script.txn_id, self._queue.now
            )
            if instance.txn_span is not None:
                self._tracer.end(instance.txn_span, outcome="committed")
                instance.txn_span = None
        elif result.status is AccessStatus.BLOCKED:
            self._park(instance, result.blocked_on)
        else:
            self._restart(instance, result.reason)
        self._apply_side_effects(result)

    # -- parking & side effects ------------------------------------------------------

    def _park(
        self, instance: _Instance, blocked_on: str | None = None
    ) -> None:
        self._metrics.record_wait(instance.script.txn_id)
        if instance.pending_unblock:
            # The unblock already happened mid-step: retry immediately.
            instance.pending_unblock = False
            instance.state = _State.RUNNING
            self._queue.schedule(
                0.0, _Advance(instance.engine_id, instance.epoch)
            )
            return
        instance.state = _State.PARKED
        instance.parked_since = self._queue.now
        if self._tracer.enabled:
            attrs = {} if blocked_on is None else {"entity": blocked_on}
            instance.wait_span = self._tracer.start(
                "wait", instance.engine_id, **attrs
            )

    def _unpark(self, engine_id: str) -> None:
        instance = self._instances.get(engine_id)
        if instance is None:
            return
        if instance.state is _State.RUNNING:
            instance.pending_unblock = True
            return
        if instance.state is not _State.PARKED:
            return
        now = self._queue.now
        if instance.parked_since is not None:
            self._metrics.record_wait_time(
                instance.script.txn_id,
                max(0.0, now - instance.parked_since),
            )
        instance.parked_since = None
        if instance.wait_span is not None:
            self._tracer.end(instance.wait_span)
            instance.wait_span = None
        instance.state = _State.RUNNING
        self._queue.schedule(
            0.0, _Advance(instance.engine_id, instance.epoch)
        )

    def _apply_side_effects(self, result: AccessResult) -> None:
        for victim in result.aborted:
            instance = self._instances.get(victim)
            if instance is None or instance.state in (
                _State.DONE,
                _State.FAILED,
            ):
                continue
            if instance.state is _State.PARKED and (
                instance.parked_since is not None
            ):
                self._metrics.record_wait_time(
                    instance.script.txn_id,
                    max(0.0, self._queue.now - instance.parked_since),
                )
            self._restart(instance, "aborted by scheduler")
        for engine_id in result.unblocked:
            self._unpark(engine_id)


def _plan_of(script: TransactionScript):
    from ..baselines.base import PlannedAccess

    plan = []
    for step in script.flat_accesses():
        if isinstance(step, Read):
            plan.append(PlannedAccess("read", step.entity))
        else:
            plan.append(PlannedAccess("write", step.entity))
    return plan
