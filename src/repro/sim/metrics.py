"""Run metrics: the quantities the paper's motivation is about.

Section 2.4 names the goals — "reduce the number and duration of
waits, reduce the number and effect of aborts, facilitate
collaboration".  The metrics mirror them directly: per-transaction wait
counts/durations, restart counts, wasted (aborted) work time, plus the
usual makespan/throughput aggregates.

Since the observability rebuild, :class:`RunMetrics` sits on top of an
:class:`~repro.obs.metrics.MetricsRegistry`: the engine records each
individual wait duration, commit latency, and restart through the
``record_*`` methods, which feed both the per-transaction bookkeeping
and the registry's histograms.  The summary row therefore reports
p50/p95/p99 percentiles alongside the original mean/max columns.  The
per-transaction :class:`TxnMetrics` objects can still be mutated
directly (older tests and tools do); percentile queries fall back to
the per-transaction aggregates when the histograms are empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from ..obs.metrics import Histogram, MetricsRegistry

#: Registry histogram fed one value per individual wait.
WAIT_HISTOGRAM = "wait_time"
#: Registry histogram fed one value per committed transaction.
LATENCY_HISTOGRAM = "latency"


@dataclass
class TxnMetrics:
    """Lifecycle numbers for one logical transaction (across restarts)."""

    txn_id: str
    arrival: float = 0.0
    commit_time: float | None = None
    waits: int = 0
    wait_time: float = 0.0
    restarts: int = 0
    wasted_time: float = 0.0
    gave_up: bool = False

    @property
    def committed(self) -> bool:
        return self.commit_time is not None

    @property
    def latency(self) -> float | None:
        if self.commit_time is None:
            return None
        return self.commit_time - self.arrival


@dataclass
class RunMetrics:
    """Aggregated result of one scheduler × workload run."""

    scheduler: str
    workload: str
    transactions: dict[str, TxnMetrics] = field(default_factory=dict)
    makespan: float = 0.0
    events_processed: int = 0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def txn(self, txn_id: str) -> TxnMetrics:
        return self.transactions.setdefault(
            txn_id, TxnMetrics(txn_id=txn_id)
        )

    # -- recording (feeds both TxnMetrics and the registry) ---------------------

    def record_wait(self, txn_id: str) -> None:
        """One blocked request (the *number* of waits)."""
        self.txn(txn_id).waits += 1
        self.registry.counter("waits").inc()

    def record_wait_time(self, txn_id: str, duration: float) -> None:
        """One resolved wait (the *duration* of waits)."""
        self.txn(txn_id).wait_time += duration
        self.registry.histogram(WAIT_HISTOGRAM).observe(duration)

    def record_commit(self, txn_id: str, commit_time: float) -> None:
        txn = self.txn(txn_id)
        txn.commit_time = commit_time
        self.registry.counter("commits").inc()
        latency = txn.latency
        if latency is not None:
            self.registry.histogram(LATENCY_HISTOGRAM).observe(latency)

    def record_restart(self, txn_id: str, wasted: float) -> None:
        txn = self.txn(txn_id)
        txn.restarts += 1
        txn.wasted_time += wasted
        self.registry.counter("restarts").inc()

    def record_gave_up(self, txn_id: str) -> None:
        self.txn(txn_id).gave_up = True
        self.registry.counter("gave_up").inc()

    # -- aggregates ------------------------------------------------------------

    @property
    def committed_count(self) -> int:
        return sum(1 for t in self.transactions.values() if t.committed)

    @property
    def gave_up_count(self) -> int:
        return sum(1 for t in self.transactions.values() if t.gave_up)

    @property
    def total_waits(self) -> int:
        return sum(t.waits for t in self.transactions.values())

    @property
    def total_wait_time(self) -> float:
        return sum(t.wait_time for t in self.transactions.values())

    @property
    def total_restarts(self) -> int:
        return sum(t.restarts for t in self.transactions.values())

    @property
    def total_wasted_time(self) -> float:
        return sum(t.wasted_time for t in self.transactions.values())

    @property
    def mean_latency(self) -> float:
        latencies = [
            t.latency
            for t in self.transactions.values()
            if t.latency is not None
        ]
        return mean(latencies) if latencies else 0.0

    @property
    def max_wait(self) -> float:
        waits = [t.wait_time for t in self.transactions.values()]
        return max(waits) if waits else 0.0

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.committed_count / self.makespan

    # -- percentiles -----------------------------------------------------------

    def _latency_histogram(self) -> Histogram:
        histogram = self.registry.histogram(LATENCY_HISTOGRAM)
        if histogram.count:
            return histogram
        fallback = Histogram(LATENCY_HISTOGRAM)
        for txn in self.transactions.values():
            if txn.latency is not None:
                fallback.observe(txn.latency)
        return fallback

    def _wait_histogram(self) -> Histogram:
        histogram = self.registry.histogram(WAIT_HISTOGRAM)
        if histogram.count:
            return histogram
        # Fallback: per-transaction totals of transactions that waited.
        fallback = Histogram(WAIT_HISTOGRAM)
        for txn in self.transactions.values():
            if txn.waits:
                fallback.observe(txn.wait_time)
        return fallback

    def latency_percentile(self, p: float) -> float:
        """Commit-latency percentile (0.0 when nothing committed)."""
        return self._latency_histogram().percentile(p)

    def wait_percentile(self, p: float) -> float:
        """Per-wait duration percentile (falls back to per-txn totals
        when individual waits were not recorded)."""
        return self._wait_histogram().percentile(p)

    def summary_row(self) -> dict[str, float | int | str]:
        """One table row for the benchmark reports."""
        return {
            "scheduler": self.scheduler,
            "committed": self.committed_count,
            "gave_up": self.gave_up_count,
            "waits": self.total_waits,
            "wait_time": round(self.total_wait_time, 1),
            "restarts": self.total_restarts,
            "wasted_time": round(self.total_wasted_time, 1),
            "makespan": round(self.makespan, 1),
            "mean_latency": round(self.mean_latency, 1),
            "latency_p50": round(self.latency_percentile(50), 1),
            "latency_p95": round(self.latency_percentile(95), 1),
            "latency_p99": round(self.latency_percentile(99), 1),
            "wait_p50": round(self.wait_percentile(50), 1),
            "wait_p95": round(self.wait_percentile(95), 1),
            "wait_p99": round(self.wait_percentile(99), 1),
        }
