"""Run metrics: the quantities the paper's motivation is about.

Section 2.4 names the goals — "reduce the number and duration of
waits, reduce the number and effect of aborts, facilitate
collaboration".  The metrics mirror them directly: per-transaction wait
counts/durations, restart counts, wasted (aborted) work time, plus the
usual makespan/throughput aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean


@dataclass
class TxnMetrics:
    """Lifecycle numbers for one logical transaction (across restarts)."""

    txn_id: str
    arrival: float = 0.0
    commit_time: float | None = None
    waits: int = 0
    wait_time: float = 0.0
    restarts: int = 0
    wasted_time: float = 0.0
    gave_up: bool = False

    @property
    def committed(self) -> bool:
        return self.commit_time is not None

    @property
    def latency(self) -> float | None:
        if self.commit_time is None:
            return None
        return self.commit_time - self.arrival


@dataclass
class RunMetrics:
    """Aggregated result of one scheduler × workload run."""

    scheduler: str
    workload: str
    transactions: dict[str, TxnMetrics] = field(default_factory=dict)
    makespan: float = 0.0
    events_processed: int = 0

    def txn(self, txn_id: str) -> TxnMetrics:
        return self.transactions.setdefault(
            txn_id, TxnMetrics(txn_id=txn_id)
        )

    # -- aggregates ------------------------------------------------------------

    @property
    def committed_count(self) -> int:
        return sum(1 for t in self.transactions.values() if t.committed)

    @property
    def gave_up_count(self) -> int:
        return sum(1 for t in self.transactions.values() if t.gave_up)

    @property
    def total_waits(self) -> int:
        return sum(t.waits for t in self.transactions.values())

    @property
    def total_wait_time(self) -> float:
        return sum(t.wait_time for t in self.transactions.values())

    @property
    def total_restarts(self) -> int:
        return sum(t.restarts for t in self.transactions.values())

    @property
    def total_wasted_time(self) -> float:
        return sum(t.wasted_time for t in self.transactions.values())

    @property
    def mean_latency(self) -> float:
        latencies = [
            t.latency
            for t in self.transactions.values()
            if t.latency is not None
        ]
        return mean(latencies) if latencies else 0.0

    @property
    def max_wait(self) -> float:
        waits = [t.wait_time for t in self.transactions.values()]
        return max(waits) if waits else 0.0

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.committed_count / self.makespan

    def summary_row(self) -> dict[str, float | int | str]:
        """One table row for the benchmark reports."""
        return {
            "scheduler": self.scheduler,
            "committed": self.committed_count,
            "gave_up": self.gave_up_count,
            "waits": self.total_waits,
            "wait_time": round(self.total_wait_time, 1),
            "restarts": self.total_restarts,
            "wasted_time": round(self.total_wasted_time, 1),
            "makespan": round(self.makespan, 1),
            "mean_latency": round(self.mean_latency, 1),
        }
