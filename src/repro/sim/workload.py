"""Workload generation — synthetic designers and clerks.

The paper's motivating application is collaborative CAD: a handful of
designers running **long-duration transactions** whose cost is
dominated by human think time, touching design objects grouped into
modules (the consistency constraint's conjuncts).  The paper has no
machine evaluation, so this module is the documented substitution: a
seeded generator producing workloads with the structural properties the
paper argues about — think-time ≫ access-time, module locality,
occasional cross-module access, and explicit cooperation edges
(partial-order predecessors).

:func:`oltp_workload` generates the classical contrast: short
transactions with no think time, where 2PL is perfectly adequate — the
benchmarks use it to show the protocols *agree* on data-processing
workloads and *diverge* on design workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..core.entities import Domain, Entity, Schema
from ..core.predicates import Atom, Clause, Predicate
from ..errors import SimulationError
from ..storage.database import Database


@dataclass(frozen=True)
class Think:
    """Human think time between accesses."""

    duration: float


@dataclass(frozen=True)
class Read:
    entity: str


@dataclass(frozen=True)
class Write:
    """A write; ``value`` may be a constant or f(values-read-so-far)."""

    entity: str
    value: "int | Callable[[dict[str, int]], int]"
    duration: float = 1.0

    def resolve(self, context: dict[str, int]) -> int:
        if callable(self.value):
            return self.value(context)
        return self.value


@dataclass(frozen=True)
class Unordered:
    """A group of accesses that may execute in **any order** (≺SR).

    Section 4.2's partial-order serializability argument, made
    operational: "a scenario can exist where an item required by a
    transaction is locked … however, if partial orders are used, the
    transaction can access a different, available data item."  The
    engine tries the group's members in turn and only parks when every
    remaining member is blocked.
    """

    steps: tuple["Read | Write", ...]

    def __post_init__(self) -> None:
        for step in self.steps:
            if not isinstance(step, (Read, Write)):
                raise SimulationError(
                    "unordered groups may contain only reads/writes"
                )
        if not self.steps:
            raise SimulationError("empty unordered group")


Step = "Think | Read | Write | Unordered"


@dataclass
class TransactionScript:
    """One scripted transaction: its steps and cooperation edges.

    ``predecessors`` name scripts this one must follow in the nested
    partial order (used by the Section-5 protocol; classical baselines
    ignore them — they have no notion of declared cooperation).
    """

    txn_id: str
    steps: list[object]
    arrival: float = 0.0
    predecessors: tuple[str, ...] = ()

    def flat_accesses(self) -> list["Read | Write"]:
        """All read/write steps, unordered groups flattened."""
        accesses: list[Read | Write] = []
        for step in self.steps:
            if isinstance(step, (Read, Write)):
                accesses.append(step)
            elif isinstance(step, Unordered):
                accesses.extend(step.steps)
        return accesses

    @property
    def read_entities(self) -> frozenset[str]:
        return frozenset(
            step.entity
            for step in self.flat_accesses()
            if isinstance(step, Read)
        )

    @property
    def write_entities(self) -> frozenset[str]:
        return frozenset(
            step.entity
            for step in self.flat_accesses()
            if isinstance(step, Write)
        )

    @property
    def total_think(self) -> float:
        return sum(
            step.duration for step in self.steps if isinstance(step, Think)
        )


#: Entity-selection distributions the generators understand.
KEY_DISTRIBUTIONS = ("uniform", "zipf")

#: Zipf skew exponent: weight of the rank-``k`` entity ∝ 1/(k+1)^s.
ZIPF_EXPONENT = 1.2


def _pick_entity(
    rng: random.Random, pool: list[str], key_dist: str
) -> str:
    """One entity draw under the configured key distribution.

    ``uniform`` is *exactly* the historical ``rng.choice(pool)`` — same
    call, same stream — so old seeds replay byte-identically.  ``zipf``
    spends one ``rng.random()`` draw on an inverse-CDF walk over
    rank-weighted entities (the pool's order is the rank order), making
    low-rank entities hot: the contention-skew knob.
    """
    if key_dist == "uniform":
        return rng.choice(pool)
    if key_dist != "zipf":
        raise SimulationError(
            f"unknown key distribution {key_dist!r} "
            f"(choose from {KEY_DISTRIBUTIONS})"
        )
    weights = [
        1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(pool))
    ]
    point = rng.random() * sum(weights)
    cumulative = 0.0
    for entity, weight in zip(pool, weights):
        cumulative += weight
        if point <= cumulative:
            return entity
    return pool[-1]


@dataclass
class Workload:
    """Scripts plus a factory for fresh databases (one per scheduler).

    Each scheduler run must see its own pristine database — the factory
    rebuilds schema, constraint, and initial state deterministically.
    """

    name: str
    scripts: list[TransactionScript]
    database_factory: Callable[[], Database]
    description: str = ""
    #: How entity accesses were drawn (see :data:`KEY_DISTRIBUTIONS`);
    #: recorded in bench metadata so runs are comparable.
    key_dist: str = "uniform"

    def fresh_database(self) -> Database:
        return self.database_factory()


def _module_schema(
    num_modules: int, entities_per_module: int, high: int
) -> tuple[Schema, Predicate, dict[str, int], list[list[str]]]:
    """Schema + module-structured CNF constraint + initial state."""
    modules: list[list[str]] = []
    entities: list[Entity] = []
    for module in range(num_modules):
        names = [
            f"m{module}_e{index}" for index in range(entities_per_module)
        ]
        modules.append(names)
        entities.extend(
            Entity(name, Domain.interval(0, high)) for name in names
        )
    schema = Schema(entities)
    # One conjunct per module: every entity non-negative.  Trivially
    # satisfiable, but it *mentions* exactly the module's entities, so
    # the constraint's objects are the modules — the structure PWSR and
    # the protocol's conjunct decomposition exploit.
    clauses = []
    for names in modules:
        for name in names:
            clauses.append(Clause.of(Atom.of(name, ">=", 0)))
    # Group per module: conjuncts above are single-entity; add one
    # module-wide disjunctive clause so each module forms one object.
    for names in modules:
        clauses.append(
            Clause(tuple(Atom.of(name, ">=", 0) for name in names))
        )
    constraint = Predicate(clauses)
    initial = {name: 1 for names in modules for name in names}
    return schema, constraint, initial, modules


def cad_workload(
    num_designers: int = 6,
    num_modules: int = 3,
    entities_per_module: int = 4,
    accesses_per_txn: int = 6,
    think_time: float = 100.0,
    write_ratio: float = 0.5,
    cross_module_probability: float = 0.2,
    cooperation_probability: float = 0.3,
    write_duration: float = 1.0,
    arrival_spread: float = 10.0,
    value_high: int = 10_000,
    seed: int = 0,
    key_dist: str = "uniform",
) -> Workload:
    """A collaborative-design workload of long-duration transactions.

    Each designer's transaction works mostly within a home module,
    occasionally reaching across (``cross_module_probability``), with
    ``think_time`` between accesses — the regime where lock-holding
    protocols make humans wait for humans.  With probability
    ``cooperation_probability`` a designer declares an earlier designer
    as partial-order predecessor (a cooperation edge the Section-5
    protocol honours).  ``key_dist`` skews which entity each access
    picks *within* the chosen module (``uniform`` keeps the historical
    stream; ``zipf`` concentrates contention on low-rank entities).
    """
    if num_designers < 1:
        raise SimulationError("need at least one designer")
    rng = random.Random(seed)
    schema, constraint, initial, modules = _module_schema(
        num_modules, entities_per_module, value_high
    )

    scripts: list[TransactionScript] = []
    for index in range(num_designers):
        txn_id = f"D{index}"
        home = modules[index % num_modules]
        steps: list[object] = []
        read_so_far: list[str] = []
        for __ in range(accesses_per_txn):
            steps.append(
                Think(rng.uniform(0.5 * think_time, 1.5 * think_time))
            )
            if rng.random() < cross_module_probability:
                pool = modules[rng.randrange(num_modules)]
            else:
                pool = home
            entity = _pick_entity(rng, pool, key_dist)
            if rng.random() < write_ratio and read_so_far:
                base = rng.choice(read_so_far)
                steps.append(
                    Write(
                        entity,
                        _bump(base, rng.randrange(1, 5), value_high),
                        duration=write_duration,
                    )
                )
            else:
                steps.append(Read(entity))
                read_so_far.append(entity)
        predecessors: tuple[str, ...] = ()
        if index > 0 and rng.random() < cooperation_probability:
            predecessors = (f"D{rng.randrange(index)}",)
        scripts.append(
            TransactionScript(
                txn_id,
                steps,
                arrival=rng.uniform(0, arrival_spread),
                predecessors=predecessors,
            )
        )

    def factory() -> Database:
        return Database(schema, constraint, dict(initial))

    return Workload(
        name=f"cad(designers={num_designers}, think={think_time})",
        scripts=scripts,
        database_factory=factory,
        description=(
            "long-duration collaborative design transactions with "
            "module locality and cooperation edges"
        ),
        key_dist=key_dist,
    )


def _bump(
    source: str, delta: int, high: int
) -> Callable[[dict[str, int]], int]:
    def compute(context: dict[str, int]) -> int:
        return min(high, context.get(source, 0) + delta)

    return compute


def oltp_workload(
    num_transactions: int = 20,
    num_modules: int = 2,
    entities_per_module: int = 4,
    accesses_per_txn: int = 4,
    write_ratio: float = 0.5,
    write_duration: float = 1.0,
    arrival_spread: float = 40.0,
    value_high: int = 10_000,
    seed: int = 0,
    key_dist: str = "uniform",
) -> Workload:
    """Short data-processing transactions (no think time).

    The regime the classical protocols were built for; used to show the
    paper's protocol does not regress it.
    """
    base = cad_workload(
        num_designers=num_transactions,
        num_modules=num_modules,
        entities_per_module=entities_per_module,
        accesses_per_txn=accesses_per_txn,
        think_time=0.0,
        write_ratio=write_ratio,
        cross_module_probability=0.5,
        cooperation_probability=0.0,
        write_duration=write_duration,
        arrival_spread=arrival_spread,
        value_high=value_high,
        seed=seed,
        key_dist=key_dist,
    )
    base.name = f"oltp(transactions={num_transactions})"
    base.description = "short data-processing transactions, no think time"
    for script in base.scripts:
        script.txn_id = script.txn_id.replace("D", "T")
    return base
