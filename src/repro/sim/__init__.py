"""Discrete-event simulation of long-duration transaction workloads."""

from .clock import EventQueue, ScheduledEvent, VirtualClock
from .engine import SimulationEngine
from .metrics import RunMetrics, TxnMetrics
from .runner import (
    DEFAULT_SCHEDULERS,
    EXTENDED_SCHEDULERS,
    compare_schedulers,
    metrics_table,
    run_one,
)
from .workload import (
    Read,
    Think,
    TransactionScript,
    Unordered,
    Workload,
    Write,
    cad_workload,
    oltp_workload,
)

__all__ = [
    "DEFAULT_SCHEDULERS",
    "EXTENDED_SCHEDULERS",
    "EventQueue",
    "Read",
    "RunMetrics",
    "ScheduledEvent",
    "SimulationEngine",
    "Think",
    "TransactionScript",
    "Unordered",
    "TxnMetrics",
    "VirtualClock",
    "Workload",
    "Write",
    "cad_workload",
    "compare_schedulers",
    "metrics_table",
    "oltp_workload",
    "run_one",
]
