"""Comparison harness: one workload, every scheduler, one table.

The entry point for experiment P1 (the paper's motivating claims):
:func:`compare_schedulers` runs a workload under the Section-5 protocol
and every classical baseline — each on its own fresh database — and
returns the metric rows the benchmarks and examples print.
"""

from __future__ import annotations

from typing import Callable

from ..baselines.base import ConcurrencyControl
from ..baselines.korth_speegle import KorthSpeegleScheduler
from ..baselines.multiversion_to import MultiversionTimestampOrdering
from ..baselines.predicatewise_2pl import PredicatewiseTwoPhaseLocking
from ..baselines.serial import SerialExecution
from ..baselines.timestamp import (
    ConservativeTimestampOrdering,
    TimestampOrdering,
)
from ..baselines.two_phase_locking import StrictTwoPhaseLocking
from ..obs.trace import Tracer
from ..storage.database import Database
from .engine import SimulationEngine
from .metrics import RunMetrics
from .workload import Workload

SchedulerFactory = Callable[[Database], ConcurrencyControl]

DEFAULT_SCHEDULERS: dict[str, SchedulerFactory] = {
    "serial": SerialExecution,
    "s2pl": StrictTwoPhaseLocking,
    "to": TimestampOrdering,
    "conservative-to": ConservativeTimestampOrdering,
    "mvto": MultiversionTimestampOrdering,
    "pw2pl": PredicatewiseTwoPhaseLocking,
    "korth-speegle": KorthSpeegleScheduler,
}
"""Every scheduler the P1 benchmark compares, keyed by short name."""

EXTENDED_SCHEDULERS: dict[str, SchedulerFactory] = {
    **DEFAULT_SCHEDULERS,
    "s2pl-wait-die": lambda db: StrictTwoPhaseLocking(
        db, deadlock_policy="wait-die"
    ),
    "s2pl-wound-wait": lambda db: StrictTwoPhaseLocking(
        db, deadlock_policy="wound-wait"
    ),
}
"""Defaults plus the deadlock-*prevention* 2PL variants.

Kept out of the default comparison: prevention restarts re-enter with
a fresh (younger) age under the simulator's restart model, so heavy
contention can starve a transaction — itself an instructive data point,
but one that makes "everyone commits" assertions configuration
dependent."""


def run_one(
    factory: SchedulerFactory,
    workload: Workload,
    seed: int = 0,
    max_restarts: int = 40,
    max_events: int = 500_000,
    tracer: Tracer | None = None,
) -> RunMetrics:
    """Run a single scheduler against a fresh copy of the workload.

    With a ``tracer``, the engine records lifecycle spans (arrive,
    wait, restart, commit) and — when the scheduler is the Section-5
    protocol — the protocol layers share the tracer and the run's
    metrics registry, so validate/read/write spans and lock-queue
    histograms land in the same trace.
    """
    database = workload.fresh_database()
    scheduler = factory(database)
    engine = SimulationEngine(
        scheduler,
        workload,
        seed=seed,
        max_restarts=max_restarts,
        max_events=max_events,
        tracer=tracer,
    )
    if isinstance(scheduler, KorthSpeegleScheduler):
        if tracer is not None:
            scheduler.set_tracer(tracer)
        scheduler.set_registry(engine.metrics.registry)
    return engine.run()


def compare_schedulers(
    workload: Workload,
    schedulers: "dict[str, SchedulerFactory] | None" = None,
    seed: int = 0,
    max_restarts: int = 40,
) -> dict[str, RunMetrics]:
    """Run every scheduler on the workload; returns name → metrics."""
    chosen = schedulers if schedulers is not None else DEFAULT_SCHEDULERS
    return {
        name: run_one(
            factory, workload, seed=seed, max_restarts=max_restarts
        )
        for name, factory in chosen.items()
    }


def metrics_table(results: dict[str, RunMetrics]) -> str:
    """Format comparison results as an aligned text table."""
    rows = [metrics.summary_row() for metrics in results.values()]
    if not rows:
        return "(no results)"
    columns = list(rows[0].keys())
    widths = {
        column: max(
            len(column), *(len(str(row[column])) for row in rows)
        )
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    divider = "  ".join("-" * widths[column] for column in columns)
    lines = [header, divider]
    for row in rows:
        lines.append(
            "  ".join(
                str(row[column]).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)
