"""The database façade: schema + consistency constraint + version store.

Bundles the three things every transaction manager in this library
needs — the entity universe, the CNF database consistency constraint
``C``, and the multi-version store — behind one object that both the
Section-5 protocol and the classical baselines share.
"""

from __future__ import annotations

from typing import Mapping

from ..core.entities import Schema
from ..core.predicates import Predicate
from ..core.states import DatabaseState, UniqueState, VersionState
from ..errors import SchemaError
from .version_store import Version, VersionStore


class Database:
    """A consistent multi-version database instance.

    Parameters
    ----------
    schema:
        The entity universe ``E``.
    constraint:
        The database consistency constraint ``C`` (CNF).  The paper
        assumes every database has a non-trivial one; pass
        ``Predicate.true()`` explicitly if you really want none.
    initial:
        The initial unique state (written by ``t_0``).  Must satisfy
        the constraint — transactions map consistent states to
        consistent states, so the starting point must be consistent.
    """

    def __init__(
        self,
        schema: Schema,
        constraint: Predicate,
        initial: "UniqueState | Mapping[str, int]",
    ) -> None:
        if not isinstance(initial, UniqueState):
            initial = UniqueState(schema, dict(initial))
        if initial.schema != schema:
            raise SchemaError("initial state schema mismatch")
        if not constraint.evaluate(initial):
            raise SchemaError(
                "initial state violates the consistency constraint "
                f"{constraint}"
            )
        self._schema = schema
        self._constraint = constraint
        self._store = VersionStore(schema, initial)
        self._initial = initial

    @classmethod
    def from_parts(
        cls,
        schema: Schema,
        constraint: Predicate,
        initial: "UniqueState | Mapping[str, int]",
        store: VersionStore,
    ) -> "Database":
        """Attach an existing (e.g. recovered) store instead of a fresh one.

        Used by crash recovery: the store was rebuilt from a checkpoint
        snapshot plus WAL replay, so it must not be re-initialized from
        ``initial``.  The store's schema must match.
        """
        if store.schema != schema:
            raise SchemaError("store schema mismatch")
        db = cls(schema, constraint, initial)
        db._store = store
        return db

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def constraint(self) -> Predicate:
        """The database consistency constraint ``C``."""
        return self._constraint

    @property
    def store(self) -> VersionStore:
        return self._store

    @property
    def initial_state(self) -> UniqueState:
        return self._initial

    def objects(self) -> tuple[frozenset[str], ...]:
        """The constraint's objects (conjunct entity sets)."""
        return self._constraint.objects()

    # -- consistency ------------------------------------------------------------

    def latest_state(self) -> UniqueState:
        return self._store.latest_unique_state()

    def is_consistent(self) -> bool:
        """Does the latest single-version view satisfy ``C``?"""
        return self._constraint.evaluate(self.latest_state())

    def has_consistent_version_state(self) -> bool:
        """Does *some* version state satisfy ``C``?

        The multiversion notion of consistency: even if the latest
        values mix inconsistently, a consistent snapshot may exist
        among retained versions.
        """
        return self._constraint.is_satisfiable_over(
            self._store.as_database_state()
        )

    def version_state(self, values: Mapping[str, int]) -> VersionState:
        """Build a version state over this database's schema."""
        return VersionState(self._schema, dict(values))

    def as_database_state(self) -> DatabaseState:
        """Model-level view of all retained versions."""
        return self._store.as_database_state()

    def write(self, entity: str, value: int, author: str | None) -> Version:
        """Create a new version (delegates to the store)."""
        return self._store.write(entity, value, author)

    def __repr__(self) -> str:
        return (
            f"Database({len(self._schema)} entities, "
            f"{self._store.total_versions()} versions)"
        )
