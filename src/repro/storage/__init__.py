"""Multi-version storage substrate (Section 2.1)."""

from .database import Database
from .version_store import Version, VersionStore, store_from_values

__all__ = ["Database", "Version", "VersionStore", "store_from_values"]
