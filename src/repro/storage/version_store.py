"""Multi-version storage — the substrate design databases need anyway.

Section 2.1 argues versions "must be supported in a design environment
anyway, so it is desirable to take advantage of them to enhance
concurrency".  :class:`VersionStore` is that substrate: an append-only,
per-entity version history with authorship, creation order, and
liveness (aborted authors' versions are expunged, which the protocol's
cascading-abort handling relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..core.entities import Schema
from ..core.states import DatabaseState, UniqueState
from ..errors import SchemaError, UnknownEntityError


@dataclass(frozen=True)
class Version:
    """One immutable version of one entity.

    ``author`` is the creating transaction's name (``None`` for the
    initial version written by the pseudo-transaction ``t_0``);
    ``sequence`` is a store-wide monotonically increasing creation
    stamp, giving a total creation order across entities.
    """

    entity: str
    value: int
    author: str | None
    sequence: int

    def __str__(self) -> str:
        who = self.author if self.author is not None else "t_0"
        return f"{self.entity}={self.value}@{who}#{self.sequence}"


@dataclass
class _EntityHistory:
    versions: list[Version] = field(default_factory=list)


class VersionStore:
    """Append-only per-entity version histories.

    Every write creates a new version and "leaves the other versions
    alone" (Section 2.1); old values are never destroyed except by
    :meth:`expunge_author` (abort handling) or :meth:`prune`
    (housekeeping, never called by the protocol itself).
    """

    def __init__(self, schema: Schema, initial: UniqueState) -> None:
        if initial.schema != schema:
            raise SchemaError("initial state schema mismatch")
        self._schema = schema
        self._next_sequence = 0
        self._histories: dict[str, _EntityHistory] = {}
        for name in schema.names:
            history = _EntityHistory()
            history.versions.append(
                Version(name, initial[name], None, self._take_sequence())
            )
            self._histories[name] = history

    def _take_sequence(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def sequence_watermark(self) -> int:
        """The next creation stamp the store will issue.

        The watermark never rewinds — not on :meth:`expunge_author`,
        not on :meth:`prune`, and not across a snapshot/restore cycle —
        so creation stamps stay unique and monotone for the lifetime of
        the logical database, which recovery relies on to identify
        versions by ``(entity, sequence)``.
        """
        return self._next_sequence

    def _history(self, entity: str) -> _EntityHistory:
        try:
            return self._histories[entity]
        except KeyError:
            raise UnknownEntityError(f"unknown entity {entity!r}") from None

    # -- writes ------------------------------------------------------------

    def write(self, entity: str, value: int, author: str | None) -> Version:
        """Create (and return) a new version; earlier versions survive."""
        self._schema[entity].validate(value)
        version = Version(entity, value, author, self._take_sequence())
        self._history(entity).versions.append(version)
        return version

    # -- reads --------------------------------------------------------------

    def versions(self, entity: str) -> tuple[Version, ...]:
        """All live versions of an entity, in creation order."""
        return tuple(self._history(entity).versions)

    def initial(self, entity: str) -> Version:
        """The entity's oldest surviving version."""
        return self._history(entity).versions[0]

    def latest(self, entity: str) -> Version:
        """The most recently created live version."""
        return self._history(entity).versions[-1]

    def latest_by(self, entity: str, author: str | None) -> Version | None:
        """An author's most recent live version of an entity, if any."""
        for version in reversed(self._history(entity).versions):
            if version.author == author:
                return version
        return None

    def values_of(self, entity: str) -> frozenset[int]:
        """The retained value set — ``versions_of`` in model terms."""
        return frozenset(
            version.value for version in self._history(entity).versions
        )

    def version_count(self, entity: str) -> int:
        return len(self._history(entity).versions)

    def total_versions(self) -> int:
        return sum(
            len(history.versions) for history in self._histories.values()
        )

    def __iter__(self) -> Iterator[Version]:
        for name in self._schema.names:
            yield from self._histories[name].versions

    # -- maintenance ------------------------------------------------------------

    def expunge_author(self, author: str) -> list[Version]:
        """Remove all of one author's versions (abort handling).

        Returns the removed versions so the protocol can cascade to
        their readers.  The initial versions (author ``None``) can
        never be expunged.
        """
        removed: list[Version] = []
        for history in self._histories.values():
            kept = [v for v in history.versions if v.author != author]
            removed.extend(
                v for v in history.versions if v.author == author
            )
            history.versions = kept
        return removed

    def prune(self, entity: str, keep_last: int) -> int:
        """Drop all but the newest ``keep_last`` versions of an entity.

        Housekeeping only; returns how many versions were dropped.  At
        least one version always survives.
        """
        if keep_last < 1:
            raise SchemaError("must keep at least one version")
        history = self._history(entity)
        drop = max(0, len(history.versions) - keep_last)
        history.versions = history.versions[drop:]
        return drop

    # -- durability bridge -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable image of every live version.

        Rows are emitted in creation-stamp order so a restored store
        rebuilds identical per-entity histories.  ``next_sequence``
        preserves the watermark across the cycle (see
        :attr:`sequence_watermark`).
        """
        rows = sorted(
            ([v.entity, v.value, v.author, v.sequence] for v in self),
            key=lambda row: row[3],
        )
        return {"next_sequence": self._next_sequence, "versions": rows}

    @classmethod
    def from_snapshot(
        cls, schema: Schema, snapshot: dict[str, Any]
    ) -> "VersionStore":
        """Rebuild a store from a :meth:`snapshot` image."""
        store = cls.__new__(cls)
        store._schema = schema
        store._next_sequence = int(snapshot["next_sequence"])
        store._histories = {name: _EntityHistory() for name in schema.names}
        seen: set[int] = set()
        for entity, value, author, sequence in snapshot["versions"]:
            sequence = int(sequence)
            if sequence in seen or sequence >= store._next_sequence:
                raise SchemaError(
                    f"corrupt snapshot: bad sequence stamp {sequence}"
                )
            seen.add(sequence)
            schema[entity].validate(value)
            store._history(entity).versions.append(
                Version(entity, value, author, sequence)
            )
        for name in schema.names:
            if not store._histories[name].versions:
                raise SchemaError(
                    f"corrupt snapshot: entity {name!r} has no versions"
                )
        return store

    # -- model bridge ------------------------------------------------------------

    def latest_unique_state(self) -> UniqueState:
        """The single-version view: every entity's newest value."""
        return UniqueState(
            self._schema,
            {name: self.latest(name).value for name in self._schema.names},
        )

    def as_database_state(self) -> DatabaseState:
        """A model :class:`DatabaseState` with the same version sets.

        The model represents a database state as a *set of unique
        states*; this bridge builds one unique state per "layer" of
        history (padding short histories with their latest value) so
        that ``versions_of`` agrees with the store's value sets.
        """
        depth = max(
            len(history.versions) for history in self._histories.values()
        )
        states = []
        for layer in range(depth):
            values = {}
            for name in self._schema.names:
                versions = self._histories[name].versions
                index = min(layer, len(versions) - 1)
                values[name] = versions[index].value
            states.append(UniqueState(self._schema, values))
        return DatabaseState(states)


def store_from_values(
    schema: Schema, values: "dict[str, int] | Iterable[tuple[str, int]]"
) -> VersionStore:
    """Convenience: a store initialized from a plain value mapping."""
    mapping = dict(values)
    return VersionStore(schema, UniqueState(schema, mapping))
