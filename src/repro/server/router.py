"""Shard router: entity-hash routing plus a cross-shard 2PC coordinator.

A sharded server runs N completely independent single-threaded stacks
(:class:`~repro.server.session.CommandDispatcher` + manager + WAL
directory), one per shard, and puts this router in front of them.  The
router owns exactly the cross-shard state — everything else is
forwarded verbatim:

* **Entity routing** hashes an entity's *affinity key* (the name up to
  its last underscore, so ``m3_e2`` and ``m3_e7`` land together) onto a
  shard.  A transaction whose declared read/write footprint touches one
  shard is forwarded to that shard's dispatcher untouched — the fast
  path is byte-identical to an unsharded server.
* **Transaction routing** needs no table: shard ``i``'s manager roots
  its tree at ``sh{i}``, so every branch name is self-describing
  (``sh2.5`` → shard 2).
* **Cross-shard transactions** become one branch per participating
  shard.  The client sees a single name — the *gid*, which is the
  coordinator branch's name (coordinator = lowest participant shard).
  Commit runs two-phase: durable PREPARE on every branch (each prepare
  passes the full commit gate first, so a prepared branch's reads-from
  authors are all terminated and durable), then phase 2 commits the
  coordinator branch *first* — its COMMIT record **is** the global
  decision — and the remaining branches after.  A branch that crashes
  between its PREPARE and its COMMIT is resolved at recovery by
  :func:`~repro.durability.shard_recovery.resolve_in_doubt`
  (presumed abort: no committed coordinator branch, no commit).

Locality assumption (documented in ``docs/server.md``): constraint and
predicate *clauses* are assigned to the shard of their first entity, so
cross-shard consistency is exact only when each clause's entities share
an affinity key.  The affinity hash makes that the natural layout.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Any

from ..core.predicates import Clause, Predicate
from ..errors import ReproError
from ..obs.metrics import MetricsRegistry
from .errors import (
    ErrorCode,
    InvalidArgument,
    NotOwner,
    ServerError,
    UnknownTransaction,
)
from .protocol import Request, error_response, ok_response
from .session import CommandDispatcher, SessionState, _parse_predicate_cached


#: Phase-2 commit retry budget for shards answering ``BUSY``.
_PHASE2_BUSY_RETRIES = 25
_PHASE2_BUSY_BACKOFF = 0.02


def affinity_key(entity: str) -> str:
    """The sharding key: the entity name up to its last underscore.

    ``m3_e2`` → ``m3`` (all of module 3 colocates); a name without an
    underscore is its own key (``x`` → ``x``).
    """
    head, sep, _tail = entity.rpartition("_")
    return head if sep else entity


def shard_of(entity: str, shards: int) -> int:
    """Deterministic entity → shard assignment (CRC-32 of the key)."""
    return zlib.crc32(affinity_key(entity).encode("utf-8")) % shards


@dataclass(slots=True)
class _CrossTxn:
    """One live cross-shard transaction: its branches and 2PC roles."""

    gid: str
    session: SessionState
    branches: dict[int, str]
    coordinator: int
    #: The client-visible parent gid when this is a *nested* cross
    #: transaction (committed relative to the parent — no 2PC needed).
    parent_gid: str | None = None
    terminated: bool = False
    aborting: bool = False


class ShardRouter:
    """Front-end over per-shard dispatchers; API-compatible with one.

    The :class:`~repro.server.server.TransactionServer` talks to this
    exactly as it talks to a single ``CommandDispatcher``: sync
    ``submit`` returning a dict or future, ``run``/``stop``/``drain``/
    ``close_session``, and the ``queue_depth``/``parked_count``
    surface the metrics endpoint reads.
    """

    def __init__(
        self,
        dispatchers: list[CommandDispatcher],
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not dispatchers:
            raise ValueError("at least one shard dispatcher required")
        self._dispatchers = list(dispatchers)
        self._registry = registry
        self.replication = None  # sharding excludes replication
        self._stopping = False
        #: gid → live cross-shard transaction.
        self._cross: dict[str, _CrossTxn] = {}
        #: branch name → gid, for event translation and cascade maps.
        self._branch_gid: dict[str, str] = {}
        #: (session_id, shard) → shadow session.  One client session
        #: cannot be shared across dispatchers (ownership checks call
        #: into the shard's own manager), so each shard sees a shadow
        #: whose notifier funnels back through the router.
        self._shadows: dict[tuple[int, int], SessionState] = {}

    # -- dispatcher-compatible surface ---------------------------------------

    @property
    def shards(self) -> int:
        return len(self._dispatchers)

    @property
    def dispatchers(self) -> list[CommandDispatcher]:
        return list(self._dispatchers)

    @property
    def draining(self) -> bool:
        return self._stopping

    @property
    def queue_depth(self) -> int:
        return sum(d.queue_depth for d in self._dispatchers)

    @property
    def parked_count(self) -> int:
        return sum(d.parked_count for d in self._dispatchers)

    async def run(self) -> None:
        await asyncio.gather(*(d.run() for d in self._dispatchers))

    async def stop(self) -> None:
        for dispatcher in self._dispatchers:
            await dispatcher.stop()

    async def drain(self, grace: float = 2.0) -> dict[str, Any]:
        """Drain every shard concurrently and merge the summaries."""
        self._stopping = True
        summaries = await asyncio.gather(
            *(d.drain(grace) for d in self._dispatchers)
        )
        aborted: list[str] = []
        parked_failed = 0
        for summary in summaries:
            aborted.extend(summary["aborted"])
            parked_failed += summary["parked_failed"]
        for ct in self._cross.values():
            ct.terminated = True
        self._cross.clear()
        self._branch_gid.clear()
        return {"parked_failed": parked_failed, "aborted": aborted}

    async def close_session(self, session: SessionState) -> None:
        """Tear down a disconnected client on every shard it touched."""
        session.closed = True
        for ct in list(self._cross.values()):
            # Suppress per-branch abort fan-out/notification storms:
            # the per-shard close below aborts every branch anyway.
            if ct.session.session_id == session.session_id:
                ct.terminated = True
                self._forget(ct)
        for key in sorted(self._shadows):
            session_id, shard = key
            if session_id != session.session_id:
                continue
            shadow = self._shadows.pop(key)
            await self._dispatchers[shard].close_session(shadow)

    def submit(
        self, session: SessionState, request: Request
    ) -> "asyncio.Future[dict[str, Any]] | dict[str, Any]":
        """Route one request; never blocks (mirrors the dispatcher)."""
        if self._stopping:
            return error_response(
                request.request_id,
                ErrorCode.SHUTTING_DOWN,
                "server is draining; no new requests admitted",
            )
        return asyncio.get_running_loop().create_task(
            self._handle(session, request)
        )

    # -- routing helpers -----------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)

    def _shard_of(self, entity: str) -> int:
        return shard_of(entity, len(self._dispatchers))

    def _txn_shard(self, name: str) -> int:
        """Shard index off a branch name's root component (``sh2.…``)."""
        head = name.split(".", 1)[0]
        if head.startswith("sh"):
            try:
                index = int(head[2:])
            except ValueError:
                index = -1
            if 0 <= index < len(self._dispatchers):
                return index
        raise UnknownTransaction(f"unknown transaction {name!r}")

    def _shadow(self, session: SessionState, shard: int) -> SessionState:
        key = (session.session_id, shard)
        shadow = self._shadows.get(key)
        if shadow is None:
            shadow = SessionState(
                session.session_id,
                notify=lambda frame, s=session: self._on_event(s, frame),
                peer=session.peer,
            )
            self._shadows[key] = shadow
        return shadow

    def _on_event(self, session: SessionState, frame: dict[str, Any]) -> None:
        """Translate a per-branch event into the client's vocabulary.

        A server-side abort of one branch of a cross-shard transaction
        aborts the *whole* transaction: notify the client once under
        the gid, then fan the abort out to the sibling branches.
        """
        branch = frame.get("txn")
        gid = self._branch_gid.get(branch) if branch else None
        if gid is None:
            session.notify(frame)
            return
        ct = self._cross.get(gid)
        if ct is None or ct.terminated:
            return
        if frame.get("event") == "abort":
            ct.terminated = True
            session.notify({**frame, "txn": gid})
            reason = frame.get("reason") or "sibling branch aborted"
            asyncio.ensure_future(self._abort_all(ct, reason))
            return
        session.notify({**frame, "txn": gid})

    async def _call(
        self,
        shard: int,
        session: SessionState,
        op: str,
        params: dict[str, Any],
        request_id: int = -1,
    ) -> dict[str, Any]:
        shadow = self._shadow(session, shard)
        outcome = self._dispatchers[shard].submit(
            shadow, Request(request_id, op, dict(params))
        )
        return outcome if isinstance(outcome, dict) else await outcome

    async def _call_retry_busy(
        self,
        shard: int,
        session: SessionState,
        op: str,
        params: dict[str, Any],
        request_id: int = -1,
    ) -> dict[str, Any]:
        """Like :meth:`_call` but rides out a full shard queue.

        Used for phase-2 commits: once the decision is (or is about to
        be) durable, a transient ``BUSY`` must not strand a prepared
        branch — it would be force-aborted at drain while its siblings
        committed.  Retries are bounded; recovery still covers a shard
        that stays saturated past them.
        """
        reply: dict[str, Any] = {}
        for attempt in range(_PHASE2_BUSY_RETRIES + 1):
            reply = await self._call(shard, session, op, params, request_id)
            code = (
                (reply.get("error") or {}).get("code")
                if reply.get("ok") is False
                else None
            )
            if code != "BUSY" or attempt == _PHASE2_BUSY_RETRIES:
                return reply
            await asyncio.sleep(_PHASE2_BUSY_BACKOFF * (attempt + 1))
        return reply

    def _forget(self, ct: _CrossTxn) -> None:
        self._cross.pop(ct.gid, None)
        for branch in ct.branches.values():
            self._branch_gid.pop(branch, None)

    def _translate(self, names: list[str]) -> list[str]:
        """Branch names → client-visible names (gids), deduplicated."""
        seen: set[str] = set()
        out: list[str] = []
        for name in names:
            visible = self._branch_gid.get(name, name)
            if visible not in seen:
                seen.add(visible)
                out.append(visible)
        return out

    async def _abort_all(
        self, ct: _CrossTxn, reason: str
    ) -> list[dict[str, Any]]:
        """Best-effort abort of every branch (idempotent, errors eaten).

        Used for 2PC presumed-abort and sibling fan-out: a branch that
        is already terminated answers with a harmless error.
        """
        if ct.aborting:
            return []
        ct.aborting = True
        results = await asyncio.gather(
            *(
                self._call(
                    shard,
                    ct.session,
                    "abort",
                    {"txn": branch, "reason": reason},
                )
                for shard, branch in sorted(ct.branches.items())
            )
        )
        self._forget(ct)
        return list(results)

    # -- the request pipeline ------------------------------------------------

    async def _handle(
        self, session: SessionState, request: Request
    ) -> dict[str, Any]:
        try:
            return await self._execute(session, request)
        except ServerError as error:
            return error_response(
                request.request_id, error.code, str(error), **error.details
            )
        except ReproError as error:
            return error_response(
                request.request_id, ErrorCode.INVALID_ARG, str(error)
            )
        except Exception as error:  # noqa: BLE001 — fault barrier
            return error_response(
                request.request_id,
                ErrorCode.INTERNAL,
                f"{type(error).__name__}: {error}",
            )

    async def _execute(
        self, session: SessionState, request: Request
    ) -> dict[str, Any]:
        op, params, rid = request.op, request.params, request.request_id
        if op == "ping":
            return ok_response(rid, pong=True)
        if op == "hello":
            response = await self._call(0, session, "hello", {}, rid)
            if response.get("ok"):
                response = dict(response)
                response["shards"] = self.shards
            return response
        if op == "stats":
            return self._op_stats(rid)
        if op in ("follower_read", "repl_status", "promote"):
            raise InvalidArgument(
                f"{op!r} is not available on a sharded server "
                "(replication and sharding are mutually exclusive)"
            )
        if op == "define":
            return await self._op_define(session, rid, params)
        txn = params.get("txn")
        if not isinstance(txn, str) or not txn:
            raise InvalidArgument("missing required parameter 'txn'")
        ct = self._cross.get(txn)
        if ct is None:
            # Single-shard transaction: forward verbatim.
            return await self._call(
                self._txn_shard(txn), session, op, params, rid
            )
        if ct.session.session_id != session.session_id:
            raise NotOwner(
                f"transaction {txn} belongs to another session"
            )
        if op == "validate":
            return await self._validate_cross(session, rid, ct)
        if op in ("read", "write", "begin_write", "end_write"):
            return await self._entity_op_cross(session, rid, ct, op, params)
        if op == "commit":
            return await self._commit_cross(session, rid, ct)
        if op == "abort":
            return await self._abort_cross(session, rid, ct, params)
        if op == "view":
            return await self._view_cross(session, rid, ct)
        raise InvalidArgument(
            f"operation {op!r} is not supported on a cross-shard "
            f"transaction ({txn})"
        )

    def _op_stats(self, rid: int) -> dict[str, Any]:
        snapshot = (
            self._registry.snapshot() if self._registry is not None else {}
        )
        return ok_response(
            rid,
            stats=snapshot,
            queue_depth=self.queue_depth,
            parked=self.parked_count,
            shards={
                str(index): {
                    "queue_depth": dispatcher.queue_depth,
                    "parked": dispatcher.parked_count,
                }
                for index, dispatcher in enumerate(self._dispatchers)
            },
        )

    # -- define: the routing decision ----------------------------------------

    @staticmethod
    def _clauses(predicate: Predicate) -> "tuple[Clause, ...]":
        return () if predicate.is_true else predicate.clauses

    def _clause_shard(self, clause: Clause) -> int:
        return self._shard_of(sorted(clause.object)[0])

    async def _op_define(
        self, session: SessionState, rid: int, params: dict[str, Any]
    ) -> dict[str, Any]:
        updates = params.get("updates") or []
        if not isinstance(updates, list) or any(
            not isinstance(item, str) for item in updates
        ):
            raise InvalidArgument(
                "parameter 'updates' must be a list of strings"
            )
        input_pred = self._predicate(params, "input")
        output_pred = self._predicate(params, "output")

        shard_updates: dict[int, list[str]] = {}
        for entity in updates:
            shard_updates.setdefault(self._shard_of(entity), []).append(
                entity
            )
        shard_input: dict[int, list[Clause]] = {}
        for clause in self._clauses(input_pred):
            shard_input.setdefault(self._clause_shard(clause), []).append(
                clause
            )
        shard_output: dict[int, list[Clause]] = {}
        for clause in self._clauses(output_pred):
            shard_output.setdefault(self._clause_shard(clause), []).append(
                clause
            )

        # Predecessor edges are per-shard obligations: a predecessor's
        # shard joins the participant set so the ordering edge lives
        # where the predecessor does (a stub branch if nothing else
        # puts the transaction there).  Unroutable names are dropped,
        # mirroring the dispatcher's vanished-predecessor leniency.
        pred_by_shard: dict[int, list[str]] = {}
        for predecessor in params.get("predecessors") or []:
            if not isinstance(predecessor, str):
                raise InvalidArgument(
                    "parameter 'predecessors' must be a list of strings"
                )
            pct = self._cross.get(predecessor)
            if pct is not None:
                for shard, branch in pct.branches.items():
                    pred_by_shard.setdefault(shard, []).append(branch)
                continue
            try:
                shard = self._txn_shard(predecessor)
            except UnknownTransaction:
                continue
            pred_by_shard.setdefault(shard, []).append(predecessor)

        participants = (
            set(shard_updates)
            | set(shard_input)
            | set(shard_output)
            | set(pred_by_shard)
        )
        if not participants:
            participants = {0}

        parent = params.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise InvalidArgument("parameter 'parent' must be a string")
        parent_ct = self._cross.get(parent) if parent else None

        if len(participants) == 1:
            (shard,) = participants
            return await self._define_single(
                session, rid, params, shard, parent_ct, pred_by_shard
            )
        return await self._define_cross(
            session,
            rid,
            sorted(participants),
            shard_updates,
            shard_input,
            shard_output,
            pred_by_shard,
            parent,
            parent_ct,
        )

    @staticmethod
    def _predicate(params: dict[str, Any], role: str) -> Predicate:
        text = params.get(role, "true")
        if not isinstance(text, str) or not text:
            raise InvalidArgument(
                f"parameter {role!r} must be a non-empty string"
            )
        try:
            return _parse_predicate_cached(text)
        except ReproError as error:
            raise InvalidArgument(
                f"unparseable {role} predicate {text!r}: {error}"
            ) from error

    async def _define_single(
        self,
        session: SessionState,
        rid: int,
        params: dict[str, Any],
        shard: int,
        parent_ct: "_CrossTxn | None",
        pred_by_shard: dict[int, list[str]],
    ) -> dict[str, Any]:
        """Single-shard fast path: forward, rewriting only names."""
        forwarded = dict(params)
        forwarded["predecessors"] = pred_by_shard.get(shard, [])
        parent = params.get("parent")
        if parent_ct is not None:
            branch = parent_ct.branches.get(shard)
            if branch is None:
                raise InvalidArgument(
                    f"parent {parent} has no branch on shard {shard}; "
                    "a nested transaction may only touch its parent's "
                    "shards"
                )
            forwarded["parent"] = branch
        elif parent is not None and self._txn_shard(parent) != shard:
            raise InvalidArgument(
                f"parent {parent} lives on shard "
                f"{self._txn_shard(parent)} but the child's footprint "
                f"routes to shard {shard}"
            )
        return await self._call(shard, session, "define", forwarded, rid)

    async def _define_cross(
        self,
        session: SessionState,
        rid: int,
        participants: list[int],
        shard_updates: dict[int, list[str]],
        shard_input: dict[int, list[Clause]],
        shard_output: dict[int, list[Clause]],
        pred_by_shard: dict[int, list[str]],
        parent: str | None,
        parent_ct: "_CrossTxn | None",
    ) -> dict[str, Any]:
        if parent is not None and parent_ct is None:
            raise InvalidArgument(
                f"parent {parent} is single-shard but the child spans "
                f"shards {participants}"
            )
        if parent_ct is not None:
            missing = [
                shard
                for shard in participants
                if shard not in parent_ct.branches
            ]
            if missing:
                raise InvalidArgument(
                    f"child spans shards {missing} outside parent "
                    f"{parent}'s shard set"
                )
        responses = await asyncio.gather(
            *(
                self._call(
                    shard,
                    session,
                    "define",
                    {
                        "updates": shard_updates.get(shard, []),
                        "input": str(
                            Predicate.of(*shard_input.get(shard, []))
                        ),
                        "output": str(
                            Predicate.of(*shard_output.get(shard, []))
                        ),
                        "predecessors": pred_by_shard.get(shard, []),
                        **(
                            {"parent": parent_ct.branches[shard]}
                            if parent_ct is not None
                            else {}
                        ),
                    },
                    rid,
                )
                for shard in participants
            )
        )
        branches: dict[int, str] = {}
        failure: dict[str, Any] | None = None
        for shard, response in zip(participants, responses):
            if response.get("ok") and "txn" in response:
                branches[shard] = response["txn"]
            elif failure is None:
                failure = response
        if failure is not None:
            for shard, branch in branches.items():
                await self._call(
                    shard,
                    session,
                    "abort",
                    {"txn": branch, "reason": "sibling define failed"},
                )
            return failure
        coordinator = min(participants)
        gid = branches[coordinator]
        ct = _CrossTxn(
            gid=gid,
            session=session,
            branches=branches,
            coordinator=coordinator,
            parent_gid=parent if parent_ct is not None else None,
        )
        self._cross[gid] = ct
        for branch in branches.values():
            self._branch_gid[branch] = gid
        self._count("server.cross.defined")
        return ok_response(
            rid,
            txn=gid,
            shards=participants,
            branches={
                str(shard): branch for shard, branch in branches.items()
            },
        )

    # -- cross-shard lifecycle ops -------------------------------------------

    async def _validate_cross(
        self, session: SessionState, rid: int, ct: _CrossTxn
    ) -> dict[str, Any]:
        shards = sorted(ct.branches)
        responses = await asyncio.gather(
            *(
                self._call(
                    shard, session, "validate", {"txn": ct.branches[shard]}, rid
                )
                for shard in shards
            )
        )
        assigned: dict[str, str] = {}
        failure: dict[str, Any] | None = None
        for response in responses:
            if response.get("ok") and response.get("outcome") == "ok":
                assigned.update(response.get("assigned", {}))
            elif failure is None:
                failure = response
        if failure is None:
            return ok_response(rid, outcome="ok", assigned=assigned)
        # One branch failed (aborted inside its scheduler) — the whole
        # transaction is dead; abort the surviving branches.
        ct.terminated = True
        await self._abort_all(ct, "sibling branch failed validation")
        if failure.get("ok") is False:
            return failure
        cascade = self._translate(failure.get("aborted", []))
        return ok_response(
            rid,
            outcome="failed",
            reason=failure.get("reason"),
            aborted=self._translate([ct.gid]) + cascade,
        )

    async def _entity_op_cross(
        self,
        session: SessionState,
        rid: int,
        ct: _CrossTxn,
        op: str,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        entity = params.get("entity")
        if not isinstance(entity, str) or not entity:
            raise InvalidArgument("missing required parameter 'entity'")
        shard = self._shard_of(entity)
        branch = ct.branches.get(shard)
        if branch is None:
            raise InvalidArgument(
                f"entity {entity!r} routes to shard {shard}, outside "
                f"transaction {ct.gid}'s declared footprint "
                f"(shards {sorted(ct.branches)})"
            )
        forwarded = dict(params)
        forwarded["txn"] = branch
        return await self._call(shard, session, op, forwarded, rid)

    async def _commit_cross(
        self, session: SessionState, rid: int, ct: _CrossTxn
    ) -> dict[str, Any]:
        if ct.terminated:
            raise UnknownTransaction(
                f"transaction {ct.gid} already terminated"
            )
        if ct.parent_gid is not None:
            return await self._commit_nested(session, rid, ct)
        shards = sorted(ct.branches)
        participants = {
            str(shard): branch for shard, branch in ct.branches.items()
        }
        # Phase 1: every branch logs a durable PREPARE.  Each prepare
        # runs the full commit gate first (predecessors resolved,
        # reads-from authors terminated), parking until it can promise.
        prepares = await asyncio.gather(
            *(
                self._call(
                    shard,
                    session,
                    "prepare",
                    {
                        "txn": ct.branches[shard],
                        "gid": ct.gid,
                        "participants": participants,
                        "coordinator": ct.coordinator,
                    },
                    rid,
                )
                for shard in shards
            )
        )
        failure = next(
            (
                response
                for response in prepares
                if not response.get("ok")
                or response.get("outcome") != "prepared"
            ),
            None,
        )
        if failure is not None:
            # Presumed abort: no decision record is ever written.
            ct.terminated = True
            self._count("server.cross.aborted")
            await self._abort_all(ct, "2PC prepare failed")
            if failure.get("ok") is False:
                return failure
            return ok_response(
                rid,
                outcome="failed",
                reason=failure.get("reason"),
                aborted=[ct.gid],
            )
        # Phase 2: the coordinator branch's COMMIT record is the global
        # decision — it must be durable before any other branch commits
        # (recovery resolves in-doubt branches by looking *only* at the
        # coordinator branch's terminal state).
        decision = await self._call_retry_busy(
            session=session,
            shard=ct.coordinator,
            op="commit",
            params={"txn": ct.branches[ct.coordinator]},
            request_id=rid,
        )
        if not decision.get("ok") or decision.get("outcome") != "committed":
            ct.terminated = True
            self._count("server.cross.aborted")
            await self._abort_all(ct, "2PC decision commit failed")
            if decision.get("ok") is False:
                return decision
            return ok_response(
                rid,
                outcome="failed",
                reason=decision.get("reason"),
                aborted=[ct.gid],
            )
        ct.terminated = True
        others = await asyncio.gather(
            *(
                self._call_retry_busy(
                    shard,
                    session,
                    "commit",
                    {"txn": ct.branches[shard]},
                    rid,
                )
                for shard in shards
                if shard != ct.coordinator
            )
        )
        for response in others:
            if not response.get("ok") or (
                response.get("outcome") != "committed"
            ):
                # The decision is durable; this branch resolves to
                # committed at recovery (see resolve_in_doubt).
                self._count("server.cross.phase2_incomplete")
        self._forget(ct)
        self._count("server.cross.committed")
        extra: dict[str, Any] = {}
        if "commit_lsn" in decision:
            extra["commit_lsn"] = decision["commit_lsn"]
        return ok_response(
            rid, outcome="committed", shards=shards, **extra
        )

    async def _commit_nested(
        self, session: SessionState, rid: int, ct: _CrossTxn
    ) -> dict[str, Any]:
        """Nested cross commit: relative to the parent, so no 2PC.

        Each branch commits into its parent branch; durability and
        atomicity are the parent's problem when *it* commits.
        """
        shards = sorted(ct.branches)
        responses = await asyncio.gather(
            *(
                self._call(
                    shard,
                    session,
                    "commit",
                    {"txn": ct.branches[shard]},
                    rid,
                )
                for shard in shards
            )
        )
        failure = next(
            (
                response
                for response in responses
                if not response.get("ok")
                or response.get("outcome") != "committed"
            ),
            None,
        )
        ct.terminated = True
        if failure is not None:
            await self._abort_all(ct, "sibling branch failed to commit")
            if failure.get("ok") is False:
                return failure
            return ok_response(
                rid,
                outcome="failed",
                reason=failure.get("reason"),
                aborted=[ct.gid],
            )
        self._forget(ct)
        return ok_response(rid, outcome="committed", shards=shards)

    async def _abort_cross(
        self,
        session: SessionState,
        rid: int,
        ct: _CrossTxn,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        reason = params.get("reason")
        if reason is not None and not isinstance(reason, str):
            raise InvalidArgument("parameter 'reason' must be a string")
        ct.terminated = True
        self._count("server.cross.aborted")
        ct.aborting = True
        responses = await asyncio.gather(
            *(
                self._call(
                    shard,
                    session,
                    "abort",
                    {
                        "txn": branch,
                        "reason": reason or "client requested",
                    },
                    rid,
                )
                for shard, branch in sorted(ct.branches.items())
            )
        )
        own = set(ct.branches.values())
        cascade: list[str] = []
        for response in responses:
            if response.get("ok"):
                cascade.extend(
                    name
                    for name in response.get("cascade", [])
                    if name not in own
                )
        self._forget(ct)
        return ok_response(
            rid, outcome="aborted", cascade=self._translate(cascade)
        )

    async def _view_cross(
        self, session: SessionState, rid: int, ct: _CrossTxn
    ) -> dict[str, Any]:
        shards = sorted(ct.branches)
        responses = await asyncio.gather(
            *(
                self._call(
                    shard, session, "view", {"txn": ct.branches[shard]}, rid
                )
                for shard in shards
            )
        )
        views = {
            str(shard): response.get("view")
            for shard, response in zip(shards, responses)
            if response.get("ok")
        }
        failure = next(
            (r for r in responses if not r.get("ok")), None
        )
        if failure is not None and not views:
            return failure
        return ok_response(rid, view=views, gid=ct.gid)
