"""Sessions and the command queue over the single-threaded manager.

**The invariant this module exists to protect:**
:class:`~repro.protocol.scheduler.TransactionManager` is synchronous,
single-threaded, and non-reentrant — every method mutates shared lock,
version, and record state with no internal synchronisation.  The server
therefore funnels *every* manager call through one bounded
:class:`asyncio.Queue` drained by one dispatcher task
(:meth:`CommandDispatcher.run`).  Connection handlers never touch the
manager; they submit :class:`Command` objects and await futures.  Even
the resumption of parked (blocked) requests happens inside the
dispatcher's current iteration, so at no point do two manager calls
interleave.

Blocking semantics: the manager expresses blocking as ``BLOCKED``
step results plus ``unblocked`` lists on later results (lock-queue
drainage).  The dispatcher turns that into *server-side parking*: a
blocked request's command is filed under its transaction in a wait map
and the response is sent only when the step finally completes, fails,
or its deadline passes (``TIMEOUT``).  At most one request may be
parked per transaction (``CONFLICT`` otherwise).

Backpressure: ``submit`` never waits.  A full command queue yields an
immediate ``BUSY`` error — the client backs off — instead of unbounded
buffering inside the server.

Cascading aborts: whenever an abort cascade touches a transaction,
any request parked on it fails with ``ABORTED`` and the owning session
receives an unsolicited ``{"event": "abort", …}`` frame, so a session
learns that *another* session's write or abort invalidated its
transaction without having to poll.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

from ..core.predicates import Predicate
from ..core.transactions import Spec
from ..errors import (
    PredicateParseError,
    ProtocolError,
    ReproError,
    TransactionAborted,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Span, Tracer
from ..protocol.scheduler import (
    Outcome,
    StepResult,
    TransactionManager,
    TxnPhase,
)
from .errors import (
    ConflictingRequest,
    ErrorCode,
    InvalidArgument,
    NotOwner,
    NotPrimary,
    ServerError,
    StaleRead,
    UnknownOperation,
    UnknownTransaction,
)
from .clock import CLOCK
from .protocol import Request, error_response, event_frame, ok_response

PARKED = object()
"""Sentinel returned by op handlers that parked their command."""

_STOP = object()
"""Queue sentinel that terminates the dispatcher loop."""


@dataclass(slots=True)
class SessionState:
    """One connected client: identity, owned transactions, notifier.

    ``notify`` delivers an unsolicited event frame to the session's
    connection (non-blocking; the transport buffers).  ``owned`` is the
    set of transaction names this session defined — only the owner may
    drive a transaction's lifecycle, and only the owner is notified
    when it is aborted from outside.
    """

    session_id: int
    notify: Callable[[dict[str, Any]], None]
    peer: str = ""
    owned: set[str] = field(default_factory=set)
    closed: bool = False

    @property
    def name(self) -> str:
        return f"s{self.session_id}"


@dataclass(slots=True)
class Command:
    """One submitted request on its way through the dispatcher."""

    session: SessionState
    request_id: int
    op: str
    params: dict[str, Any]
    future: "asyncio.Future[dict[str, Any]]"
    enqueued_at: float
    deadline: float
    parked_on: str | None = None
    blocked_entity: str | None = None
    timer: asyncio.TimerHandle | None = None
    #: Bumped every time the command parks.  Re-park detection: a
    #: stale (command, epoch) snapshot must not resume the command a
    #: second time after a recursive cascade already ran it.
    park_epoch: int = 0
    parked_at: float = 0.0
    #: The request span (opened at dequeue, backdated to enqueue) and
    #: the currently-open park-wait child span, when tracing is on.
    span: Span | None = None
    wait_span: Span | None = None
    #: Sync replication: the commit LSN this command's reply waits on
    #: (the commit is already durable locally when this is set).
    repl_lsn: int | None = None


_REQUIRED = object()


@lru_cache(maxsize=4096)
def _parse_predicate_cached(text: str) -> Predicate:
    """Parse-once cache for constraint texts.

    Load generators and real clients alike send a small vocabulary of
    predicate strings over and over (every restart re-defines with the
    same constraints); :class:`Predicate` is immutable, so sharing the
    parsed object across transactions and sessions is safe.
    """
    return Predicate.parse(text)


class CommandDispatcher:
    """Serializes all manager access through one bounded queue."""

    def __init__(
        self,
        manager: TransactionManager,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        queue_size: int = 256,
        request_timeout: float = 5.0,
        clock: Callable[[], float] = CLOCK,
        batch_size: int = 32,
        shard: int | None = None,
        shards_total: int = 1,
    ) -> None:
        self._tm = manager
        #: Shard identity (``None`` = unsharded, today's exact metric
        #: names).  When set, every dispatcher metric is written twice:
        #: once under ``<name>.shard<i>`` and once into the unlabelled
        #: aggregate — counters by double-increment (sums stay exact),
        #: gauges by re-summing the per-shard gauges (no double-count).
        self._shard = shard
        self._shards_total = max(1, shards_total)
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._queue: "asyncio.Queue[Command | object]" = asyncio.Queue(
            maxsize=max(1, queue_size)
        )
        self._request_timeout = request_timeout
        self._clock = clock
        self._batch_size = max(1, batch_size)
        # txn name -> the one command parked on it.
        self._lock_waiters: dict[str, Command] = {}
        self._commit_waiters: dict[str, Command] = {}
        # txn name -> commit command whose reply awaits follower acks
        # (the commit itself already happened and is durable locally).
        self._repl_waiters: dict[str, Command] = {}
        #: Replication role context (duck-typed; see
        #: :class:`repro.replication.context.ReplicationContext`).
        #: ``None`` means standalone — no role gating, no sync acks.
        self.replication: Any = None
        self._owners: dict[str, SessionState] = {}
        # txn name -> its open lifetime root span (tracing only).
        self._txn_spans: dict[str, Span] = {}
        self._draining = False
        self._stopped = False

    # -- metrics helpers -----------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)
            if self._shard is not None:
                self._registry.counter(
                    f"{name}.shard{self._shard}"
                ).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self._registry is not None:
            self._registry.histogram(name).observe(value)
            if self._shard is not None:
                self._registry.histogram(
                    f"{name}.shard{self._shard}"
                ).observe(value)

    def _gauge_set(self, name: str, value: float) -> None:
        if self._registry is None:
            return
        if self._shard is None:
            self._registry.gauge(name).set(value)
            return
        # Per-shard gauge holds this dispatcher's own value; the
        # unlabelled aggregate is recomputed as the sum over shards so
        # it never double-counts one shard's depth against another's.
        self._registry.gauge(f"{name}.shard{self._shard}").set(value)
        self._registry.gauge(name).set(
            sum(
                self._registry.gauge(f"{name}.shard{index}").value
                for index in range(self._shards_total)
            )
        )

    # -- accessors -----------------------------------------------------------

    @property
    def manager(self) -> TransactionManager:
        return self._tm

    def replace_manager(self, manager: TransactionManager) -> None:
        """Swap the manager (promotion): must run from inside the
        dispatcher's current iteration so no command interleaves with
        the swap.  On a promoting follower nothing can be parked (all
        primary ops were redirected), so no waiter can reference the
        old manager."""
        self._tm = manager

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def parked_count(self) -> int:
        return (
            len(self._lock_waiters)
            + len(self._commit_waiters)
            + len(self._repl_waiters)
        )

    def owner_of(self, txn: str) -> SessionState | None:
        return self._owners.get(txn)

    # -- submission ----------------------------------------------------------

    def submit(
        self, session: SessionState, request: Request
    ) -> "asyncio.Future[dict[str, Any]] | dict[str, Any]":
        """Enqueue a request; never blocks.

        Returns the command's future, or an immediate error response
        dict when the request cannot be admitted (``BUSY`` /
        ``SHUTTING_DOWN``).
        """
        if self._draining or self._stopped:
            return error_response(
                request.request_id,
                ErrorCode.SHUTTING_DOWN,
                "server is draining; no new requests admitted",
            )
        now = self._clock()
        loop = asyncio.get_running_loop()
        command = Command(
            session=session,
            request_id=request.request_id,
            op=request.op,
            params=request.params,
            future=loop.create_future(),
            enqueued_at=now,
            deadline=now + self._request_timeout,
        )
        try:
            self._queue.put_nowait(command)
        except asyncio.QueueFull:
            self._count("server.busy")
            return error_response(
                request.request_id,
                ErrorCode.BUSY,
                "command queue full; back off and retry",
                queue_size=self._queue.maxsize,
            )
        self._count("server.requests")
        self._count(f"server.requests.{request.op}")
        self._gauge_set("server.queue.depth", self._queue.qsize())
        return command.future

    async def submit_internal(
        self, session: SessionState, op: str, params: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Server-originated command (session cleanup): waits for queue
        space instead of failing ``BUSY``, and is a no-op mid-drain
        (the drain itself aborts every live transaction)."""
        if self._draining or self._stopped:
            return None
        now = self._clock()
        loop = asyncio.get_running_loop()
        command = Command(
            session=session,
            request_id=-1,
            op=op,
            params=params,
            future=loop.create_future(),
            enqueued_at=now,
            deadline=now + self._request_timeout,
        )
        await self._queue.put(command)
        return await command.future

    # -- the dispatcher loop -------------------------------------------------

    async def run(self) -> None:
        """Drain the command queue forever (until :meth:`stop`).

        This coroutine is the **only** code path that calls into the
        transaction manager.

        Commands are drained in *batches*: after the blocking dequeue
        of the first command, whatever else is already queued (up to
        ``batch_size``) is drained without yielding to the event loop
        and processed in one dispatch cycle.  FIFO order and the
        single-threaded manager invariant are untouched — batching
        only amortises the per-cycle bookkeeping (gauge updates, clock
        reads) and lets one epoch of the manager's conflict/D-set
        index serve the whole batch: validations between which no
        define or abort intervened share one
        :class:`~repro.protocol.fastpath.ParentIndex` build instead of
        recomputing conflict structure per Operation.
        """
        stop = False
        while not stop:
            batch: list[Command] = []
            item = await self._queue.get()
            while True:
                if item is _STOP:
                    stop = True
                    break
                assert isinstance(item, Command)
                batch.append(item)
                if len(batch) >= self._batch_size:
                    break
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if not batch:
                break
            self._gauge_set("server.queue.depth", self._queue.qsize())
            self._observe("server.batch.size", len(batch))
            now = self._clock()
            for command in batch:
                self._observe(
                    "server.queue.wait", now - command.enqueued_at
                )
                if command.future.cancelled():
                    continue
                if self._tracer.enabled:
                    self._open_request_span(command, now)
                if now > command.deadline:
                    self._resolve(
                        command,
                        error_response(
                            command.request_id,
                            ErrorCode.TIMEOUT,
                            "request timed out in the command queue",
                        ),
                    )
                    continue
                self._run_command(command)
        self._stopped = True
        # The _STOP sentinel was still queued when the last command was
        # dequeued, so the gauge may read 1; reset it to the true
        # leftover depth so a drained server reports 0.
        self._gauge_set("server.queue.depth", self._queue.qsize())

    def _open_request_span(self, command: Command, now: float) -> None:
        """Open the per-request span as the command starts executing.

        The span is opened at *dequeue* (not submit) so a pipelined
        client's queued same-transaction requests do not nest under
        each other, then backdated to the enqueue time so it covers
        queue wait; the wait itself is also recorded as an explicit
        ``queue.wait`` child with the same interval.
        """
        txn = command.params.get("txn")
        if not isinstance(txn, str) or not txn:
            # define / ping / hello / stats: no transaction yet.  The
            # pseudo name is unique per request; _op_define aliases it
            # onto the real transaction once that exists.
            txn = f"{command.session.name}.r{command.request_id}"
        span = self._tracer.start(
            "request",
            txn,
            op=command.op,
            session=command.session.name,
            request_id=command.request_id,
        )
        if span is not None:
            span.start = command.enqueued_at
            command.span = span
            self._tracer.record(
                "queue.wait",
                txn,
                start=command.enqueued_at,
                end=now,
                parent=span,
            )

    async def stop(self) -> None:
        """Terminate :meth:`run` after the already-queued commands."""
        self._draining = True
        await self._queue.put(_STOP)

    async def drain(self, grace: float = 2.0) -> dict[str, Any]:
        """Graceful shutdown: stop admitting, finish, abort leftovers.

        1. flips to draining (new submits get ``SHUTTING_DOWN``);
        2. waits up to ``grace`` seconds for the queue and the parked
           requests to empty naturally — but stops waiting as soon as
           only *commit-stability* parks remain: their reads-from
           authors are owned by sessions that can no longer submit, so
           more waiting cannot resolve them;
        3. replies ``SHUTTING_DOWN`` (indeterminate, commit durable
           locally) to commits awaiting a replication ack, and plain
           ``SHUTTING_DOWN`` to lock waiters whose operation never
           executed;
        4. aborts every live top-level transaction — in two passes:
           transactions *without* a parked commit first, so their
           cascades resolve the parked commits honestly through
           ``_after_abort`` (``ABORTED`` when the cascade killed the
           waiter, ``committed`` when its reads-from author's
           termination unblocked it), then whatever is left;
        5. backstop: a commit still parked after both passes is failed
           with an *indeterminate* ``SHUTTING_DOWN`` — never a lost
           future.

        Returns a summary of what the drain had to clean up forcibly.
        """
        self._draining = True
        deadline = self._clock() + grace
        while self._clock() < deadline:
            if not (
                self._queue.qsize()
                or self._lock_waiters
                or self._repl_waiters
            ):
                # Only commit-stability parks (if anything) remain;
                # they resolve via the abort passes below, not by
                # waiting out the grace period.
                break
            await asyncio.sleep(0.02)
        parked_failed = 0
        for command in list(self._repl_waiters.values()):
            # These commits *happened* and are durable locally; only
            # the replication ack is outstanding.  Mark the reply
            # indeterminate rather than implying the commit was lost.
            self._unpark(command)
            parked_failed += 1
            self._count("server.repl.indeterminate")
            self._resolve(
                command,
                error_response(
                    command.request_id,
                    ErrorCode.SHUTTING_DOWN,
                    "server shut down before the replication ack; "
                    "the commit is durable locally",
                    indeterminate=True,
                    commit_lsn=command.repl_lsn,
                ),
            )
        for command in list(self._lock_waiters.values()):
            self._unpark(command)
            parked_failed += 1
            self._resolve(
                command,
                error_response(
                    command.request_id,
                    ErrorCode.SHUTTING_DOWN,
                    "server shut down while the request was parked",
                ),
            )
        aborted: list[str] = []
        root = self._tm.root
        for skip_commit_parked in (True, False):
            for child in self._tm.children_of(root):
                if skip_commit_parked and child in self._commit_waiters:
                    continue
                if self._tm.record(child).terminated:
                    continue
                cascade = self._tm.abort(child, reason="server shutdown")
                aborted.extend(cascade)
                self._after_abort(cascade)
        for command in list(self._commit_waiters.values()):
            self._unpark(command)
            parked_failed += 1
            self._resolve(
                command,
                error_response(
                    command.request_id,
                    ErrorCode.SHUTTING_DOWN,
                    "server shut down while the commit was parked; "
                    "its outcome was not decided",
                    indeterminate=True,
                ),
            )
        return {
            "parked_failed": parked_failed,
            "aborted": aborted,
        }

    # -- command execution ---------------------------------------------------

    def _run_command(self, command: Command) -> None:
        if command.future.done():
            # Already answered (parked deadline expired, abort cascade,
            # drain).  A command whose reply went out must never touch
            # the manager again — running it would mutate state the
            # client was told nothing happened to.
            return
        try:
            result = self._execute(command)
        except ServerError as error:
            result = error_response(
                command.request_id,
                error.code,
                str(error),
                **error.details,
            )
        except TransactionAborted as error:
            result = error_response(
                command.request_id, ErrorCode.ABORTED, str(error)
            )
        except ProtocolError as error:
            result = error_response(
                command.request_id, ErrorCode.PROTOCOL, str(error)
            )
        except ReproError as error:
            result = error_response(
                command.request_id, ErrorCode.INVALID_ARG, str(error)
            )
        except Exception as error:  # noqa: BLE001 — fault barrier
            result = error_response(
                command.request_id,
                ErrorCode.INTERNAL,
                f"{type(error).__name__}: {error}",
            )
        if result is PARKED:
            return
        self._resolve(command, result)

    def _resolve(self, command: Command, response: dict[str, Any]) -> None:
        if command.timer is not None:
            command.timer.cancel()
            command.timer = None
        if not command.future.done():
            command.future.set_result(response)
        self._observe(
            "server.request.latency",
            self._clock() - command.enqueued_at,
        )
        error_code: str | None = None
        if response.get("ok") is False:
            error_code = response.get("error", {}).get("code", "INTERNAL")
            self._count(f"server.errors.{error_code}")
        if command.span is not None:
            if command.wait_span is not None:
                self._tracer.end(command.wait_span)
                command.wait_span = None
            if error_code is None:
                self._tracer.end(command.span, ok=True)
            else:
                self._tracer.end(command.span, ok=False, error=error_code)

    #: Operations that mutate (or read uncommitted) manager state and
    #: therefore only the primary may serve.
    _PRIMARY_ONLY_OPS = frozenset(
        {
            "define",
            "validate",
            "read",
            "begin_write",
            "end_write",
            "write",
            "commit",
            "prepare",
            "abort",
            "view",
        }
    )

    def _execute(self, command: Command) -> dict[str, Any] | object:
        op = command.op
        repl = self.replication
        if (
            repl is not None
            and repl.is_follower
            and op in self._PRIMARY_ONLY_OPS
        ):
            raise NotPrimary(
                f"{op!r} requires the primary; this node is a follower",
                details={
                    "host": repl.primary_host,
                    "port": repl.primary_port,
                },
            )
        if op == "ping":
            return ok_response(command.request_id, pong=True)
        if op == "hello":
            return self._op_hello(command)
        if op == "stats":
            return self._op_stats(command)
        if op == "follower_read":
            return self._op_follower_read(command)
        if op == "repl_status":
            return self._op_repl_status(command)
        if op == "promote":
            return self._op_promote(command)
        if op == "define":
            return self._op_define(command)
        if op == "validate":
            return self._op_validate(command)
        if op == "read":
            return self._op_read(command)
        if op == "begin_write":
            return self._op_begin_write(command)
        if op == "end_write":
            return self._op_end_write(command)
        if op == "write":
            return self._op_write(command)
        if op == "commit":
            return self._op_commit(command)
        if op == "prepare":
            return self._op_prepare(command)
        if op == "abort":
            return self._op_abort(command)
        if op == "view":
            return self._op_view(command)
        raise UnknownOperation(f"unknown operation {op!r}")

    # -- parameter plumbing --------------------------------------------------

    @staticmethod
    def _str_param(
        params: dict[str, Any], key: str, default: Any = _REQUIRED
    ) -> str:
        value = params.get(key, default)
        if value is _REQUIRED:
            raise InvalidArgument(f"missing required parameter {key!r}")
        if not isinstance(value, str) or not value:
            raise InvalidArgument(
                f"parameter {key!r} must be a non-empty string"
            )
        return value

    @staticmethod
    def _int_param(params: dict[str, Any], key: str) -> int:
        value = params.get(key, _REQUIRED)
        if value is _REQUIRED:
            raise InvalidArgument(f"missing required parameter {key!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise InvalidArgument(
                f"parameter {key!r} must be an integer, got {value!r}"
            )
        return value

    @staticmethod
    def _name_list_param(
        params: dict[str, Any], key: str
    ) -> list[str]:
        value = params.get(key, [])
        if not isinstance(value, list) or any(
            not isinstance(item, str) for item in value
        ):
            raise InvalidArgument(
                f"parameter {key!r} must be a list of strings"
            )
        return value

    def _owned_txn(self, command: Command, key: str = "txn") -> str:
        """Resolve + authorise the transaction a request targets."""
        name = self._str_param(command.params, key)
        try:
            self._tm.record(name)
        except ProtocolError:
            raise UnknownTransaction(
                f"unknown transaction {name!r}"
            ) from None
        if name not in command.session.owned:
            raise NotOwner(
                f"transaction {name} belongs to another session"
            )
        return name

    @staticmethod
    def _parse_predicate(text: str, role: str) -> Predicate:
        try:
            return _parse_predicate_cached(text)
        except PredicateParseError as error:
            raise InvalidArgument(
                f"unparseable {role} predicate {text!r}: {error}"
            ) from error

    # -- operations ----------------------------------------------------------

    def _op_hello(self, command: Command) -> dict[str, Any]:
        return ok_response(
            command.request_id,
            server="repro",
            protocol=1,
            session=command.session.name,
            root=self._tm.root,
            entities=sorted(self._tm.database.schema.names),
            constraint=str(self._tm.database.constraint),
        )

    def _op_stats(self, command: Command) -> dict[str, Any]:
        snapshot = (
            self._registry.snapshot() if self._registry is not None else {}
        )
        extra: dict[str, Any] = {}
        open_spans = getattr(self._tracer, "open_spans", None)
        if callable(open_spans):
            # Live view: the oldest open spans are the slowest
            # in-flight work (the lifetime `txn.server` span of every
            # live transaction is always among them).
            now = self._clock()
            extra["live"] = [
                {
                    "txn": span.txn,
                    "kind": span.kind,
                    "op": span.attrs.get("op"),
                    "age": now - span.start,
                }
                for span in open_spans()[:32]
            ]
        if self.replication is not None:
            extra["repl"] = self.replication.status()
        return ok_response(
            command.request_id,
            stats=snapshot,
            queue_depth=self._queue.qsize(),
            parked=self.parked_count,
            **extra,
        )

    def _op_define(self, command: Command) -> dict[str, Any]:
        params = command.params
        parent = params.get("parent") or self._tm.root
        if not isinstance(parent, str):
            raise InvalidArgument("parameter 'parent' must be a string")
        if parent != self._tm.root:
            # Nesting below a session's own transactions is allowed;
            # nesting below someone else's tree is not.
            try:
                self._tm.record(parent)
            except ProtocolError:
                raise UnknownTransaction(
                    f"unknown parent {parent!r}"
                ) from None
            if parent not in command.session.owned:
                raise NotOwner(
                    f"parent {parent} belongs to another session"
                )
        spec = Spec(
            self._parse_predicate(
                self._str_param(params, "input", "true"), "input"
            ),
            self._parse_predicate(
                self._str_param(params, "output", "true"), "output"
            ),
        )
        updates = self._name_list_param(params, "updates")
        # Cross-session cooperation edges: predecessors may be owned by
        # any session.  Aborted or vanished predecessors are dropped —
        # they can never commit, so the ordering obligation is vacuous
        # (mirrors the scheduler adapter).
        predecessors = []
        for predecessor in self._name_list_param(params, "predecessors"):
            try:
                record = self._tm.record(predecessor)
            except ProtocolError:
                continue
            if record.phase is not TxnPhase.ABORTED:
                predecessors.append(predecessor)
        name = self._tm.define(
            parent, spec, updates, predecessors=predecessors
        )
        command.session.owned.add(name)
        self._owners[name] = command.session
        self._count("server.txns.defined")
        if self._tracer.enabled and command.span is not None:
            # Root the transaction's span tree: a lifetime span opened
            # before the alias (so it has no parent), then the define
            # request — traced under its pseudo name until now — is
            # folded in and reparented under the new root.
            root = self._tracer.start(
                "txn.server", name, session=command.session.name
            )
            if root is not None:
                self._txn_spans[name] = root
                self._tracer.alias(command.span.txn, name)
                self._tracer.reparent(command.span, root)
        return ok_response(command.request_id, txn=name)

    def _op_validate(self, command: Command) -> dict[str, Any] | object:
        name = self._owned_txn(command)
        step = self._tm.validate(name)
        if step.outcome is Outcome.BLOCKED:
            return self._park(
                command, name, self._lock_waiters, step.blocked_on
            )
        if step.outcome is Outcome.FAILED:
            self._apply_side_effects(step)
            # A failed validation aborts the transaction inside the
            # scheduler but reports only the *other* cascade victims,
            # so close its lifetime span here (the cascade loop in
            # _after_abort never sees it).
            self._end_txn_span(name, outcome="aborted", reason=step.reason)
            return ok_response(
                command.request_id,
                outcome="failed",
                reason=step.reason,
                aborted=step.aborted,
            )
        self._apply_side_effects(step)
        assigned = {
            item: str(version)
            for item, version in sorted(
                self._tm.assigned_versions(name).items()
            )
        }
        return ok_response(
            command.request_id, outcome="ok", assigned=assigned
        )

    def _op_read(self, command: Command) -> dict[str, Any] | object:
        name = self._owned_txn(command)
        entity = self._str_param(command.params, "entity")
        step = self._tm.read(name, entity)
        if step.outcome is Outcome.BLOCKED:
            return self._park(
                command, name, self._lock_waiters, step.blocked_on
            )
        self._apply_side_effects(step)
        return ok_response(command.request_id, value=step.value)

    def _op_begin_write(self, command: Command) -> dict[str, Any] | object:
        name = self._owned_txn(command)
        entity = self._str_param(command.params, "entity")
        step = self._tm.begin_write(name, entity)
        if step.outcome is Outcome.BLOCKED:
            # Strict mode: an uncommitted version of the entity exists.
            return self._park(
                command, name, self._lock_waiters, step.blocked_on
            )
        self._apply_side_effects(step)
        return ok_response(command.request_id)

    def _op_end_write(self, command: Command) -> dict[str, Any]:
        name = self._owned_txn(command)
        entity = self._str_param(command.params, "entity")
        value = self._int_param(command.params, "value")
        step = self._tm.end_write(name, entity, value)
        self._apply_side_effects(step)
        return ok_response(
            command.request_id,
            aborted=step.aborted,
            reassigned=step.reassigned,
        )

    def _op_write(self, command: Command) -> dict[str, Any] | object:
        name = self._owned_txn(command)
        entity = self._str_param(command.params, "entity")
        value = self._int_param(command.params, "value")
        begin = self._tm.begin_write(name, entity)
        if begin.outcome is Outcome.BLOCKED:
            # Strict mode: re-run the whole write once unblocked
            # (begin_write did not register anything while blocked).
            return self._park(
                command, name, self._lock_waiters, begin.blocked_on
            )
        step = self._tm.end_write(name, entity, value)
        self._apply_side_effects(step)
        return ok_response(
            command.request_id,
            aborted=step.aborted,
            reassigned=step.reassigned,
        )

    def _op_commit(self, command: Command) -> dict[str, Any] | object:
        name = self._owned_txn(command)
        ok, reason = self._tm.can_commit(name)
        if not ok and "predecessor" in reason:
            return self._park(command, name, self._commit_waiters, None)
        if not ok:
            return ok_response(
                command.request_id, outcome="failed", reason=reason
            )
        # Commit-stability gate: a commit acknowledgement promises
        # durability, but recovery cascade-aborts committed readers of
        # versions whose authors were in flight at the crash.  Park
        # until every reads-from author has terminated — then, by
        # induction and WAL append order, the whole dependency chain
        # is on disk before this commit record.  If the author aborts
        # instead, the live cascade fails this command (ABORTED); a
        # reads-from cycle parks both sides until the deadline
        # (TIMEOUT).  Strict mode never exposes uncommitted versions,
        # so the gate is vacuous there.
        blocker = self._tm.unstable_reads_from(name)
        if blocker is not None:
            return self._park(command, name, self._commit_waiters, None)
        step = self._tm.commit(name)
        self._count("server.txns.committed")
        self._end_txn_span(name, outcome="committed")
        self._apply_side_effects(step)
        if getattr(self._tm, "strict", False):
            # A commit makes the committer's versions strict-visible;
            # the manager has no lock-queue grant to report for that,
            # so re-run every parked waiter (they re-park if still
            # blocked, keeping their original deadline).
            self._resume_all_lock_waiters()
        # The commit LSN doubles as the client's read-your-writes
        # session token: a later ``follower_read`` passing it as
        # ``min_applied_lsn`` is guaranteed to observe this commit.
        lsn = getattr(self._tm, "commit_lsn_of", lambda _n: None)(name)
        extra: dict[str, Any] = {}
        if lsn is not None:
            extra["commit_lsn"] = lsn
        repl = self.replication
        if repl is not None and repl.wants_sync_ack():
            if lsn is not None and repl.hub.replicated_lsn < lsn:
                # Committed and durable locally; the reply waits until
                # enough followers have fsynced past the commit LSN.
                return self._park_repl(command, name, lsn)
            return ok_response(
                command.request_id,
                outcome="committed",
                replicated_lsn=repl.hub.replicated_lsn,
                **extra,
            )
        return ok_response(command.request_id, outcome="committed", **extra)

    def _op_prepare(self, command: Command) -> dict[str, Any] | object:
        """2PC phase 1: promise to commit this branch if told to.

        Runs the full commit gate — ``can_commit`` (parking on
        unresolved predecessors, exactly like a commit) and the
        commit-stability gate (parking while a reads-from author is in
        flight) — *before* logging the durable PREPARE.  The stability
        gate is what makes the coordinator's later decision safe to
        replay: by induction every reads-from author of a prepared
        branch is terminated and durable, so no recovery cascade can
        expunge a version this branch read.
        """
        name = self._owned_txn(command)
        ok, reason = self._tm.can_commit(name)
        if not ok and "predecessor" in reason:
            return self._park(command, name, self._commit_waiters, None)
        if not ok:
            return ok_response(
                command.request_id, outcome="failed", reason=reason
            )
        blocker = self._tm.unstable_reads_from(name)
        if blocker is not None:
            return self._park(command, name, self._commit_waiters, None)
        participants = command.params.get("participants")
        if not isinstance(participants, dict):
            raise InvalidArgument(
                "parameter 'participants' must be a shard->branch map"
            )
        data = {
            "gid": self._str_param(command.params, "gid"),
            "participants": dict(participants),
            "coordinator": self._int_param(
                command.params, "coordinator"
            ),
        }
        prepare = getattr(self._tm, "prepare", None)
        lsn = prepare(name, data) if prepare is not None else None
        self._count("server.txns.prepared")
        extra: dict[str, Any] = {}
        if lsn is not None:
            extra["prepare_lsn"] = lsn
        return ok_response(
            command.request_id, outcome="prepared", **extra
        )

    def _op_abort(self, command: Command) -> dict[str, Any]:
        name = self._owned_txn(command)
        reason = command.params.get("reason")
        if reason is not None and not isinstance(reason, str):
            raise InvalidArgument("parameter 'reason' must be a string")
        cascade = self._tm.abort(name, reason=reason or "client requested")
        self._count("server.txns.aborted")
        # The requester learns its own abort from the response; only
        # cascade victims are notified.
        self._after_abort(cascade, notify_exclude={name})
        return ok_response(
            command.request_id,
            outcome="aborted",
            cascade=[other for other in cascade if other != name],
        )

    def _op_view(self, command: Command) -> dict[str, Any]:
        name = self._owned_txn(command)
        return ok_response(command.request_id, view=self._tm.view(name))

    # -- replication operations ----------------------------------------------

    def _op_follower_read(self, command: Command) -> dict[str, Any]:
        """A bounded-stale read of the committed root view.

        On a follower the view is the replayed state at ``applied_lsn``
        — a committed prefix of the primary's history, i.e. exactly the
        kind of older-version read the paper's version functions make
        first-class.  ``max_lag_lsn`` / ``min_applied_lsn`` bound the
        staleness; an unsatisfiable bound fails with ``FOLLOWER_READ``
        so the client can retry or go to the primary.
        """
        params = command.params
        repl = self.replication
        if repl is not None and repl.is_follower:
            applier = repl.applier
            if applier is None or applier.state is None:
                raise StaleRead(
                    "follower has no replicated state yet",
                    details={"applied_lsn": 0, "lag_lsn": 0},
                )
            applied_lsn, view = applier.read_view()
            lag_lsn = applier.lag_lsn
            lag_ms = round(applier.lag_ms, 3)
            role = "follower"
        else:
            # Primary (or standalone): the committed view, zero lag.
            view = self._tm.view(self._tm.root)
            wal = getattr(self._tm, "wal", None)
            applied_lsn = wal.last_lsn if wal is not None else 0
            lag_lsn = 0
            lag_ms = 0.0
            role = "primary"
        max_lag = params.get("max_lag_lsn")
        if max_lag is not None:
            if isinstance(max_lag, bool) or not isinstance(max_lag, int):
                raise InvalidArgument(
                    "parameter 'max_lag_lsn' must be an integer"
                )
            if lag_lsn > max_lag:
                raise StaleRead(
                    f"replication lag {lag_lsn} exceeds bound {max_lag}",
                    details={
                        "applied_lsn": applied_lsn,
                        "lag_lsn": lag_lsn,
                    },
                )
        min_applied = params.get("min_applied_lsn")
        if min_applied is not None:
            if isinstance(min_applied, bool) or not isinstance(
                min_applied, int
            ):
                raise InvalidArgument(
                    "parameter 'min_applied_lsn' must be an integer"
                )
            if applied_lsn < min_applied:
                raise StaleRead(
                    f"applied_lsn {applied_lsn} is behind required "
                    f"{min_applied} (read-your-writes bound)",
                    details={
                        "applied_lsn": applied_lsn,
                        "lag_lsn": lag_lsn,
                    },
                )
        entity = params.get("entity")
        payload: dict[str, Any] = {
            "applied_lsn": applied_lsn,
            "lag_lsn": lag_lsn,
            "lag_ms": lag_ms,
            "role": role,
        }
        if entity is not None:
            if not isinstance(entity, str) or not entity:
                raise InvalidArgument(
                    "parameter 'entity' must be a non-empty string"
                )
            if entity not in view:
                raise InvalidArgument(f"unknown entity {entity!r}")
            payload["value"] = view[entity]
        else:
            payload["view"] = dict(sorted(view.items()))
        self._count("server.follower_reads")
        return ok_response(command.request_id, **payload)

    def _op_repl_status(self, command: Command) -> dict[str, Any]:
        repl = self.replication
        status = (
            repl.status() if repl is not None else {"role": "standalone"}
        )
        return ok_response(command.request_id, **status)

    def _op_promote(self, command: Command) -> dict[str, Any]:
        """Promote this follower to primary, in place.

        Runs synchronously inside the dispatcher iteration: no other
        command can interleave with the manager swap, so the promotion
        is atomic from every session's point of view.
        """
        repl = self.replication
        if repl is None or not repl.is_follower:
            raise InvalidArgument(
                "promote: this node is not a follower"
            )
        if repl.promote is None:
            raise InvalidArgument(
                "promote: this follower cannot be promoted"
            )
        listen_port = command.params.get("listen_port")
        if listen_port is not None and (
            isinstance(listen_port, bool)
            or not isinstance(listen_port, int)
        ):
            raise InvalidArgument(
                "parameter 'listen_port' must be an integer"
            )
        report = repl.promote(listen_port=listen_port)
        self._count("server.promotions")
        return ok_response(command.request_id, **report)

    # -- parking & side effects ----------------------------------------------

    def _park(
        self,
        command: Command,
        txn: str,
        store: dict[str, Command],
        entity: str | None,
    ) -> object:
        if txn in self._lock_waiters or txn in self._commit_waiters:
            raise ConflictingRequest(
                f"another request is already parked on {txn}"
            )
        command.parked_on = txn
        command.blocked_entity = entity
        command.park_epoch += 1
        command.parked_at = self._clock()
        store[txn] = command
        self._count("server.parked")
        self._gauge_set("server.park.depth", self.parked_count)
        if self._tracer.enabled and command.span is not None:
            command.wait_span = self._tracer.start(
                "park.wait",
                txn,
                parent=command.span,
                entity=entity,
                on=("commit" if store is self._commit_waiters else "lock"),
            )
        remaining = command.deadline - self._clock()
        loop = asyncio.get_running_loop()
        if remaining <= 0:
            self._expire(command)
            return PARKED
        command.timer = loop.call_later(
            remaining, self._expire, command
        )
        return PARKED

    def _park_repl(
        self, command: Command, txn: str, lsn: int
    ) -> object:
        """Withhold a committed reply until followers ack ``lsn``."""
        command.parked_on = txn
        command.repl_lsn = lsn
        command.park_epoch += 1
        command.parked_at = self._clock()
        self._repl_waiters[txn] = command
        self._count("server.parked")
        self._gauge_set("server.park.depth", self.parked_count)
        if self._tracer.enabled and command.span is not None:
            command.wait_span = self._tracer.start(
                "park.wait",
                txn,
                parent=command.span,
                on="replication",
                lsn=lsn,
            )
        remaining = command.deadline - self._clock()
        loop = asyncio.get_running_loop()
        if remaining <= 0:
            self._expire_repl(command)
            return PARKED
        command.timer = loop.call_later(
            remaining, self._expire_repl, command
        )
        return PARKED

    def _expire_repl(self, command: Command) -> None:
        """Replication-ack deadline: the outcome is *indeterminate*.

        The commit happened and is durable on this node; only the
        replication guarantee is unmet.  The client is told exactly
        that — ``TIMEOUT`` with ``indeterminate: true`` — so it must
        not assume the commit was lost (after a failover it may well
        survive)."""
        if command.parked_on is None:
            return
        txn = command.parked_on
        self._unpark(command)
        self._count("server.timeouts")
        self._count("server.repl.indeterminate")
        self._resolve(
            command,
            error_response(
                command.request_id,
                ErrorCode.TIMEOUT,
                f"commit of {txn} is durable locally but the "
                "replication ack did not arrive in time",
                indeterminate=True,
                commit_lsn=command.repl_lsn,
            ),
        )

    def on_replicated(self, lsn: int) -> None:
        """Hub callback: follower acks cover everything up to ``lsn``."""
        for txn, command in list(self._repl_waiters.items()):
            if self._repl_waiters.get(txn) is not command:
                continue
            if command.repl_lsn is not None and command.repl_lsn <= lsn:
                self._unpark(command)
                self._resolve(
                    command,
                    ok_response(
                        command.request_id,
                        outcome="committed",
                        replicated_lsn=lsn,
                        commit_lsn=command.repl_lsn,
                    ),
                )

    def _unpark(self, command: Command) -> None:
        if command.parked_on is None:
            return
        self._lock_waiters.pop(command.parked_on, None)
        self._commit_waiters.pop(command.parked_on, None)
        self._repl_waiters.pop(command.parked_on, None)
        command.parked_on = None
        if command.timer is not None:
            command.timer.cancel()
            command.timer = None
        self._gauge_set("server.park.depth", self.parked_count)
        self._observe(
            "server.park.wait", self._clock() - command.parked_at
        )
        if command.wait_span is not None:
            self._tracer.end(command.wait_span)
            command.wait_span = None

    def _expire(self, command: Command) -> None:
        """Deadline callback for a parked command.

        The underlying lock request stays queued with the manager (the
        protocol tolerates that — a later grant just means the lock is
        held); the *client* is released with ``TIMEOUT`` and should
        abort or retry.
        """
        if command.parked_on is None:
            return
        what = (
            f"write on {command.blocked_entity}"
            if command.blocked_entity
            else "partial-order predecessors"
        )
        self._unpark(command)
        self._count("server.timeouts")
        self._resolve(
            command,
            error_response(
                command.request_id,
                ErrorCode.TIMEOUT,
                f"{command.op} timed out waiting on {what}",
            ),
        )

    def _apply_side_effects(self, step: StepResult) -> None:
        """Propagate one step's aborted/unblocked lists to parked
        commands and owning sessions (runs inside the dispatcher
        iteration — the single-threaded invariant holds)."""
        if step.aborted:
            self._after_abort(step.aborted)
            return  # _after_abort already resumes waiters + ripeness
        for name in step.unblocked:
            self._resume_lock_waiter(name)
        self._check_commit_waiters()

    def _end_txn_span(self, name: str, **attrs: Any) -> None:
        span = self._txn_spans.pop(name, None)
        if span is not None:
            self._tracer.end(span, **attrs)

    def _after_abort(
        self,
        cascade: list[str],
        notify_exclude: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        if cascade:
            self._observe("server.abort.cascade", len(cascade))
        for name in cascade:
            self._end_txn_span(name, outcome="aborted")
            for store in (
                self._lock_waiters,
                self._commit_waiters,
                self._repl_waiters,
            ):
                command = store.get(name)
                if command is None:
                    continue
                self._unpark(command)
                self._resolve(
                    command,
                    error_response(
                        command.request_id,
                        ErrorCode.ABORTED,
                        f"transaction {name} aborted: "
                        f"{self._abort_reason(name)}",
                    ),
                )
            session = self._owners.get(name)
            if (
                session is not None
                and not session.closed
                and name not in notify_exclude
            ):
                session.notify(
                    event_frame(
                        "abort",
                        txn=name,
                        reason=self._abort_reason(name),
                    )
                )
                self._count("server.notifications")
        # An abort releases W locks and expunges versions, which can
        # unblock any parked reader — the manager does not report those
        # grants, so re-run every lock waiter (they re-park if still
        # blocked, keeping their original deadline).
        self._resume_all_lock_waiters()
        self._check_commit_waiters()

    def _abort_reason(self, name: str) -> str:
        # The record carries its abort reason; the previous backwards
        # scan of the whole event log was O(events) per cascade victim.
        try:
            record = self._tm.record(name)
        except ProtocolError:
            return "aborted"
        return record.abort_reason or "aborted"

    def _resume_lock_waiter(self, name: str) -> None:
        command = self._lock_waiters.get(name)
        if command is None:
            return
        self._unpark(command)
        self._run_command(command)

    def _resume_all_lock_waiters(self) -> None:
        """Re-run every lock-parked command — each at most once.

        Running a resumed command can recurse back here (its step may
        abort other transactions, and ``_after_abort`` resumes waiters
        again), so a naive iteration over a snapshot double-executes
        commands the recursion already ran: the second ``_run_command``
        re-issues the manager call — a duplicate write/validate — after
        the client already got its one reply.  Found by the fuzzer's
        write-multiplicity oracle.  Each snapshot entry is therefore
        revalidated against the live wait map and the command's park
        epoch: an entry that was resumed (gone), resumed-and-reparked
        (epoch moved on), or answered (future done) is skipped.
        """
        snapshot = [
            (txn, command, command.park_epoch)
            for txn, command in self._lock_waiters.items()
        ]
        for txn, command, epoch in snapshot:
            if self._lock_waiters.get(txn) is not command:
                continue  # a recursive resume already handled it
            if command.park_epoch != epoch or command.future.done():
                continue
            self._unpark(command)
            self._run_command(command)

    def _check_commit_waiters(self) -> None:
        """Resume commit-parked commands whose predecessors resolved."""
        for name, command in list(self._commit_waiters.items()):
            if name not in self._commit_waiters:
                continue  # resolved by a recursive resume
            ok, reason = self._tm.can_commit(name)
            if ok or "predecessor" not in (reason or ""):
                self._unpark(command)
                self._run_command(command)

    # -- session lifecycle ---------------------------------------------------

    async def close_session(self, session: SessionState) -> None:
        """Tear down a disconnected session: abort its live work.

        Aborts cascade through the manager as usual, so transactions in
        *other* sessions that read this session's versions are aborted
        and notified — the "killed client mid-transaction" path.
        """
        session.closed = True
        live = [
            name
            for name in sorted(session.owned)
            if not self._tm.record(name).terminated
        ]
        for name in live:
            if self._tm.record(name).terminated:
                continue  # an earlier cascade got it
            await self.submit_internal(
                session,
                "abort",
                {"txn": name, "reason": "session disconnected"},
            )
