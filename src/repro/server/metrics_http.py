"""A minimal HTTP/1.1 listener exposing the live metrics registry.

Stdlib-only (asyncio streams — no web framework), serving three
read-only endpoints off the server's event loop:

* ``GET /metrics`` — the :class:`MetricsRegistry` in Prometheus text
  exposition format (:func:`repro.obs.prom.render_prometheus`);
* ``GET /stats`` — the same registry as a JSON snapshot, plus live
  queue/park depths from the dispatcher;
* ``GET /healthz`` — ``200 ok`` while the server accepts requests,
  ``503 draining`` once shutdown has begun.

The handler reads one request, answers, and closes (``Connection:
close``) — scrapes are seconds apart, keep-alive buys nothing and a
connection-per-scrape keeps the accept loop trivial.  Anything that is
not a ``GET`` of a known path gets 404/405; a malformed request line
gets 400.  The listener never touches the transaction manager, so a
scrape can never stall the dispatcher.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Callable

from ..obs.metrics import MetricsRegistry
from ..obs.prom import render_prometheus

if TYPE_CHECKING:  # pragma: no cover — typing only
    from .session import CommandDispatcher

_MAX_REQUEST_BYTES = 8192


class MetricsHTTPServer:
    """Serve ``/metrics``, ``/stats`` and ``/healthz`` over HTTP."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        dispatcher: "CommandDispatcher | None" = None,
        draining: Callable[[], bool] | None = None,
        health: "Callable[[], dict] | None" = None,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._dispatcher = dispatcher
        self._draining = draining if draining is not None else lambda: False
        #: Optional role/lag payload (replicated servers): switches
        #: ``/healthz`` to a JSON body.  ``None`` keeps the legacy
        #: plain-text ``ok``/``draining`` contract.
        self._health = health
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        assert self._server is not None, "metrics listener not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                raise ValueError("request line too long")
            # Drain (and ignore) the headers up to the blank line.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                if len(header) > _MAX_REQUEST_BYTES:
                    raise ValueError("header too long")
            status, content_type, body = self._route(request_line)
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, ValueError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — already torn down
                pass

    def _route(self, request_line: bytes) -> tuple[str, str, str]:
        try:
            method, target, _version = (
                request_line.decode("ascii", "replace").split()
            )
        except ValueError:
            return "400 Bad Request", "text/plain", "bad request\n"
        path = target.split("?", 1)[0]
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", "GET only\n"
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(self._registry),
            )
        if path == "/stats":
            snapshot = self._registry.snapshot()
            if self._dispatcher is not None:
                snapshot["queue_depth"] = self._dispatcher.queue_depth
                snapshot["parked"] = self._dispatcher.parked_count
            return (
                "200 OK",
                "application/json",
                json.dumps(snapshot, sort_keys=True) + "\n",
            )
        if path == "/healthz":
            if self._health is not None:
                payload = dict(self._health())
                payload["draining"] = self._draining()
                status = (
                    "503 Service Unavailable"
                    if payload["draining"]
                    else "200 OK"
                )
                return (
                    status,
                    "application/json",
                    json.dumps(payload, sort_keys=True) + "\n",
                )
            if self._draining():
                return "503 Service Unavailable", "text/plain", "draining\n"
            return "200 OK", "text/plain", "ok\n"
        return "404 Not Found", "text/plain", f"no route {path}\n"
