"""The one wall-clock source the server stack shares.

The dispatcher stamps enqueue/dequeue times, the WAL arms its
group-commit deadline, and the load generator measures request
latency.  When those components read *different* clocks (an earlier
loadgen used ``time.perf_counter`` against the server's
``time.monotonic``), cross-layer latency attribution can skew: the two
clocks have unrelated epochs and may tick at (very slightly) different
rates, so "queue wait" measured on one clock cannot be subtracted from
"request latency" measured on the other.

Everything that measures elapsed wall time on the live path must
import :data:`CLOCK` from here.  Harnesses (the fuzzer's virtual
event loop) still inject their own clock explicitly — the default is
what is unified, and ``tests/server/test_clock.py`` pins it.
"""

from __future__ import annotations

import time

#: Monotonic, not subject to NTP steps, same epoch for every consumer
#: in this process — the only clock the live server stack reads.
CLOCK = time.monotonic
