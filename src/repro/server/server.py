"""The asyncio JSON-lines TCP transaction server.

:class:`TransactionServer` binds the wire protocol
(:mod:`repro.server.protocol`) to the command dispatcher
(:mod:`repro.server.session`): one reader loop per connection decodes
frames and submits them, one writer task per connection drains an
outbound queue (responses *and* unsolicited events), and exactly one
dispatcher task touches the transaction manager.

Robustness properties (exercised by ``tests/server/test_faults.py``):

* **malformed frames** are answered with a ``MALFORMED`` error and
  counted; after ``max_malformed`` bad frames the connection is closed
  (an oversized frame closes immediately — the stream cannot be
  resynchronised);
* **per-session idle timeout** — a connection that sends nothing for
  ``session_timeout`` seconds is torn down like a disconnect;
* **per-request timeout** — enforced by the dispatcher whether the
  command is still queued or parked on a blocked protocol step;
* **backpressure** — a full command queue answers ``BUSY`` instantly;
  a session whose outbound queue overflows drops notifications (never
  blocks the dispatcher on a slow reader);
* **disconnect cleanup** — a dropped connection's live transactions
  are aborted through the command queue; resulting cascades notify the
  surviving sessions that own affected transactions;
* **graceful drain** — :meth:`shutdown` stops accepting, lets queued
  work finish, aborts leftovers, sends every session a ``shutdown``
  event, and closes.

:class:`ServerThread` runs the whole stack on a background thread for
synchronous callers (the sync client's tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover — typing only
    from ..durability.recovery import RecoveryResult

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..protocol.scheduler import TransactionManager
from ..replication import (
    ROLE_FOLLOWER,
    ROLE_PRIMARY,
    FollowerApplier,
    FollowerLink,
    ReplicationContext,
    ReplicationHub,
    ReplicationListener,
    promote_in_place,
)
from ..storage.database import Database
from .clock import CLOCK
from .errors import ErrorCode, MalformedFrame
from .metrics_http import MetricsHTTPServer
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_response,
    event_frame,
    parse_request,
)
from .router import ShardRouter
from .session import CommandDispatcher, SessionState

_CLOSE = object()


def _parse_hostport(text: str) -> "tuple[str, int]":
    """Parse ``host:port`` (host defaults to 127.0.0.1 if omitted)."""
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {text!r}: expected host:port"
        ) from None
    return (host or "127.0.0.1", port)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables; the defaults suit tests and local load generation.

    Setting ``wal_dir`` turns on durability: the server recovers the
    directory (or initializes it) through
    :class:`~repro.durability.DurableTransactionManager` and refuses to
    start when recovery verification fails.  ``flush_interval`` is the
    group-commit window (``<= 0`` = fsync on every commit);
    ``checkpoint_every`` counts WAL records between checkpoints.
    ``strict`` runs the §5 manager in strict mode (ST histories; reads
    and writes may block until the writer commits).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the server
    #: ``None`` = no HTTP listener; ``0`` = ephemeral port (read it off
    #: :attr:`TransactionServer.metrics_port` once started).
    metrics_port: int | None = None
    queue_size: int = 256
    request_timeout: float = 5.0
    session_timeout: float = 300.0
    max_malformed: int = 8
    drain_grace: float = 2.0
    outbound_queue: int = 1024
    wal_dir: str | None = None
    flush_interval: float = 0.005
    checkpoint_every: int = 512
    retain: int = 3
    strict: bool = False
    #: Max commands one dispatch cycle drains from the queue (see
    #: :meth:`CommandDispatcher.run`); 1 = the old command-at-a-time
    #: behaviour.
    batch_size: int = 32
    #: Size-based WAL segment rolling (0 = roll only at checkpoints).
    segment_bytes: int = 0
    #: Primary: port for the replication listener (``None`` = no
    #: replication; ``0`` = ephemeral, read it off ``repl_port``).
    repl_port: int | None = None
    #: Primary: withhold commit replies until this many followers have
    #: fsynced past the commit LSN (0 = async replication).
    sync_replicas: int = 0
    #: Follower: ``host:port`` of the primary's replication listener.
    #: Setting this makes the node a follower — it redirects every
    #: mutating op and serves ``follower_read``s off replicated state.
    follow_of: str | None = None
    #: Partition the entity space across this many independent
    #: single-threaded shard stacks (dispatcher + manager + WAL
    #: directory ``<wal_dir>/shard{i}``) behind a
    #: :class:`~repro.server.router.ShardRouter`.  ``1`` (the default)
    #: runs the classic single-dispatcher stack, byte-compatible with
    #: every earlier WAL.  Mutually exclusive with replication.
    shards: int = 1


@dataclass
class _Connection:
    session: SessionState
    writer: asyncio.StreamWriter
    out_queue: "asyncio.Queue[Any]"
    writer_task: asyncio.Task | None = None
    malformed: int = 0
    pending: set = field(default_factory=set)


class TransactionServer:
    """Serve the §5 transaction lifecycle over JSON-lines TCP."""

    def __init__(
        self,
        database: Database,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        *,
        manager: TransactionManager | None = None,
        shard_managers: "list[TransactionManager] | None" = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        """``manager``, ``shard_managers`` and ``clock`` exist for
        harnesses (the fuzzer) that pre-build manager stacks (e.g. with
        crash points armed) and drive the server on a virtual clock;
        normal servers leave all three unset and the config decides."""
        self._config = config or ServerConfig()
        self._registry = registry or MetricsRegistry()
        self.recovery: "RecoveryResult | None" = None
        self.replication: ReplicationContext | None = None
        self._repl_listener: ReplicationListener | None = None
        self._link_task: asyncio.Task | None = None
        self._takeover_server: asyncio.AbstractServer | None = None
        if self._config.shards < 1:
            raise ValueError("shards must be >= 1")
        self._sharded = self._config.shards > 1
        #: Per-shard recovery results / in-doubt 2PC resolutions
        #: (sharded durable startup only).
        self.shard_recoveries: "dict[int, RecoveryResult]" = {}
        self.shard_resolutions: list[dict[str, Any]] = []
        if self._sharded:
            if manager is not None:
                raise ValueError(
                    "a pre-built manager is incompatible with shards > 1"
                )
            if self._config.follow_of or self._config.repl_port is not None:
                raise ValueError(
                    "replication (follow_of / repl_port) and sharding "
                    "are mutually exclusive"
                )
            if shard_managers is not None:
                if len(shard_managers) != self._config.shards:
                    raise ValueError(
                        f"shard_managers has {len(shard_managers)} "
                        f"entries for {self._config.shards} shards"
                    )
                self._managers = list(shard_managers)
            else:
                self._managers = self._open_shard_managers(
                    database, tracer
                )
            self._manager = self._managers[0]
        elif shard_managers is not None:
            raise ValueError("shard_managers requires shards > 1")
        elif manager is not None:
            self._manager = manager
        elif self._config.follow_of:
            # Follower: the WAL dir belongs to the applier (replicated
            # history), never to a DurableTransactionManager — the
            # dispatcher gets a plain in-memory manager whose mutating
            # ops are redirected anyway.
            if not self._config.wal_dir:
                raise ValueError(
                    "follow_of requires wal_dir for replicated history"
                )
            self._manager = TransactionManager(
                database,
                tracer=tracer,
                registry=self._registry,
                strict=self._config.strict,
            )
            host, port = _parse_hostport(self._config.follow_of)
            applier = FollowerApplier(
                self._config.wal_dir,
                segment_bytes=self._config.segment_bytes,
                retain=self._config.retain,
                registry=self._registry,
                tracer=tracer,
                clock=clock if clock is not None else CLOCK,
            )
            link = FollowerLink(
                applier,
                host,
                port,
                node=str(self._config.wal_dir),
            )
            self.replication = ReplicationContext(
                ROLE_FOLLOWER,
                applier=applier,
                link=link,
                primary_host=host,
                primary_port=port,
            )
            self.replication.promote = self.promote_now
        elif self._config.wal_dir:
            from ..durability import DurableTransactionManager

            self._manager, self.recovery = DurableTransactionManager.open(
                self._config.wal_dir,
                lambda: database,
                flush_interval=self._config.flush_interval,
                checkpoint_every=self._config.checkpoint_every,
                segment_bytes=self._config.segment_bytes,
                retain=self._config.retain,
                tracer=tracer,
                registry=self._registry,
                strict=self._config.strict,
            )
        else:
            self._manager = TransactionManager(
                database,
                tracer=tracer,
                registry=self._registry,
                strict=self._config.strict,
            )
        self._tracer = tracer
        if self._sharded:
            shard_dispatchers = [
                CommandDispatcher(
                    shard_manager,
                    registry=self._registry,
                    tracer=tracer,
                    queue_size=self._config.queue_size,
                    request_timeout=self._config.request_timeout,
                    clock=clock if clock is not None else CLOCK,
                    batch_size=self._config.batch_size,
                    shard=index,
                    shards_total=self._config.shards,
                )
                for index, shard_manager in enumerate(self._managers)
            ]
            self._dispatcher: "CommandDispatcher | ShardRouter" = (
                ShardRouter(shard_dispatchers, registry=self._registry)
            )
        else:
            self._managers = [self._manager]
            self._dispatcher = CommandDispatcher(
                self._manager,
                registry=self._registry,
                tracer=tracer,
                queue_size=self._config.queue_size,
                request_timeout=self._config.request_timeout,
                clock=clock if clock is not None else CLOCK,
                batch_size=self._config.batch_size,
            )
        if (
            self.replication is None
            and self._config.repl_port is not None
        ):
            hub = ReplicationHub(
                self._manager,  # raises unless WAL-backed
                sync_replicas=self._config.sync_replicas,
                registry=self._registry,
                tracer=tracer,
                clock=clock if clock is not None else CLOCK,
            )
            hub.on_replicated = self._dispatcher.on_replicated
            self.replication = ReplicationContext(ROLE_PRIMARY, hub=hub)
        self._dispatcher.replication = self.replication
        self._metrics_http: MetricsHTTPServer | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher_task: asyncio.Task | None = None
        self._flush_task: asyncio.Task | None = None
        self._connections: dict[int, _Connection] = {}
        self._session_ids = itertools.count(1)
        self._stopping = False
        self._drain_summary: dict[str, Any] = {}

    def _open_shard_managers(
        self, database: Database, tracer: Tracer | None
    ) -> list[TransactionManager]:
        """One full manager stack per shard.

        Every shard holds the complete schema (partitioning governs
        which shard *writes* an entity, not where it is stored), its
        manager roots the transaction tree at ``sh{index}`` so branch
        names are self-routing, and — when durable — its WAL lives in
        ``<wal_dir>/shard{index}``.  In-doubt 2PC branches from a
        previous crash are resolved against the coordinator shard's
        log *before* any shard recovers (see
        :func:`~repro.durability.shard_recovery.resolve_in_doubt`).
        """
        managers: list[TransactionManager] = []
        if self._config.wal_dir:
            from ..durability import (
                DurableTransactionManager,
                resolve_in_doubt,
                shard_wal_dir,
            )

            self.shard_resolutions = resolve_in_doubt(
                self._config.wal_dir
            )
            for index in range(self._config.shards):
                shard_db = Database(
                    database.schema,
                    database.constraint,
                    database.initial_state,
                )
                shard_manager, recovery = DurableTransactionManager.open(
                    shard_wal_dir(self._config.wal_dir, index),
                    lambda db=shard_db: db,
                    flush_interval=self._config.flush_interval,
                    checkpoint_every=self._config.checkpoint_every,
                    segment_bytes=self._config.segment_bytes,
                    retain=self._config.retain,
                    tracer=tracer,
                    registry=self._registry,
                    strict=self._config.strict,
                    root_name=f"sh{index}",
                )
                if recovery is not None:
                    self.shard_recoveries[index] = recovery
                managers.append(shard_manager)
            return managers
        for index in range(self._config.shards):
            managers.append(
                TransactionManager(
                    Database(
                        database.schema,
                        database.constraint,
                        database.initial_state,
                    ),
                    tracer=tracer,
                    registry=self._registry,
                    strict=self._config.strict,
                    root_name=f"sh{index}",
                )
            )
        return managers

    # -- accessors -----------------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def tracer(self) -> Tracer | None:
        return self._tracer

    @property
    def manager(self) -> TransactionManager:
        return self._manager

    @property
    def dispatcher(self) -> CommandDispatcher:
        return self._dispatcher

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        """Bound port of the HTTP listener (``None`` when disabled)."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.port

    @property
    def repl_port(self) -> int | None:
        """Bound port of the replication listener (``None`` if off)."""
        if self._repl_listener is None:
            return None
        return self._repl_listener.port

    @property
    def address(self) -> tuple[str, int]:
        return (self._config.host, self.port)

    # -- failover ------------------------------------------------------------

    def promote_now(self, listen_port: int | None = None) -> "dict[str, Any]":
        """Promote this follower to primary, in place and synchronously.

        Runs inside a dispatcher iteration (the ``promote`` op), so the
        manager swap is atomic with respect to every other command:
        stop the link, run the stock ``recover --verify`` gate over the
        replicated directory, swap the recovered durable manager into
        the dispatcher, and flip the role.  With ``listen_port`` the
        promoted node additionally binds the dead primary's client
        port (its own listener stays up).
        """
        context = self.replication
        if context is None or not context.is_follower:
            raise RuntimeError("promote_now on a non-follower")
        started = CLOCK()
        if context.link is not None:
            context.link.stop()
        if self._link_task is not None:
            self._link_task.cancel()
            self._link_task = None
        applier = context.applier
        assert applier is not None
        applier.close()
        manager, recovery = promote_in_place(
            self._config.wal_dir,
            flush_interval=self._config.flush_interval,
            checkpoint_every=self._config.checkpoint_every,
            segment_bytes=self._config.segment_bytes,
            retain=self._config.retain,
            registry=self._registry,
            tracer=self._tracer,
            strict=self._config.strict,
        )
        self._manager = manager
        self._dispatcher.replace_manager(manager)
        self.recovery = recovery
        new_context = ReplicationContext(ROLE_PRIMARY)
        new_context.promote = self.promote_now
        self.replication = new_context
        self._dispatcher.replication = new_context
        if listen_port is not None:
            asyncio.ensure_future(self._take_over_port(listen_port))
        report = {
            "role": ROLE_PRIMARY,
            "promoted_from_lsn": applier.applied_lsn,
            "promote_ms": round((CLOCK() - started) * 1000.0, 3),
            "recovery": recovery.summary(),
            "committed": sorted(recovery.committed),
            "listen_port": listen_port,
        }
        self._registry.counter("repl.promotions").inc()
        return report

    async def _take_over_port(self, port: int) -> None:
        """Bind the dead primary's client port on the promoted node."""
        try:
            self._takeover_server = await asyncio.start_server(
                self._handle_connection,
                self._config.host,
                port,
                limit=MAX_FRAME_BYTES + 2,
            )
        except OSError:
            self._registry.counter("repl.takeover_failed").inc()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._dispatcher_task = asyncio.create_task(
            self._dispatcher.run(), name="repro-dispatcher"
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._config.host,
            self._config.port,
            limit=MAX_FRAME_BYTES + 2,
        )
        if self._config.metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self._registry,
                host=self._config.host,
                port=self._config.metrics_port,
                dispatcher=self._dispatcher,
                draining=lambda: self._stopping,
                health=(
                    self._health
                    if self.replication is not None
                    else None
                ),
            )
            await self._metrics_http.start()
        if self.replication is not None:
            context = self.replication
            if context.hub is not None:
                self._repl_listener = ReplicationListener(
                    context.hub,
                    host=self._config.host,
                    port=self._config.repl_port or 0,
                )
                await self._repl_listener.start()
            if context.link is not None:
                self._link_task = asyncio.create_task(
                    context.link.run(), name="repro-follower-link"
                )
        if self._config.wal_dir and self._config.flush_interval > 0:
            # Started for followers too: their plain manager has no
            # ``maybe_flush`` (each tick is a no-op) but a promotion
            # swaps in a durable manager that needs group-commit
            # driving, so the loop re-resolves the hook every tick.
            self._flush_task = asyncio.create_task(
                self._flush_loop(), name="repro-wal-flush"
            )

    async def _flush_loop(self) -> None:
        """Drive the WAL's group-commit deadline.

        ``maybe_flush`` is synchronous and the event loop is
        single-threaded, so this never interleaves with a dispatcher
        iteration mid-append.  The hook is looked up per tick because
        promotion replaces the manager mid-flight.
        """
        interval = max(self._config.flush_interval / 2, 0.001)
        while True:
            await asyncio.sleep(interval)
            for shard_manager in self._managers:
                flush = getattr(shard_manager, "maybe_flush", None)
                if flush is not None:
                    flush()

    def _health(self) -> "dict[str, Any]":
        context = self.replication
        if context is None:
            return {"role": "standalone"}
        return context.health()

    async def serve_until(self, stop: asyncio.Event) -> "dict[str, Any]":
        """Start, run until ``stop`` is set, then drain and shut down."""
        await self.start()
        await stop.wait()
        return await self.shutdown()

    async def shutdown(self) -> "dict[str, Any]":
        """Graceful drain: see the module docstring for the order.

        Returns a drain summary — forcibly aborted transactions,
        requests failed while parked, and notifications dropped on
        slow readers over the server's lifetime — so operators see
        what the drain could not finish cleanly.
        """
        if self._stopping:
            return dict(self._drain_summary)
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_http is not None:
            await self._metrics_http.close()
        if self._takeover_server is not None:
            self._takeover_server.close()
            await self._takeover_server.wait_closed()
        if self._repl_listener is not None:
            await self._repl_listener.close()
        if self.replication is not None and self.replication.link is not None:
            self.replication.link.stop()
        if self._link_task is not None:
            self._link_task.cancel()
            try:
                await self._link_task
            except asyncio.CancelledError:
                pass
        drained = await self._dispatcher.drain(self._config.drain_grace)
        for connection in list(self._connections.values()):
            self._send(connection, event_frame("shutdown"))
            self._send(connection, _CLOSE)
        await self._dispatcher.stop()
        if self._dispatcher_task is not None:
            await self._dispatcher_task
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
        for shard_manager in self._managers:
            close = getattr(shard_manager, "close", None)
            if close is not None:
                # Durable manager: final checkpoint + flush, clean WAL.
                close()
        if self.replication is not None:
            if self.replication.hub is not None:
                self.replication.hub.close()
            if self.replication.applier is not None:
                self.replication.applier.close()
        for connection in list(self._connections.values()):
            if connection.writer_task is not None:
                try:
                    await asyncio.wait_for(connection.writer_task, 1.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    connection.writer_task.cancel()
        self._drain_summary = {
            "aborted": list(drained["aborted"]),
            "parked_failed": drained["parked_failed"],
            "notifications_dropped": int(
                self._registry.counter(
                    "server.notifications_dropped"
                ).value
            ),
        }
        return dict(self._drain_summary)

    # -- per-connection plumbing ---------------------------------------------

    def _send(self, connection: _Connection, payload: Any) -> None:
        """Queue an outbound frame; never blocks the caller.

        A slow reader whose outbound queue is full loses notifications
        (counted) rather than stalling the dispatcher.
        """
        try:
            connection.out_queue.put_nowait(payload)
        except asyncio.QueueFull:
            self._registry.counter("server.notifications_dropped").inc()

    async def _writer_loop(self, connection: _Connection) -> None:
        try:
            while True:
                payload = await connection.out_queue.get()
                if payload is _CLOSE:
                    break
                connection.writer.write(encode_frame(payload))
                await connection.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                connection.writer.close()
            except Exception:  # noqa: BLE001 — already torn down
                pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_id = next(self._session_ids)
        out_queue: "asyncio.Queue[Any]" = asyncio.Queue(
            maxsize=self._config.outbound_queue
        )
        connection = _Connection(
            session=SessionState(
                session_id=session_id,
                notify=lambda payload: self._send(
                    self._connections[session_id], payload
                )
                if session_id in self._connections
                else None,
                peer=str(writer.get_extra_info("peername", "")),
            ),
            writer=writer,
            out_queue=out_queue,
        )
        self._connections[session_id] = connection
        connection.writer_task = asyncio.create_task(
            self._writer_loop(connection),
            name=f"repro-writer-{session_id}",
        )
        self._registry.gauge("server.sessions").inc()
        try:
            await self._read_loop(connection, reader)
        finally:
            self._registry.gauge("server.sessions").dec()
            self._connections.pop(session_id, None)
            await self._dispatcher.close_session(connection.session)
            self._send(connection, _CLOSE)

    async def _read_loop(
        self, connection: _Connection, reader: asyncio.StreamReader
    ) -> None:
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), self._config.session_timeout
                )
            except asyncio.TimeoutError:
                self._registry.counter("server.idle_closed").inc()
                return
            except ValueError:
                # Oversized frame: the stream cannot be resynchronised.
                self._registry.counter("server.malformed").inc()
                self._send(
                    connection,
                    error_response(
                        None,
                        ErrorCode.MALFORMED,
                        f"frame exceeds {MAX_FRAME_BYTES} bytes",
                    ),
                )
                return
            except ConnectionError:
                return
            if not line:
                return  # EOF
            if not line.strip():
                continue  # blank keep-alive line
            if not self._handle_frame(connection, line):
                return

    def _handle_frame(
        self, connection: _Connection, line: bytes
    ) -> bool:
        """Process one frame; returns False to close the connection."""
        try:
            frame = decode_frame(line)
            request = parse_request(frame)
        except MalformedFrame as error:
            connection.malformed += 1
            self._registry.counter("server.malformed").inc()
            request_id = self._recover_id(line)
            self._send(
                connection,
                error_response(
                    request_id, ErrorCode.MALFORMED, str(error)
                ),
            )
            return connection.malformed < self._config.max_malformed
        outcome = self._dispatcher.submit(connection.session, request)
        if isinstance(outcome, dict):
            self._send(connection, outcome)
            return True
        connection.pending.add(outcome)

        def _deliver(future: "asyncio.Future[dict]") -> None:
            connection.pending.discard(future)
            if future.cancelled():
                return
            self._send(connection, future.result())

        outcome.add_done_callback(_deliver)
        return True

    @staticmethod
    def _recover_id(line: bytes) -> int | None:
        """Best-effort request id for a malformed frame's response."""
        try:
            frame = json.loads(line.decode("utf-8", "replace"))
        except json.JSONDecodeError:
            return None
        if not isinstance(frame, dict):
            return None
        request_id = frame.get("id")
        if isinstance(request_id, bool) or not isinstance(
            request_id, int
        ):
            return None
        return request_id if request_id >= 0 else None


class ServerThread:
    """Run a :class:`TransactionServer` on a background event loop.

    For synchronous callers — the sync client, benchmarks, and the CI
    smoke test.  Use as a context manager::

        with ServerThread(lambda: make_database()) as handle:
            client = Client.connect("127.0.0.1", handle.port)
    """

    def __init__(
        self,
        database_factory: Callable[[], Database],
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._database_factory = database_factory
        self._config = config or ServerConfig()
        self._registry = registry
        self._tracer = tracer
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self.port: int | None = None
        self.server: TransactionServer | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.server = TransactionServer(
                self._database_factory(),
                config=self._config,
                registry=self._registry,
                tracer=self._tracer,
            )
            await self.server.start()
            self.port = self.server.port
        except BaseException as error:  # noqa: BLE001 — reported to caller
            self._error = error
            self._ready.set()
            return  # start() re-raises; don't also crash the thread
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error}"
            ) from self._error
        if self.port is None:
            raise RuntimeError("server did not come up within 10s")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal shutdown and join the loop thread.

        Raises :class:`RuntimeError` when the thread is still alive
        after ``timeout`` — a wedged event loop (a callback stuck in
        blocking code, a drain that cannot finish).  Silently returning
        here used to leave a live daemon thread holding the port and
        the WAL directory behind a caller who believed the server was
        gone.
        """
        if self._thread is None:
            return  # already stopped
        if (
            self._loop is not None
            and self._stop is not None
            and not self._loop.is_closed()
        ):
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"server thread did not stop within {timeout:g}s: "
                    "the event loop is wedged (a callback is blocking "
                    "or the drain cannot complete); the daemon thread "
                    "is still running and its port and WAL directory "
                    "remain in use"
                )
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
