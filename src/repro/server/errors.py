"""Typed wire-protocol error codes and client-side exceptions.

Every failed request carries one of the :class:`ErrorCode` values so
clients can react programmatically instead of parsing messages.  The
codes split into three families:

* **framing** — ``MALFORMED`` (bad JSON, bad shape, oversized frame)
  and ``UNKNOWN_OP``: the request never reached the manager;
* **admission** — ``BUSY`` (command queue full: backpressure, retry
  later), ``TIMEOUT`` (request deadline passed while queued or while
  parked on a blocked protocol step), ``SHUTTING_DOWN`` (server is
  draining), ``CONFLICT`` (another request is already parked on the
  same transaction);
* **protocol** — ``NOT_OWNER`` / ``UNKNOWN_TXN`` (session-layer
  ownership), ``INVALID_ARG`` (bad parameter or unparseable
  predicate), ``PROTOCOL`` (the manager rejected an illegal step),
  ``ABORTED`` (the transaction was aborted under the request — e.g. a
  cascading abort while the request was parked), ``INTERNAL`` (a bug;
  loadgen counts these as wire-protocol errors).

The client library raises :class:`ServerError` subclasses keyed on the
code (:func:`error_for_code`).
"""

from __future__ import annotations

import enum
from typing import Any

from ..errors import ReproError


class ErrorCode(enum.Enum):
    """Every error a response frame can carry."""

    MALFORMED = "MALFORMED"
    UNKNOWN_OP = "UNKNOWN_OP"
    BUSY = "BUSY"
    TIMEOUT = "TIMEOUT"
    SHUTTING_DOWN = "SHUTTING_DOWN"
    CONFLICT = "CONFLICT"
    NOT_OWNER = "NOT_OWNER"
    UNKNOWN_TXN = "UNKNOWN_TXN"
    INVALID_ARG = "INVALID_ARG"
    PROTOCOL = "PROTOCOL"
    ABORTED = "ABORTED"
    INTERNAL = "INTERNAL"
    REDIRECT = "REDIRECT"
    FOLLOWER_READ = "FOLLOWER_READ"

    def __str__(self) -> str:
        return self.value


#: Codes that indicate a server/framing bug rather than an expected
#: application condition — a healthy client/server pair produces zero
#: of these (the loadgen's "wire-protocol errors" count).
WIRE_FAULT_CODES = frozenset(
    {ErrorCode.MALFORMED, ErrorCode.UNKNOWN_OP, ErrorCode.INTERNAL}
)


def error_payload(
    code: ErrorCode, message: str, **details: Any
) -> dict[str, Any]:
    """The ``error`` object embedded in a failed response frame."""
    payload: dict[str, Any] = {"code": code.value, "message": message}
    if details:
        payload["details"] = details
    return payload


class ServerError(ReproError):
    """A request failed with a typed wire-protocol error."""

    code = ErrorCode.INTERNAL

    def __init__(
        self,
        message: str,
        code: ErrorCode | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.details = details or {}


class BusyError(ServerError):
    """The server's command queue is full — back off and retry."""

    code = ErrorCode.BUSY


class RequestTimeout(ServerError):
    """The request's deadline passed before the step completed."""

    code = ErrorCode.TIMEOUT


class ShuttingDown(ServerError):
    """The server is draining and admits no new requests."""

    code = ErrorCode.SHUTTING_DOWN


class NotOwner(ServerError):
    """The transaction belongs to another session."""

    code = ErrorCode.NOT_OWNER


class UnknownTransaction(ServerError):
    """The named transaction does not exist."""

    code = ErrorCode.UNKNOWN_TXN


class InvalidArgument(ServerError):
    """A request parameter is missing, mistyped, or unparseable."""

    code = ErrorCode.INVALID_ARG


class RemoteProtocolError(ServerError):
    """The manager rejected the step (illegal phase transition etc.)."""

    code = ErrorCode.PROTOCOL


class RemoteAborted(ServerError):
    """The transaction was aborted out from under the request."""

    code = ErrorCode.ABORTED


class MalformedFrame(ServerError):
    """The peer sent an undecodable or oversized frame."""

    code = ErrorCode.MALFORMED


class UnknownOperation(ServerError):
    """The request named an operation the server does not implement."""

    code = ErrorCode.UNKNOWN_OP


class ConflictingRequest(ServerError):
    """Another request is already parked on the same transaction."""

    code = ErrorCode.CONFLICT


class NotPrimary(ServerError):
    """The operation mutates state but this node is a follower.

    ``details`` carries the primary's last known address (``host``,
    ``port``) so the client can reconnect there.
    """

    code = ErrorCode.REDIRECT


class StaleRead(ServerError):
    """A follower read's staleness bound cannot currently be met.

    ``details`` carries the follower's ``applied_lsn`` and current
    ``lag_lsn`` so the client can retry, loosen its bound, or go to
    the primary.
    """

    code = ErrorCode.FOLLOWER_READ


_ERROR_CLASSES: dict[ErrorCode, type[ServerError]] = {
    ErrorCode.MALFORMED: MalformedFrame,
    ErrorCode.UNKNOWN_OP: UnknownOperation,
    ErrorCode.BUSY: BusyError,
    ErrorCode.TIMEOUT: RequestTimeout,
    ErrorCode.SHUTTING_DOWN: ShuttingDown,
    ErrorCode.CONFLICT: ConflictingRequest,
    ErrorCode.NOT_OWNER: NotOwner,
    ErrorCode.UNKNOWN_TXN: UnknownTransaction,
    ErrorCode.INVALID_ARG: InvalidArgument,
    ErrorCode.PROTOCOL: RemoteProtocolError,
    ErrorCode.ABORTED: RemoteAborted,
    ErrorCode.INTERNAL: ServerError,
    ErrorCode.REDIRECT: NotPrimary,
    ErrorCode.FOLLOWER_READ: StaleRead,
}


def error_for_code(
    code: str, message: str, details: dict[str, Any] | None = None
) -> ServerError:
    """Build the typed exception for an error payload's code string."""
    try:
        parsed = ErrorCode(code)
    except ValueError:
        return ServerError(
            f"{message} (unknown error code {code!r})",
            ErrorCode.INTERNAL,
            details,
        )
    return _ERROR_CLASSES[parsed](message, parsed, details)
