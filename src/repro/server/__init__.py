"""repro.server — a concurrent transaction service over the §5 manager.

The package turns the single-threaded Korth–Speegle
:class:`~repro.protocol.scheduler.TransactionManager` into a network
service without changing its concurrency model: every connection maps
to a session, every request becomes a command on **one** bounded queue,
and **one** dispatcher task replays commands against the manager.
Blocked protocol steps (lock waits, commits waiting on uncommitted
predecessors) park server-side and answer when granted, aborted, or
timed out.

Layering (each module documents its own contract):

* :mod:`repro.server.protocol` — JSON-lines framing, request/response
  shapes;
* :mod:`repro.server.errors` — typed error codes and the client-side
  exceptions they map to;
* :mod:`repro.server.session` — the command dispatcher (the only code
  that touches the manager) and its parking/timeout/notification
  machinery;
* :mod:`repro.server.router` — entity-hash shard routing and the
  cross-shard two-phase commit coordinator (``--shards N``);
* :mod:`repro.server.server` — asyncio TCP transport and lifecycle;
* :mod:`repro.server.client` — sync + asyncio client libraries;
* :mod:`repro.server.loadgen` — workload replay over N connections,
  producing ``BENCH_server.json``.
"""

from .client import AsyncClient, Client
from .errors import (
    WIRE_FAULT_CODES,
    BusyError,
    ConflictingRequest,
    ErrorCode,
    InvalidArgument,
    MalformedFrame,
    NotOwner,
    RemoteAborted,
    RemoteProtocolError,
    RequestTimeout,
    ServerError,
    ShuttingDown,
    UnknownOperation,
    UnknownTransaction,
)
from .loadgen import (
    WORKLOAD_KINDS,
    LoadgenReport,
    build_workload,
    run_loadgen,
)
from .metrics_http import MetricsHTTPServer
from .protocol import MAX_FRAME_BYTES, OPERATIONS
from .router import ShardRouter, affinity_key, shard_of
from .server import ServerConfig, ServerThread, TransactionServer
from .session import CommandDispatcher, SessionState

__all__ = [
    "AsyncClient",
    "BusyError",
    "Client",
    "CommandDispatcher",
    "ConflictingRequest",
    "ErrorCode",
    "InvalidArgument",
    "LoadgenReport",
    "MalformedFrame",
    "MAX_FRAME_BYTES",
    "MetricsHTTPServer",
    "NotOwner",
    "OPERATIONS",
    "RemoteAborted",
    "RemoteProtocolError",
    "RequestTimeout",
    "ServerConfig",
    "ServerError",
    "ServerThread",
    "SessionState",
    "ShardRouter",
    "ShuttingDown",
    "TransactionServer",
    "UnknownOperation",
    "UnknownTransaction",
    "WIRE_FAULT_CODES",
    "WORKLOAD_KINDS",
    "affinity_key",
    "build_workload",
    "run_loadgen",
    "shard_of",
]
