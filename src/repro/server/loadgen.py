"""Load generation: replay simulator workloads over live connections.

Where :mod:`repro.sim` drives :class:`TransactionScript` objects in
*virtual* time against an in-process scheduler, the loadgen replays the
same scripts over N concurrent client connections against a running
``repro serve`` instance — turning the paper's qualitative claims into
wall-clock numbers (throughput, request-latency percentiles, abort and
restart counts) written to ``BENCH_server.json``.

Script → wire mapping:

* the script's read set becomes the transaction's input constraint
  (one ``e >= 0`` conjunct per entity — trivially satisfiable but it
  *mentions* the entity, which is what the model requires of ``N_t``),
  its write set becomes the update set and output condition;
* ``Think`` steps sleep ``duration * think_scale`` seconds (0 by
  default: saturate the server);
* partial-order predecessors are declared at define time, so commits
  park server-side until the predecessor commits — cooperation edges
  exercise the commit-waiter path over the wire;
* an abort (cascade, failed validation, request timeout) restarts the
  script under a fresh transaction, up to ``max_restarts`` times, with
  jittered backoff — mirroring the simulator's restart policy;
* ``BUSY`` responses (server backpressure) back off and retry the
  same request.

The loadgen counts **wire faults** (``MALFORMED`` / ``UNKNOWN_OP`` /
``INTERNAL`` responses) separately from expected application outcomes;
a healthy run has zero, and the CLI exits non-zero otherwise (the CI
smoke test's assertion).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any

from ..obs.metrics import Histogram
from ..sim.workload import (
    KEY_DISTRIBUTIONS,
    Read,
    Think,
    TransactionScript,
    Unordered,
    Workload,
    Write,
    cad_workload,
    oltp_workload,
)
from .clock import CLOCK
from .client import AsyncClient
from .errors import (
    WIRE_FAULT_CODES,
    BusyError,
    ErrorCode,
    RemoteAborted,
    RemoteProtocolError,
    RequestTimeout,
    ServerError,
)

WORKLOAD_KINDS = ("cad", "oltp")


def build_workload(
    kind: str = "cad",
    transactions: int = 16,
    think: float = 0.0,
    seed: int = 0,
    key_dist: str = "uniform",
) -> Workload:
    """The workloads ``repro serve`` and ``repro loadgen`` share.

    Both commands must be given the same kind/seed/key-dist so the
    server's database schema matches the scripts' entities and replay
    draws the same access sequence.
    """
    if key_dist not in KEY_DISTRIBUTIONS:
        raise ValueError(
            f"unknown key distribution {key_dist!r} "
            f"(choose from {KEY_DISTRIBUTIONS})"
        )
    if kind == "cad":
        return cad_workload(
            num_designers=transactions,
            think_time=think,
            seed=seed,
            key_dist=key_dist,
        )
    if kind == "oltp":
        return oltp_workload(
            num_transactions=transactions, seed=seed, key_dist=key_dist
        )
    raise ValueError(
        f"unknown workload kind {kind!r} (choose from {WORKLOAD_KINDS})"
    )


@dataclass
class LoadgenReport:
    """Everything one loadgen run measured."""

    workload: str
    clients: int
    scripts: int
    key_dist: str = "uniform"
    wall_time: float = 0.0
    committed: int = 0
    aborted: int = 0  # transaction instances that ended aborted
    restarts: int = 0
    gave_up: int = 0
    disconnects: int = 0  # connections the server dropped mid-run
    requests: int = 0
    busy_retries: int = 0
    timeouts: int = 0
    aborted_by_server: int = 0
    abort_notifications: int = 0
    protocol_rejections: int = 0
    protocol_errors: int = 0  # wire faults; must be zero
    latency: Histogram = field(
        default_factory=lambda: Histogram("request_latency")
    )
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.committed / self.wall_time

    def to_json(self) -> dict[str, Any]:
        latency_ms = {
            key: round(value * 1000.0, 3)
            for key, value in self.latency.summary().items()
            if key != "count"
        }
        latency_ms["count"] = self.latency.count
        return {
            "benchmark": "server-loadgen",
            "workload": self.workload,
            "clients": self.clients,
            "scripts": self.scripts,
            "key_dist": self.key_dist,
            "wall_time_s": round(self.wall_time, 4),
            "committed": self.committed,
            "aborted_txns": self.aborted,
            "throughput_txn_per_s": round(self.throughput, 2),
            "restarts": self.restarts,
            "gave_up": self.gave_up,
            "disconnects": self.disconnects,
            "requests": self.requests,
            "request_latency_ms": latency_ms,
            "busy_retries": self.busy_retries,
            "timeouts": self.timeouts,
            "aborted_by_server": self.aborted_by_server,
            "abort_notifications": self.abort_notifications,
            "protocol_rejections": self.protocol_rejections,
            "protocol_errors": self.protocol_errors,
            "server": self.server_stats,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class _Runner:
    """Shared mutable state for one loadgen run."""

    def __init__(
        self,
        report: LoadgenReport,
        *,
        think_scale: float,
        max_restarts: int,
        backoff: float,
        seed: int,
    ) -> None:
        self.report = report
        self.think_scale = think_scale
        self.max_restarts = max_restarts
        self.backoff = backoff
        self.rng = random.Random(seed)
        # script txn_id -> current protocol transaction name
        self.names: dict[str, str] = {}

    # -- request plumbing ----------------------------------------------------

    async def request(
        self, client: AsyncClient, op: str, **params: Any
    ) -> dict[str, Any]:
        """One request with BUSY backoff-and-retry and latency capture."""
        # Latency is measured on the same monotonic clock the server
        # stamps queue-wait with (see repro.server.clock) so the two
        # distributions are directly comparable.
        while True:
            started = CLOCK()
            try:
                response = await client.request(op, **params)
            except BusyError:
                self.report.latency.observe(
                    CLOCK() - started
                )
                self.report.busy_retries += 1
                await asyncio.sleep(
                    self.backoff * (0.5 + self.rng.random())
                )
                continue
            except ServerError as error:
                self.report.latency.observe(
                    CLOCK() - started
                )
                self.report.requests += 1
                self._count_error(error)
                raise
            self.report.latency.observe(CLOCK() - started)
            self.report.requests += 1
            return response

    def _count_error(self, error: ServerError) -> None:
        if error.code in WIRE_FAULT_CODES:
            self.report.protocol_errors += 1
        elif error.code is ErrorCode.TIMEOUT:
            self.report.timeouts += 1
        elif error.code is ErrorCode.ABORTED:
            self.report.aborted_by_server += 1
        elif error.code is ErrorCode.PROTOCOL:
            self.report.protocol_rejections += 1

    # -- script execution ----------------------------------------------------

    async def define(
        self, client: AsyncClient, script: TransactionScript
    ) -> str:
        reads = sorted(script.read_entities)
        writes = sorted(script.write_entities)
        input_constraint = (
            " & ".join(f"{entity} >= 0" for entity in reads) or "true"
        )
        output_condition = (
            " & ".join(f"{entity} >= 0" for entity in writes) or "true"
        )
        predecessors = [
            self.names[base]
            for base in script.predecessors
            if base in self.names
        ]
        response = await self.request(
            client,
            "define",
            updates=writes,
            input=input_constraint,
            output=output_condition,
            predecessors=predecessors,
        )
        name = str(response["txn"])
        self.names[script.txn_id] = name
        return name

    async def _access(
        self,
        client: AsyncClient,
        txn: str,
        step: "Read | Write",
        values: dict[str, int],
    ) -> None:
        if isinstance(step, Read):
            response = await self.request(
                client, "read", txn=txn, entity=step.entity
            )
            values[step.entity] = int(response["value"])
            return
        value = step.resolve(values)
        if self.think_scale > 0 and step.duration > 0:
            await self.request(
                client, "begin_write", txn=txn, entity=step.entity
            )
            await asyncio.sleep(step.duration * self.think_scale)
            await self.request(
                client,
                "end_write",
                txn=txn,
                entity=step.entity,
                value=value,
            )
        else:
            await self.request(
                client, "write", txn=txn, entity=step.entity, value=value
            )

    async def attempt(
        self, client: AsyncClient, txn: str, script: TransactionScript
    ) -> bool:
        """One end-to-end run of a defined transaction; True = committed."""
        response = await self.request(client, "validate", txn=txn)
        if response.get("outcome") != "ok":
            return False
        values: dict[str, int] = {}
        for step in script.steps:
            if isinstance(step, Think):
                if self.think_scale > 0:
                    await asyncio.sleep(step.duration * self.think_scale)
            elif isinstance(step, (Read, Write)):
                await self._access(client, txn, step, values)
            elif isinstance(step, Unordered):
                for access in step.steps:
                    await self._access(client, txn, access, values)
        response = await self.request(client, "commit", txn=txn)
        if response.get("outcome") == "committed":
            return True
        # e.g. "output condition unsatisfied" — abort and restart.
        await self._quiet_abort(client, txn)
        return False

    async def _quiet_abort(self, client: AsyncClient, txn: str) -> None:
        try:
            await self.request(client, "abort", txn=txn)
        except ServerError:
            pass  # already terminated (cascade) — fine

    async def run_script(
        self,
        client: AsyncClient,
        script: TransactionScript,
        predefined: str | None,
    ) -> None:
        txn = predefined
        for attempt in range(self.max_restarts + 1):
            if txn is None:
                try:
                    txn = await self.define(client, script)
                except ServerError:
                    txn = None
                    await asyncio.sleep(
                        self.backoff * (0.5 + self.rng.random())
                    )
                    continue
            try:
                committed = await self.attempt(client, txn, script)
            except (RemoteAborted, RequestTimeout, RemoteProtocolError):
                await self._quiet_abort(client, txn)
                committed = False
            if committed:
                self.report.committed += 1
                return
            self.report.aborted += 1
            self.report.restarts += 1
            txn = None
            await asyncio.sleep(self.backoff * (0.5 + self.rng.random()))
        self.report.gave_up += 1


async def run_loadgen(
    workload: Workload,
    clients: int = 8,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    think_scale: float = 0.0,
    max_restarts: int = 8,
    backoff: float = 0.05,
    connect_retries: int = 25,
    connect_retry_delay: float = 0.2,
    seed: int = 0,
) -> LoadgenReport:
    """Replay a workload's scripts over N concurrent connections."""
    if clients < 1:
        raise ValueError("need at least one client")
    report = LoadgenReport(
        workload=workload.name,
        clients=clients,
        scripts=len(workload.scripts),
        key_dist=workload.key_dist,
    )
    runner = _Runner(
        report,
        think_scale=think_scale,
        max_restarts=max_restarts,
        backoff=backoff,
        seed=seed,
    )
    pool = [
        await AsyncClient.connect(
            host,
            port,
            retries=connect_retries,
            retry_delay=connect_retry_delay,
        )
        for _ in range(clients)
    ]
    try:
        # Scripts round-robin over connections; each client runs its
        # share sequentially, all clients concurrently.
        assignments: list[list[TransactionScript]] = [
            [] for _ in range(clients)
        ]
        owner: dict[str, AsyncClient] = {}
        for index, script in enumerate(workload.scripts):
            assignments[index % clients].append(script)
            owner[script.txn_id] = pool[index % clients]
        # Definition pass in script order so cooperation edges resolve
        # to already-defined siblings.
        predefined: dict[str, str] = {}
        try:
            for script in workload.scripts:
                predefined[script.txn_id] = await runner.define(
                    owner[script.txn_id], script
                )
        except OSError:
            report.disconnects += 1
        started = CLOCK()

        async def drive(client: AsyncClient, scripts) -> None:
            for script in scripts:
                try:
                    await runner.run_script(
                        client, script, predefined.get(script.txn_id)
                    )
                except OSError:
                    # The server went away (e.g. the CI smoke test
                    # SIGKILLs it mid-load).  Count it, drop this
                    # connection's remaining scripts, keep the report.
                    report.disconnects += 1
                    return

        await asyncio.gather(
            *(
                drive(client, scripts)
                for client, scripts in zip(pool, assignments)
            )
        )
        report.wall_time = CLOCK() - started
        report.abort_notifications = sum(
            1
            for client in pool
            for event in client.events
            if event.get("event") == "abort"
        )
        try:
            stats = await runner.request(pool[0], "stats")
            report.server_stats = _trim_server_stats(
                stats.get("stats", {})
            )
        except (ServerError, OSError):
            pass
    finally:
        for client in pool:
            await client.close()
    return report


#: Per-phase latency sources for the bench file: registry histogram →
#: bench key.  Closes the ROADMAP gap — p50/p95/p99 of where dispatcher
#: time goes (queue, park, validation, fsync) straight from the live
#: registry.  Units are whatever the histogram observes (seconds unless
#: the key says otherwise).
_PHASE_HISTOGRAMS = {
    "queue_wait_s": "server.queue.wait",
    "park_wait_s": "server.park.wait",
    "validate_us": "validation_latency_us",
    "wal_fsync_ms": "wal.flush.latency_ms",
    "request_s": "server.request.latency",
    # Not a latency: commands drained per dispatch cycle.  Archived so
    # the bench file shows whether batched validation actually engaged.
    "batch_records": "server.batch.size",
}


def _trim_server_stats(snapshot: dict[str, Any]) -> dict[str, Any]:
    """The server-side numbers worth archiving in the bench file."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    interesting_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith("server.")
    }
    phases = {}
    for label, source in _PHASE_HISTOGRAMS.items():
        summary = histograms.get(source)
        if summary and summary.get("count"):
            phases[label] = {
                key: summary[key]
                for key in ("count", "mean", "p50", "p95", "p99", "max")
                if key in summary
            }
    return {
        "counters": interesting_counters,
        "queue_depth_max": gauges.get("server.queue.depth", {}).get(
            "max", 0
        ),
        "sessions_max": gauges.get("server.sessions", {}).get("max", 0),
        "queue_wait": histograms.get("server.queue.wait", {}),
        "request_latency": histograms.get(
            "server.request.latency", {}
        ),
        "phases": phases,
    }


def report_table(report: LoadgenReport) -> str:
    """A human-readable summary for the CLI."""
    data = report.to_json()
    lines = [
        f"workload:            {data['workload']}",
        f"clients:             {data['clients']}",
        f"scripts:             {data['scripts']}",
        f"wall time:           {data['wall_time_s']:.3f} s",
        f"committed:           {data['committed']}"
        f" ({data['throughput_txn_per_s']:.1f} txn/s)",
        f"aborted txns:        {data['aborted_txns']}"
        f" (disconnects: {data['disconnects']})",
        f"restarts:            {data['restarts']}"
        f" (gave up: {data['gave_up']})",
        f"requests:            {data['requests']}",
        "request latency ms:  "
        + " ".join(
            f"{key}={data['request_latency_ms'][key]}"
            for key in ("p50", "p95", "p99", "max")
        ),
        f"busy retries:        {data['busy_retries']}",
        f"timeouts:            {data['timeouts']}",
        f"server aborts seen:  {data['aborted_by_server']}"
        f" (notifications: {data['abort_notifications']})",
        f"wire-protocol errors: {data['protocol_errors']}",
    ]
    return "\n".join(lines)
