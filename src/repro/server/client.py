"""Client library for the transaction service — sync and asyncio.

:class:`AsyncClient` multiplexes pipelined requests over one
connection (each request carries a fresh id; responses resolve by id,
so a parked request — a blocked read, a commit waiting on a
predecessor — does not stall later ones).  :class:`Client` is the
synchronous counterpart: one request at a time over a blocking socket,
for scripts and tests.

Both surface failed responses as the typed exceptions of
:mod:`repro.server.errors` (``BusyError``, ``RequestTimeout``,
``RemoteAborted``, …) and collect unsolicited server events — most
importantly cascading-abort notifications — on ``client.events``
(the async client additionally feeds ``event_queue`` for awaiting).

Read-your-writes session tokens: every committed reply from a durable
server carries the commit's WAL LSN (``commit_lsn``), which both
clients capture as :attr:`session_lsn` — the highest LSN this session
has been acknowledged for.  ``follower_read`` passes it as
``min_applied_lsn`` by default, so a session that just committed never
reads a follower view older than its own writes (the server rejects
the read with ``FOLLOWER_READ`` instead, and the caller can retry or
go to the primary).  Pass ``read_your_writes=False`` for a plain
bounded-stale read, or an explicit ``min_applied_lsn`` to override the
token.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any, Iterable

from .errors import ServerError, error_for_code
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    is_event,
)


def _token_from_reply(response: dict[str, Any], current: int) -> int:
    """Advance a session token from a committed reply's ``commit_lsn``."""
    lsn = response.get("commit_lsn")
    if isinstance(lsn, int) and not isinstance(lsn, bool):
        return max(current, lsn)
    return current


def _token_from_error(error: ServerError, current: int) -> int:
    """Advance the token from an *indeterminate* commit failure.

    A replication-ack timeout means the commit is durable locally; the
    session has still observed its own write, so the token advances.
    """
    details = getattr(error, "details", None) or {}
    if details.get("indeterminate"):
        lsn = details.get("commit_lsn")
        if isinstance(lsn, int) and not isinstance(lsn, bool):
            return max(current, lsn)
    return current


def _raise_for_response(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise error_for_code(
        str(error.get("code", "INTERNAL")),
        str(error.get("message", "request failed")),
        error.get("details"),
    )


def _define_params(
    updates: Iterable[str],
    input_constraint: str,
    output_condition: str,
    parent: str | None,
    predecessors: Iterable[str],
) -> dict[str, Any]:
    params: dict[str, Any] = {
        "updates": list(updates),
        "input": input_constraint,
        "output": output_condition,
    }
    if parent is not None:
        params["parent"] = parent
    predecessors = list(predecessors)
    if predecessors:
        params["predecessors"] = predecessors
    return params


class AsyncClient:
    """One connection, pipelined requests, background frame router."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, "asyncio.Future[dict[str, Any]]"] = {}
        self.events: list[dict[str, Any]] = []
        self.event_queue: "asyncio.Queue[dict[str, Any]]" = (
            asyncio.Queue()
        )
        self._closed = False
        self._session_lsn = 0
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-client-reader"
        )

    @property
    def session_lsn(self) -> int:
        """Read-your-writes token: highest acknowledged commit LSN."""
        return self._session_lsn

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        retry_delay: float = 0.2,
    ) -> "AsyncClient":
        """Connect, optionally retrying while the server comes up."""
        last: OSError | None = None
        for attempt in range(retries + 1):
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=MAX_FRAME_BYTES + 2
                )
                return cls(reader, writer)
            except OSError as error:
                last = error
                if attempt < retries:
                    await asyncio.sleep(retry_delay)
        assert last is not None
        raise last

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame = decode_frame(line)
                if is_event(frame):
                    self.events.append(frame)
                    self.event_queue.put_nowait(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (ConnectionError, asyncio.CancelledError, ServerError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("connection closed by server")
                    )
            self._pending.clear()

    async def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request and await its response (raises on error)."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        future: "asyncio.Future[dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write(
            encode_frame({"id": request_id, "op": op, **params})
        )
        await self._writer.drain()
        response = await future
        return _raise_for_response(response)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- convenience lifecycle wrappers --------------------------------------

    async def hello(self) -> dict[str, Any]:
        return await self.request("hello")

    async def ping(self) -> bool:
        return bool((await self.request("ping")).get("pong"))

    async def stats(self) -> dict[str, Any]:
        return await self.request("stats")

    async def define(
        self,
        updates: Iterable[str] = (),
        input_constraint: str = "true",
        output_condition: str = "true",
        parent: str | None = None,
        predecessors: Iterable[str] = (),
    ) -> str:
        response = await self.request(
            "define",
            **_define_params(
                updates,
                input_constraint,
                output_condition,
                parent,
                predecessors,
            ),
        )
        return str(response["txn"])

    async def validate(self, txn: str) -> dict[str, Any]:
        return await self.request("validate", txn=txn)

    async def read(self, txn: str, entity: str) -> int:
        response = await self.request("read", txn=txn, entity=entity)
        return int(response["value"])

    async def write(
        self, txn: str, entity: str, value: int
    ) -> dict[str, Any]:
        return await self.request(
            "write", txn=txn, entity=entity, value=value
        )

    async def begin_write(self, txn: str, entity: str) -> dict[str, Any]:
        return await self.request("begin_write", txn=txn, entity=entity)

    async def end_write(
        self, txn: str, entity: str, value: int
    ) -> dict[str, Any]:
        return await self.request(
            "end_write", txn=txn, entity=entity, value=value
        )

    async def commit(self, txn: str) -> dict[str, Any]:
        try:
            response = await self.request("commit", txn=txn)
        except ServerError as error:
            self._session_lsn = _token_from_error(
                error, self._session_lsn
            )
            raise
        self._session_lsn = _token_from_reply(
            response, self._session_lsn
        )
        return response

    async def abort(
        self, txn: str, reason: str | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"txn": txn}
        if reason is not None:
            params["reason"] = reason
        return await self.request("abort", **params)

    async def view(self, txn: str) -> dict[str, int]:
        return dict((await self.request("view", txn=txn))["view"])

    # -- replication ---------------------------------------------------------

    async def follower_read(
        self,
        entity: str | None = None,
        *,
        max_lag_lsn: int | None = None,
        min_applied_lsn: int | None = None,
        read_your_writes: bool = True,
    ) -> dict[str, Any]:
        """A bounded-stale read off this node's replicated state.

        With ``read_your_writes`` (the default) the session's commit
        token is sent as ``min_applied_lsn`` when no explicit bound is
        given, so the view can never predate this session's own acked
        commits.
        """
        params: dict[str, Any] = {}
        if entity is not None:
            params["entity"] = entity
        if max_lag_lsn is not None:
            params["max_lag_lsn"] = max_lag_lsn
        if min_applied_lsn is None and read_your_writes:
            min_applied_lsn = self._session_lsn or None
        if min_applied_lsn is not None:
            params["min_applied_lsn"] = min_applied_lsn
        return await self.request("follower_read", **params)

    async def repl_status(self) -> dict[str, Any]:
        return await self.request("repl_status")

    async def promote(
        self, listen_port: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {}
        if listen_port is not None:
            params["listen_port"] = listen_port
        return await self.request("promote", **params)


class Client:
    """Blocking one-request-at-a-time client.

    Unsolicited event frames that arrive while waiting for a response
    are buffered on :attr:`events` (call :meth:`poll_events` to drain
    them without issuing a request — it pings the server, which flushes
    anything queued ahead of the pong).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._ids = itertools.count(1)
        self.events: list[dict[str, Any]] = []
        self._session_lsn = 0

    @property
    def session_lsn(self) -> int:
        """Read-your-writes token: highest acknowledged commit LSN."""
        return self._session_lsn

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        retry_delay: float = 0.2,
    ) -> "Client":
        import time as _time

        last: OSError | None = None
        for attempt in range(retries + 1):
            try:
                sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                return cls(sock)
            except OSError as error:
                last = error
                if attempt < retries:
                    _time.sleep(retry_delay)
        assert last is not None
        raise last

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        request_id = next(self._ids)
        self._file.write(
            encode_frame({"id": request_id, "op": op, **params})
        )
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("connection closed by server")
            frame = decode_frame(line)
            if is_event(frame):
                self.events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue  # a stale parked response; not ours
            return _raise_for_response(frame)

    def close(self) -> None:
        try:
            self._file.close()
        except (OSError, ValueError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- convenience lifecycle wrappers --------------------------------------

    def hello(self) -> dict[str, Any]:
        return self.request("hello")

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def poll_events(self) -> list[dict[str, Any]]:
        """Ping to flush queued notifications; return and clear them."""
        self.ping()
        drained = list(self.events)
        self.events.clear()
        return drained

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def define(
        self,
        updates: Iterable[str] = (),
        input_constraint: str = "true",
        output_condition: str = "true",
        parent: str | None = None,
        predecessors: Iterable[str] = (),
    ) -> str:
        response = self.request(
            "define",
            **_define_params(
                updates,
                input_constraint,
                output_condition,
                parent,
                predecessors,
            ),
        )
        return str(response["txn"])

    def validate(self, txn: str) -> dict[str, Any]:
        return self.request("validate", txn=txn)

    def read(self, txn: str, entity: str) -> int:
        return int(self.request("read", txn=txn, entity=entity)["value"])

    def write(
        self, txn: str, entity: str, value: int
    ) -> dict[str, Any]:
        return self.request("write", txn=txn, entity=entity, value=value)

    def begin_write(self, txn: str, entity: str) -> dict[str, Any]:
        return self.request("begin_write", txn=txn, entity=entity)

    def end_write(
        self, txn: str, entity: str, value: int
    ) -> dict[str, Any]:
        return self.request(
            "end_write", txn=txn, entity=entity, value=value
        )

    def commit(self, txn: str) -> dict[str, Any]:
        try:
            response = self.request("commit", txn=txn)
        except ServerError as error:
            self._session_lsn = _token_from_error(
                error, self._session_lsn
            )
            raise
        self._session_lsn = _token_from_reply(
            response, self._session_lsn
        )
        return response

    def abort(
        self, txn: str, reason: str | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"txn": txn}
        if reason is not None:
            params["reason"] = reason
        return self.request("abort", **params)

    def view(self, txn: str) -> dict[str, int]:
        return dict(self.request("view", txn=txn)["view"])

    # -- replication ---------------------------------------------------------

    def follower_read(
        self,
        entity: str | None = None,
        *,
        max_lag_lsn: int | None = None,
        min_applied_lsn: int | None = None,
        read_your_writes: bool = True,
    ) -> dict[str, Any]:
        """A bounded-stale read off this node's replicated state.

        With ``read_your_writes`` (the default) the session's commit
        token is sent as ``min_applied_lsn`` when no explicit bound is
        given, so the view can never predate this session's own acked
        commits.
        """
        params: dict[str, Any] = {}
        if entity is not None:
            params["entity"] = entity
        if max_lag_lsn is not None:
            params["max_lag_lsn"] = max_lag_lsn
        if min_applied_lsn is None and read_your_writes:
            min_applied_lsn = self._session_lsn or None
        if min_applied_lsn is not None:
            params["min_applied_lsn"] = min_applied_lsn
        return self.request("follower_read", **params)

    def repl_status(self) -> dict[str, Any]:
        return self.request("repl_status")

    def promote(self, listen_port: int | None = None) -> dict[str, Any]:
        params: dict[str, Any] = {}
        if listen_port is not None:
            params["listen_port"] = listen_port
        return self.request("promote", **params)
