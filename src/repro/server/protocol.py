"""The JSON-lines wire protocol: framing, requests, responses.

One frame = one JSON object, UTF-8 encoded, terminated by ``\\n``, at
most :data:`MAX_FRAME_BYTES` long.  Three frame shapes flow on a
connection:

* **request** (client → server)::

      {"id": 7, "op": "read", "txn": "t.0.3", "entity": "x"}

  ``id`` is a client-chosen non-negative integer echoed in the
  response; ids may be pipelined (multiple requests in flight) and
  responses may arrive out of order — blocked steps park server-side
  and answer when granted.

* **response** (server → client)::

      {"id": 7, "ok": true, "value": 4}
      {"id": 7, "ok": false, "error": {"code": "BUSY", "message": …}}

* **event** (server → client, unsolicited; ``id`` is absent)::

      {"event": "abort", "txn": "t.0.3", "reason": "…"}
      {"event": "shutdown"}

  Events notify a session about transactions it owns that were
  terminated from outside — most importantly cascading aborts caused
  by another session's abort or failed re-validation.

The framing layer is deliberately dumb: it validates shape (dict, id,
op types) and size only.  Everything semantic — op dispatch, parameter
checking, ownership — lives in :mod:`repro.server.session`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .errors import ErrorCode, MalformedFrame, error_payload

MAX_FRAME_BYTES = 64 * 1024
"""Upper bound on one encoded frame, newline included."""

#: The operations the server implements (documented in docs/server.md).
OPERATIONS = (
    "hello",
    "ping",
    "stats",
    "define",
    "validate",
    "read",
    "begin_write",
    "end_write",
    "write",
    "commit",
    "abort",
    "view",
    "follower_read",
    "repl_status",
    "promote",
)


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one frame (compact JSON + newline)."""
    line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise MalformedFrame(
            f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`MalformedFrame` on oversized input, bad UTF-8, bad
    JSON, or a non-object top level.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise MalformedFrame(
            f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as error:
        raise MalformedFrame(f"frame is not UTF-8: {error}") from error
    if not text.strip():
        raise MalformedFrame("empty frame")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise MalformedFrame(f"frame is not JSON: {error}") from error
    if not isinstance(payload, dict):
        raise MalformedFrame(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


@dataclass(frozen=True)
class Request:
    """A validated request frame: id, operation, and its parameters."""

    request_id: int
    op: str
    params: dict[str, Any] = field(default_factory=dict)


def parse_request(frame: dict[str, Any]) -> Request:
    """Validate a decoded frame as a request.

    Checks the ``id`` and ``op`` fields only; unknown operations are
    reported by the dispatcher (which can echo the id) rather than
    here, so a typo'd op never kills the connection.
    """
    if "id" not in frame:
        raise MalformedFrame("request has no 'id'")
    request_id = frame["id"]
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise MalformedFrame(
            f"request id must be an integer, got {request_id!r}"
        )
    if request_id < 0:
        raise MalformedFrame(f"request id must be >= 0, got {request_id}")
    op = frame.get("op")
    if not isinstance(op, str) or not op:
        raise MalformedFrame("request has no 'op' string")
    params = {
        key: value
        for key, value in frame.items()
        if key not in ("id", "op")
    }
    return Request(request_id, op, params)


def ok_response(request_id: int, **fields: Any) -> dict[str, Any]:
    """A success response frame."""
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: int | None,
    code: ErrorCode,
    message: str,
    **details: Any,
) -> dict[str, Any]:
    """A failure response frame.

    ``request_id`` is ``None`` when the request's id could not be
    recovered (undecodable frame).
    """
    return {
        "id": request_id,
        "ok": False,
        "error": error_payload(code, message, **details),
    }


def event_frame(event: str, **fields: Any) -> dict[str, Any]:
    """An unsolicited server → client notification frame."""
    return {"event": event, **fields}


def is_event(frame: dict[str, Any]) -> bool:
    """Is a received frame an unsolicited event (vs. a response)?"""
    return "event" in frame and "id" not in frame
